//! Exhaustive exploration of *all* interleavings of a protocol.
//!
//! For a finite-state protocol instance, [`explore`] decides the three
//! clauses of the paper's task specifications outright:
//!
//! * **Agreement / validity** are checked incrementally at every
//!   decision along every path; any counterexample is reported with a
//!   replayable schedule.
//! * **Wait-freedom** reduces to *acyclicity of the reachable global
//!   state graph*: a process always has an enabled step until it
//!   decides, so an infinite run that starves no-one out of steps
//!   exists iff the (finite) state graph has a cycle, and a cycle is
//!   exactly a schedule on which some process takes infinitely many
//!   steps without deciding. Conversely, in an acyclic finite graph
//!   every solo extension of every reachable state terminates — which
//!   is wait-freedom. The explorer therefore also yields the exact
//!   worst-case number of steps per process over all schedules.
//! * **Crash tolerance** needs no separate exploration: a crashed
//!   process is one that is never scheduled again, and every clause
//!   above is checked on every *prefix*, so a violation in a crashy
//!   run appears as a violation along the corresponding crash-free
//!   path prefix. (Validity at decision time is checked against the
//!   processes that have stepped *so far*, which is precisely the
//!   participant set of the crash-closure of that prefix.)
//!
//! The exploration itself runs on the sharded dataflow engine of
//! [`crate::engine`] (one code path for every variant; see its module
//! docs for the algorithm). The front door is the [`Explorer`]
//! builder, which scales the engine along two independent axes:
//!
//! ```
//! use bso_sim::{Explorer, ProtocolExt, TaskSpec};
//! # use bso_objects::{Layout, Value};
//! # use bso_sim::{Action, Pid, Protocol};
//! # struct Solo;
//! # impl Protocol for Solo {
//! #     type State = ();
//! #     fn processes(&self) -> usize { 1 }
//! #     fn layout(&self) -> Layout { Layout::new() }
//! #     fn init(&self, _pid: Pid, _input: &Value) {}
//! #     fn next_action(&self, _st: &()) -> Action { Action::Decide(Value::Pid(0)) }
//! #     fn on_response(&self, _st: &mut (), _resp: Value) {}
//! # }
//! # let proto = Solo;
//! let report = Explorer::new(&proto)
//!     .inputs(&proto.pid_inputs())
//!     .spec(TaskSpec::Election)
//!     .parallel(true) // work-stealing worker pool
//!     .run();
//! assert!(report.outcome.is_verified());
//! ```
//!
//! * `.parallel(true)` — a work-stealing worker pool
//!   ([`ExploreConfig::workers`]); the default is single-threaded and
//!   fully deterministic.
//! * `.symmetric(true)` — quotient the state space by the protocol's
//!   process-symmetry group
//!   ([`crate::symmetry::SymmetricProtocol`]), visiting one
//!   representative per orbit.
//!
//! [`ExploreConfig::dedup`] selects exact full-state deduplication or
//! memory-lean 64-bit [`fingerprints`](crate::fingerprint): the latter
//! stores no state clones but admits a ≈ `states²/2⁶⁵` probability of
//! a hash collision silently merging two distinct states. A collision
//! can only *lose* states (risking a wrong `Verified`), never
//! fabricate a counterexample: reported schedules always replay.
//!
//! State explosion limits exhaustive runs to small `(n, k)`; the
//! per-instance results are still genuine theorems about those
//! instances ("for n=3, k=4, `LabelElection` is a correct wait-free
//! election under **every** schedule").

use std::fmt;
use std::hash::Hash;
use std::time::Duration;

use bso_objects::Value;
use bso_telemetry::{Registry, TraceSink};

use crate::artifact::{self, ScheduleArtifact};
use crate::checkpoint::{self, Checkpoint};
use crate::engine;
use crate::symmetry::{NoCanon, SymCanon, SymmetricProtocol};
use crate::{Pid, Protocol, ProtocolExt, RunError, RunResult, SharedMemory, Simulation};

/// What task specification to enforce during exploration.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TaskSpec {
    /// Leader election: agreement on a participating process id.
    Election,
    /// Consensus over the given inputs (one per process).
    Consensus(Vec<Value>),
    /// `l`-set consensus over the given inputs.
    SetConsensus(Vec<Value>, usize),
    /// No decision-value checking (termination/step bounds only).
    #[default]
    None,
}

/// How generated states are deduplicated in the visited table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DedupMode {
    /// Full-state keys: exact, collision-free (the default).
    #[default]
    Exact,
    /// 64-bit fingerprints: no state clones are retained, at a
    /// ≈ `states²/2⁶⁵` risk of a collision merging two states (which
    /// can yield a wrong `Verified`, never a bogus counterexample).
    Fingerprint,
}

/// Exploration limits and the specification to enforce.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Abort (as [`ExploreOutcome::Exhausted`]) after visiting this
    /// many distinct states.
    pub max_states: usize,
    /// The task specification to enforce at decisions.
    pub spec: TaskSpec,
    /// Worker threads for the parallel entry points (`0` = one per
    /// available CPU). [`explore`]/[`explore_symmetric`] ignore this
    /// and always run single-threaded.
    pub workers: usize,
    /// Visited-table key representation.
    pub dedup: DedupMode,
    /// Crash-fault adversary strength: the explorer may crash up to
    /// this many processes (clamped to `n − 1`) at any step. `0` (the
    /// default) explores only crash-free schedules.
    pub faults: usize,
    /// Dynamic partial-order reduction with sleep sets: prune step
    /// interleavings that provably commute (see
    /// [`Explorer::dpor`]).
    pub dpor: bool,
    /// Context-bounded search: skip any schedule whose number of
    /// context switches exceeds this bound. An *under-approximation*:
    /// a completed bounded pass reports
    /// [`ExploreOutcome::Exhausted`], never `Verified` (see
    /// [`Explorer::context_bound`]).
    pub context_bound: Option<usize>,
    /// Wait-freedom step bound: when set, any process taking more than
    /// this many of its own steps without deciding is reported as a
    /// [`ViolationKind::StepBound`] violation. States then carry
    /// per-process step counters, so the state space grows; `None`
    /// (the default) leaves keys and dedup behavior unchanged.
    pub step_bound: Option<usize>,
    /// Wall-clock deadline: a run exceeding it stops with
    /// [`ExploreOutcome::Interrupted`] and a resumable frontier.
    pub deadline: Option<Duration>,
    /// Approximate memory budget in bytes for the visited table; when
    /// the estimated footprint exceeds it the run stops with
    /// [`ExploreOutcome::Interrupted`] and a resumable frontier.
    pub memory_budget: Option<usize>,
    /// Where the run reports its metrics. The default clones the
    /// process-wide registry, which is enabled iff the `BSO_TELEMETRY`
    /// environment variable is set — so instrumentation is free unless
    /// explicitly requested.
    pub telemetry: Registry,
    /// Where worker trace events go. The default clones the
    /// process-wide sink, which is enabled iff the `BSO_TRACE`
    /// environment variable is set — same free-unless-requested
    /// contract as `telemetry`.
    pub trace: TraceSink,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_states: 2_000_000,
            spec: TaskSpec::None,
            workers: 0,
            dedup: DedupMode::Exact,
            faults: 0,
            dpor: false,
            context_bound: None,
            step_bound: None,
            deadline: None,
            memory_budget: None,
            telemetry: Registry::default(),
            trace: TraceSink::default(),
        }
    }
}

/// The kind of a discovered violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Two processes decided differently (or too many set-consensus
    /// values).
    Agreement,
    /// A decision no participant proposed.
    Validity,
    /// A cycle in the state graph: some schedule starves a process
    /// forever — the protocol is not wait-free.
    NotWaitFree,
    /// The protocol performed an illegal shared-memory operation.
    IllegalOperation,
    /// A process exceeded the configured per-process step bound
    /// ([`ExploreConfig::step_bound`]) without deciding — the protocol
    /// is not wait-free within that bound under this (possibly crashy)
    /// schedule.
    StepBound,
    /// The protocol implementation itself panicked while the explorer
    /// expanded a state; the schedule reaches the state whose
    /// expansion panicked.
    Panic,
}

/// A crash event on a schedule: after `at` scheduled steps have been
/// taken, process `pid` crashes and takes no further steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrashEvent {
    /// Number of schedule steps taken before the crash.
    pub at: usize,
    /// The crashed process.
    pub pid: Pid,
}

impl fmt::Display for CrashEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{} crashes after step {}", self.pid, self.at)
    }
}

/// A concrete counterexample: a schedule driving the protocol into the
/// violation. Replay it with [`crate::scheduler::Scripted`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub description: String,
    /// The schedule (pid per step) reaching the violation.
    pub schedule: Vec<Pid>,
    /// Crash events interleaved with the schedule (sorted by
    /// [`CrashEvent::at`]); empty for crash-free counterexamples.
    pub crashes: Vec<CrashEvent>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} steps{}: {}",
            self.kind,
            self.schedule.len(),
            if self.crashes.is_empty() {
                String::new()
            } else {
                format!(" and {} crash(es)", self.crashes.len())
            },
            self.description
        )
    }
}

/// The verdict of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every interleaving satisfies the specification and terminates.
    Verified,
    /// A counterexample was found.
    Violated(Violation),
    /// The state budget ran out before the exploration completed; no
    /// verdict. The payload reports how far the exploration got, for
    /// budget tuning.
    Exhausted {
        /// Distinct states visited before giving up (= the budget).
        states: usize,
        /// The deepest schedule prefix reached (steps from the initial
        /// state).
        deepest: usize,
    },
    /// A resource guard ([`ExploreConfig::deadline`] or
    /// [`ExploreConfig::memory_budget`]) stopped the run before a
    /// verdict. Unlike [`ExploreOutcome::Exhausted`] the run is
    /// *resumable*: the frontier identifies every unexpanded state by
    /// its schedule, and [`Explorer::resume`] continues from a
    /// [`crate::checkpoint::Checkpoint`] built from it.
    Interrupted {
        /// Which guard fired.
        reason: InterruptReason,
        /// Distinct states visited before the interrupt.
        states: usize,
        /// The deepest schedule prefix reached.
        deepest: usize,
        /// Schedules (with crash events) of every generated-but-
        /// unexpanded state; re-executing each yields the exact
        /// frontier state to continue from.
        frontier: Vec<FrontierEntry>,
    },
}

/// Which resource guard interrupted a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterruptReason {
    /// The wall-clock [`ExploreConfig::deadline`] passed.
    Deadline,
    /// The approximate [`ExploreConfig::memory_budget`] was exceeded.
    MemoryBudget,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Deadline => write!(f, "deadline"),
            InterruptReason::MemoryBudget => write!(f, "memory-budget"),
        }
    }
}

/// One unexpanded frontier state, identified by the deterministic path
/// that reaches it: a schedule plus the crash events along it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontierEntry {
    /// The schedule (pid per step) from the initial state.
    pub schedule: Vec<Pid>,
    /// Crash events along the schedule, sorted by [`CrashEvent::at`].
    pub crashes: Vec<CrashEvent>,
}

impl ExploreOutcome {
    /// Whether the outcome is [`ExploreOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified)
    }

    /// The violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            ExploreOutcome::Violated(v) => Some(v),
            _ => None,
        }
    }
}

/// Performance counters from one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the run.
    pub duration: Duration,
    /// Distinct states visited per second of wall-clock time.
    pub states_per_sec: f64,
    /// Generated successors that were already in the visited table.
    pub dedup_hits: usize,
    /// Peak number of queued (generated but unexpanded) states.
    pub peak_frontier: usize,
    /// Successful work-steal operations (0 in serial runs).
    pub steals: usize,
    /// Contended visited-table shard acquisitions.
    pub shard_contention: usize,
    /// Crash-fault branches generated by the adversary (0 when
    /// [`ExploreConfig::faults`] is 0).
    pub crash_branches: usize,
    /// Step successors the partial-order reduction pruned (0 outside
    /// DPOR mode).
    pub dpor_sleep_prunes: usize,
    /// DPOR backtrack points: sleep-shrink re-expansions plus cycle-
    /// proviso escalations (0 outside DPOR mode).
    pub dpor_backtrack_points: usize,
}

impl ExploreStats {
    /// Folds these counters into `registry` under `explore.*` names —
    /// the canonical mapping from the bespoke stats struct onto
    /// telemetry types. The engine calls this once per run; it is
    /// public so external harnesses aggregating several reports can
    /// reuse the same names.
    pub fn record_to(&self, registry: &Registry) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .counter("explore.dedup_hits")
            .add(self.dedup_hits as u64);
        registry.counter("explore.steals").add(self.steals as u64);
        registry
            .counter("explore.shard_contention")
            .add(self.shard_contention as u64);
        registry
            .counter("explore.fault.crash_branches")
            .add(self.crash_branches as u64);
        registry
            .counter("explore.dpor.sleep_prunes")
            .add(self.dpor_sleep_prunes as u64);
        registry
            .counter("explore.dpor.backtrack_points")
            .add(self.dpor_backtrack_points as u64);
        registry.gauge("explore.workers").max(self.workers as u64);
        registry
            .gauge("explore.peak_frontier")
            .max(self.peak_frontier as u64);
        registry
            .histogram("explore.run_ns")
            .record(u64::try_from(self.duration.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Exploration statistics and verdict.
#[derive(Clone, Debug)]
pub struct Report {
    /// The verdict.
    pub outcome: ExploreOutcome,
    /// Distinct global states visited (orbit representatives when
    /// symmetry reduction is active).
    pub states: usize,
    /// Distinct terminal (all-decided) states.
    pub terminals: usize,
    /// For each process, the exact maximum number of steps it takes
    /// over **all** schedules — the wait-freedom bound witness.
    /// Meaningful only when the outcome is `Verified`.
    pub max_steps_per_proc: Vec<usize>,
    /// Performance counters.
    pub stats: ExploreStats,
}

impl Report {
    /// Folds the whole report into `registry` under `explore.*` names:
    /// run/state/terminal counters, the dedup hit-rate gauge, and the
    /// [`ExploreStats`] counters.
    pub fn record_to(&self, registry: &Registry) {
        if !registry.is_enabled() {
            return;
        }
        registry.counter("explore.runs").inc();
        registry.counter("explore.states").add(self.states as u64);
        registry
            .counter("explore.terminals")
            .add(self.terminals as u64);
        let generated = self.states + self.stats.dedup_hits;
        if let Some(pct) = (100 * self.stats.dedup_hits).checked_div(generated) {
            registry.gauge("explore.dedup_hit_rate_pct").set(pct as u64);
        }
        self.stats.record_to(registry);
    }
}

/// One global state of the explored system.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct StateKey<S> {
    pub(crate) mem: SharedMemory,
    pub(crate) states: Vec<S>,
    pub(crate) decisions: Vec<Option<Value>>,
    pub(crate) stepped: u64,
    /// Bitmask of crashed processes; always 0 without fault injection.
    pub(crate) crashed: u64,
    /// Per-process step counts. Tracked (non-empty) only when a step
    /// bound is enforced, so that keys — and therefore dedup behavior
    /// and reports — are unchanged otherwise.
    pub(crate) steps: Vec<u16>,
}

/// Checks a decision of `pid` against the task specification.
///
/// `decisions` holds the *other* processes' decisions (the decider's
/// slot still `None`); `stepped` already includes the decider's bit.
pub(crate) fn check_decision(
    spec: &TaskSpec,
    decisions: &[Option<Value>],
    stepped: u64,
    pid: Pid,
    v: &Value,
) -> Result<(), (ViolationKind, String)> {
    let n = decisions.len();
    let participants = move || (0..n).filter(move |p| stepped >> p & 1 == 1);
    match spec {
        TaskSpec::None => Ok(()),
        TaskSpec::Election => {
            match v.as_pid() {
                Some(w) if participants().any(|p| p == w) => {}
                _ => {
                    return Err((
                        ViolationKind::Validity,
                        format!("p{pid} elected {v}, not a participant"),
                    ))
                }
            }
            for (q, d) in decisions.iter().enumerate() {
                if let Some(w) = d {
                    if w != v {
                        return Err((
                            ViolationKind::Agreement,
                            format!("p{q} elected {w} but p{pid} elected {v}"),
                        ));
                    }
                }
            }
            Ok(())
        }
        TaskSpec::Consensus(inputs) => {
            if !participants().any(|p| &inputs[p] == v) {
                return Err((
                    ViolationKind::Validity,
                    format!("p{pid} decided {v}, not a participant's input"),
                ));
            }
            for (q, d) in decisions.iter().enumerate() {
                if let Some(w) = d {
                    if w != v {
                        return Err((
                            ViolationKind::Agreement,
                            format!("p{q} decided {w} but p{pid} decided {v}"),
                        ));
                    }
                }
            }
            Ok(())
        }
        TaskSpec::SetConsensus(inputs, l) => {
            if !participants().any(|p| &inputs[p] == v) {
                return Err((
                    ViolationKind::Validity,
                    format!("p{pid} decided {v}, not a participant's input"),
                ));
            }
            let mut set: Vec<&Value> = decisions.iter().flatten().collect();
            set.push(v);
            set.sort();
            set.dedup();
            if set.len() > *l {
                return Err((
                    ViolationKind::Agreement,
                    format!("{} distinct decisions exceed the {l}-set bound", set.len()),
                ));
            }
            Ok(())
        }
    }
}

fn init_key<P: Protocol>(proto: &P, inputs: &[Value], track_steps: bool) -> StateKey<P::State> {
    let n = proto.processes();
    assert!(n <= 64, "explorer supports at most 64 processes");
    assert_eq!(inputs.len(), n, "need one input per process");
    StateKey {
        mem: SharedMemory::new(&proto.layout()),
        states: inputs
            .iter()
            .enumerate()
            .map(|(p, v)| proto.init(p, v))
            .collect(),
        decisions: vec![None; n],
        stepped: 0,
        crashed: 0,
        steps: if track_steps { vec![0; n] } else { Vec::new() },
    }
}

/// Re-executes a frontier entry's path from the initial state, yielding
/// the exact [`StateKey`] to seed a resumed exploration with.
fn replay_frontier_key<P: Protocol>(
    proto: &P,
    inputs: &[Value],
    entry: &FrontierEntry,
    track_steps: bool,
) -> Result<StateKey<P::State>, String> {
    let mut key = init_key(proto, inputs, track_steps);
    let mut crashes = entry.crashes.clone();
    crashes.sort_unstable();
    let mut next_crash = 0;
    for (i, &pid) in entry.schedule.iter().enumerate() {
        while next_crash < crashes.len() && crashes[next_crash].at <= i {
            let c = crashes[next_crash];
            if c.pid >= key.states.len() {
                return Err(format!(
                    "crash event names p{} of {}",
                    c.pid,
                    key.states.len()
                ));
            }
            key.crashed |= 1 << c.pid;
            next_crash += 1;
        }
        if pid >= key.states.len() {
            return Err(format!("schedule names p{pid} of {}", key.states.len()));
        }
        if key.decisions[pid].is_some() || key.crashed >> pid & 1 == 1 {
            return Err(format!(
                "schedule steps disabled process p{pid} at step {i}"
            ));
        }
        match proto.next_action(&key.states[pid]) {
            crate::Action::Invoke(op) => {
                let resp = key
                    .mem
                    .apply(pid, &op)
                    .map_err(|e| format!("p{pid} op {op} failed during replay: {e}"))?;
                proto.on_response(&mut key.states[pid], resp);
            }
            crate::Action::Decide(v) => key.decisions[pid] = Some(v),
        }
        key.stepped |= 1 << pid;
        if track_steps {
            key.steps[pid] += 1;
        }
    }
    for c in &crashes[next_crash..] {
        if c.pid >= key.states.len() {
            return Err(format!(
                "crash event names p{} of {}",
                c.pid,
                key.states.len()
            ));
        }
        key.crashed |= 1 << c.pid;
    }
    Ok(key)
}

/// Seed states for the engine: each with the path that reaches it (an
/// empty path for the true initial state).
pub(crate) type Seeds<S> = Vec<(StateKey<S>, FrontierEntry)>;

/// The monomorphized run strategy a builder flag captures. Taking a
/// plain `fn` pointer lets [`Explorer::run`] stay free of the `Send`/
/// `Sync`/`Ord` bounds that only the parallel and symmetric modes
/// need: each mode's *setter* carries its bounds and freezes them into
/// a pointer here. `None` seeds mean "start from the initial state";
/// [`Explorer::resume`] passes a reconstructed frontier instead.
type RunFn<P> =
    fn(&P, &[Value], Option<Seeds<<P as Protocol>::State>>, &ExploreConfig, usize) -> Report;

fn initial_seeds<P: Protocol>(
    proto: &P,
    inputs: &[Value],
    config: &ExploreConfig,
) -> Seeds<P::State> {
    vec![(
        init_key(proto, inputs, config.step_bound.is_some()),
        FrontierEntry::default(),
    )]
}

fn run_plain_serial<P: Protocol>(
    proto: &P,
    inputs: &[Value],
    seeds: Option<Seeds<P::State>>,
    config: &ExploreConfig,
    _workers: usize,
) -> Report
where
    P::State: Hash + Eq,
{
    let seeds = seeds.unwrap_or_else(|| initial_seeds(proto, inputs, config));
    engine::dispatch_serial(proto, seeds, config, NoCanon)
}

fn run_plain<P>(
    proto: &P,
    inputs: &[Value],
    seeds: Option<Seeds<P::State>>,
    config: &ExploreConfig,
    workers: usize,
) -> Report
where
    P: Protocol + Sync,
    P::State: Hash + Eq + Send,
{
    let seeds = seeds.unwrap_or_else(|| initial_seeds(proto, inputs, config));
    if workers <= 1 {
        engine::dispatch_serial(proto, seeds, config, NoCanon)
    } else {
        engine::dispatch_parallel(proto, seeds, config, NoCanon, workers)
    }
}

fn run_symmetric<P>(
    proto: &P,
    inputs: &[Value],
    seeds: Option<Seeds<P::State>>,
    config: &ExploreConfig,
    workers: usize,
) -> Report
where
    P: SymmetricProtocol + Sync,
    P::State: Hash + Eq + Ord + Send,
{
    let canon = SymCanon::new(proto).unwrap_or_else(|e| panic!("{e}"));
    assert_inputs_equivariant(proto, &canon, inputs);
    let seeds = seeds.unwrap_or_else(|| initial_seeds(proto, inputs, config));
    if workers <= 1 {
        engine::dispatch_serial(proto, seeds, config, canon)
    } else {
        engine::dispatch_parallel(proto, seeds, config, canon, workers)
    }
}

/// The single front door to exhaustive exploration.
///
/// Configure what to explore (`inputs`, `config` or the per-field
/// shortcuts) and how (`parallel`, `symmetric`), then [`run`]: serial
/// vs parallel and plain vs symmetry-reduced are two independent
/// toggles over one engine, and the report — outcome, stats, worker
/// resolution — is assembled identically for all four combinations.
///
/// ```
/// use bso_sim::{Explorer, ProtocolExt, TaskSpec};
/// # use bso_objects::{Layout, Value};
/// # use bso_sim::{Action, Pid, Protocol};
/// # struct Solo;
/// # impl Protocol for Solo {
/// #     type State = ();
/// #     fn processes(&self) -> usize { 1 }
/// #     fn layout(&self) -> Layout { Layout::new() }
/// #     fn init(&self, _pid: Pid, _input: &Value) {}
/// #     fn next_action(&self, _st: &()) -> Action { Action::Decide(Value::Pid(0)) }
/// #     fn on_response(&self, _st: &mut (), _resp: Value) {}
/// # }
/// # let proto = Solo;
/// let report = Explorer::new(&proto)
///     .inputs(&proto.pid_inputs())
///     .spec(TaskSpec::Election)
///     .run();
/// assert!(report.outcome.is_verified());
/// ```
///
/// # What a `Verified` outcome proves
///
/// See the module docs: agreement and validity on every path, plus
/// wait-freedom via acyclicity of the reachable state graph.
///
/// # Panics
///
/// [`run`](Explorer::run) panics if the protocol has more than 64
/// processes or if the inputs' length does not match; with
/// `.symmetric(true)` it additionally panics if the declared symmetry
/// group is invalid (not permutations, or not closed under
/// composition) or if the inputs are not fixed by the group — renaming
/// processes must rename their inputs onto each other, as with
/// [`crate::ProtocolExt::pid_inputs`], or the specification itself
/// would distinguish the processes and the reduction would be unsound.
#[derive(Debug)]
pub struct Explorer<'p, P: Protocol> {
    proto: &'p P,
    inputs: Option<Vec<Value>>,
    config: ExploreConfig,
    protocol_id: Option<String>,
    parallel: bool,
    par_run: Option<RunFn<P>>,
    sym_run: Option<RunFn<P>>,
}

// Derived `Clone` would demand `P: Clone` even though only `&P` is held.
impl<P: Protocol> Clone for Explorer<'_, P> {
    fn clone(&self) -> Self {
        Explorer {
            proto: self.proto,
            inputs: self.inputs.clone(),
            config: self.config.clone(),
            protocol_id: self.protocol_id.clone(),
            parallel: self.parallel,
            par_run: self.par_run,
            sym_run: self.sym_run,
        }
    }
}

impl<'p, P: Protocol> Explorer<'p, P> {
    /// Starts a builder over `proto` with the default
    /// [`ExploreConfig`], serial execution, no symmetry reduction, and
    /// [`crate::ProtocolExt::pid_inputs`] as inputs.
    pub fn new(proto: &'p P) -> Explorer<'p, P> {
        Explorer {
            proto,
            inputs: None,
            config: ExploreConfig::default(),
            protocol_id: None,
            parallel: false,
            par_run: None,
            sym_run: None,
        }
    }

    /// Sets the per-process inputs (one per process).
    #[must_use]
    pub fn inputs(mut self, inputs: &[Value]) -> Self {
        self.inputs = Some(inputs.to_vec());
        self
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn config(mut self, config: &ExploreConfig) -> Self {
        self.config = config.clone();
        self
    }

    /// Sets the task specification ([`ExploreConfig::spec`]).
    #[must_use]
    pub fn spec(mut self, spec: TaskSpec) -> Self {
        self.config.spec = spec;
        self
    }

    /// Sets the state budget ([`ExploreConfig::max_states`]).
    #[must_use]
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.config.max_states = max_states;
        self
    }

    /// Sets the worker count for parallel runs
    /// ([`ExploreConfig::workers`]; `0` = one per available CPU).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the dedup mode ([`ExploreConfig::dedup`]).
    #[must_use]
    pub fn dedup(mut self, dedup: DedupMode) -> Self {
        self.config.dedup = dedup;
        self
    }

    /// Sets the crash-fault adversary strength
    /// ([`ExploreConfig::faults`]): up to `faults` processes (clamped
    /// to `n − 1`) may crash at any step.
    #[must_use]
    pub fn faults(mut self, faults: usize) -> Self {
        self.config.faults = faults;
        self
    }

    /// Toggles dynamic partial-order reduction with sleep sets
    /// ([`ExploreConfig::dpor`]): at every state only a *persistent
    /// set* of the enabled processes is stepped (computed from
    /// [`crate::Protocol::footprint`] and the exact one-step
    /// independence relation — operations on distinct objects commute,
    /// same-object operations conflict unless neither mutates), and
    /// sleep sets suppress orders an explored sibling already covers.
    ///
    /// Verdicts agree with the unreduced modes and counterexamples
    /// remain genuinely replayable, but the *choice* of counterexample
    /// among equally valid ones may differ (fewer schedules are
    /// enumerated), and [`Report::max_steps_per_proc`] is not reported
    /// (a pruned order can realize a higher per-process step count
    /// than any explored one). Composes with
    /// [`parallel`](Explorer::parallel),
    /// [`symmetric`](Explorer::symmetric), fault injection, and
    /// checkpoint/resume. See `DESIGN.md` §3.11.
    #[must_use]
    pub fn dpor(mut self, dpor: bool) -> Self {
        self.config.dpor = dpor;
        self
    }

    /// Enables iterative context-bounded search
    /// ([`ExploreConfig::context_bound`]): [`run`](Explorer::run)
    /// explores schedules with at most `0, 1, …, c` context switches,
    /// returning at the first bound that uncovers a violation.
    ///
    /// This is an **under-approximation** — most concurrency bugs
    /// manifest within a couple of context switches, so small bounds
    /// find them in a tiny fraction of the full space — and the
    /// verdict reflects that: a completed pass reports
    /// [`ExploreOutcome::Exhausted`], never `Verified`. Because states
    /// reached within the bound by one discovery order may be
    /// reachable below the bound by another, the set of skipped
    /// schedules is discovery-order-dependent under dedup: only a
    /// `Violated` outcome is definitive. Composes with
    /// [`dpor`](Explorer::dpor).
    #[must_use]
    pub fn context_bound(mut self, bound: usize) -> Self {
        self.config.context_bound = Some(bound);
        self
    }

    /// Sets the wait-freedom step bound
    /// ([`ExploreConfig::step_bound`]).
    #[must_use]
    pub fn step_bound(mut self, bound: usize) -> Self {
        self.config.step_bound = Some(bound);
        self
    }

    /// Sets the wall-clock deadline ([`ExploreConfig::deadline`]).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Sets the approximate memory budget in bytes
    /// ([`ExploreConfig::memory_budget`]).
    #[must_use]
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Sets the telemetry registry the run reports into
    /// ([`ExploreConfig::telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, registry: Registry) -> Self {
        self.config.telemetry = registry;
        self
    }

    /// Sets the trace sink worker events go to
    /// ([`ExploreConfig::trace`]).
    #[must_use]
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.config.trace = sink;
        self
    }

    /// Sets the stable protocol identifier stamped into counterexample
    /// artifacts (default: the Rust type name of `P`).
    #[must_use]
    pub fn protocol_id(mut self, id: impl Into<String>) -> Self {
        self.protocol_id = Some(id.into());
        self
    }

    /// Toggles the work-stealing worker pool. Verdicts agree with the
    /// serial mode; with several workers the *choice* of
    /// counterexample among equally valid ones may differ (the engine
    /// keeps the lexicographically smallest schedule discovered before
    /// exploration halted).
    ///
    /// This setter (not [`run`](Explorer::run)) carries the
    /// thread-safety bounds, so purely serial exploration remains
    /// available to protocols whose states are not `Send`.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self
    where
        P: Sync,
        P::State: Hash + Eq + Send,
    {
        self.parallel = parallel;
        self.par_run = parallel.then_some(run_plain::<P> as RunFn<P>);
        self
    }

    /// Toggles process-symmetry reduction: only one representative per
    /// orbit of the protocol's symmetry group is visited (see
    /// [`SymmetricProtocol`] for the soundness contract). Composes
    /// with [`parallel`](Explorer::parallel).
    #[must_use]
    pub fn symmetric(mut self, symmetric: bool) -> Self
    where
        P: SymmetricProtocol + Sync,
        P::State: Hash + Eq + Ord + Send,
    {
        self.sym_run = symmetric.then_some(run_symmetric::<P> as RunFn<P>);
        self
    }

    /// The worker-thread count this builder will actually run with:
    /// `1` unless `.parallel(true)`, else [`ExploreConfig::workers`]
    /// with `0` resolved to the available parallelism. This is the one
    /// place serial-vs-parallel resolution happens, for all modes.
    pub fn resolved_workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        match self.config.workers {
            0 => std::thread::available_parallelism().map_or(1, |v| v.get()),
            w => w,
        }
    }

    /// The per-process inputs [`run`](Explorer::run) will use:
    /// explicitly set ones, else [`crate::ProtocolExt::pid_inputs`].
    pub fn resolved_inputs(&self) -> Vec<Value> {
        match &self.inputs {
            Some(v) => v.clone(),
            None => self.proto.pid_inputs(),
        }
    }

    /// The protocol identifier stamped into artifacts: the one set via
    /// [`protocol_id`](Explorer::protocol_id), else the Rust type name.
    pub fn resolved_protocol_id(&self) -> String {
        self.protocol_id
            .clone()
            .unwrap_or_else(|| std::any::type_name::<P>().to_string())
    }

    /// Packages a violation from this explorer's configuration into a
    /// durable, replayable [`ScheduleArtifact`].
    pub fn artifact_for(&self, violation: &Violation) -> ScheduleArtifact {
        self.artifact_for_in(violation, &self.config)
    }

    /// Re-executes an artifact's exact interleaving on this explorer's
    /// protocol and returns the resulting run. The simulator is
    /// deterministic given a schedule, so two replays of the same
    /// artifact produce identical [`crate::Trace`]s; check the outcome
    /// against the artifact's claim with
    /// [`artifact::verify_replay`].
    ///
    /// Scheduled pids that are no longer enabled (decided or crashed)
    /// are skipped — a well-formed artifact never contains them. The
    /// artifact's crash events are injected at their recorded
    /// positions, so crash-schedule counterexamples replay exactly.
    ///
    /// # Errors
    ///
    /// A [`RunError::Object`] if the schedule drives the protocol into
    /// an illegal operation (which is exactly what an
    /// [`ViolationKind::IllegalOperation`] artifact replays to).
    ///
    /// # Panics
    ///
    /// Panics if the artifact's input count does not match the
    /// protocol's process count.
    pub fn replay(&self, artifact: &ScheduleArtifact) -> Result<RunResult, RunError> {
        let mut sim = Simulation::new(self.proto, &artifact.inputs);
        let mut crashes = artifact.crashes.clone();
        crashes.sort_unstable();
        let mut next_crash = 0;
        for (i, &pid) in artifact.schedule.iter().enumerate() {
            while next_crash < crashes.len() && crashes[next_crash].at <= i {
                sim.crash(crashes[next_crash].pid);
                next_crash += 1;
            }
            if sim.enabled().contains(&pid) {
                sim.step(pid)?;
            }
        }
        for c in &crashes[next_crash..] {
            sim.crash(c.pid);
        }
        Ok(sim.result())
    }

    /// Explores **all** interleavings and reports the verdict.
    ///
    /// The builder is borrowed, not consumed, so one configuration can
    /// drive several runs.
    ///
    /// Four environment escape hatches activate here: `BSO_PROGRESS`
    /// starts the process-wide heartbeat reporter before the run,
    /// `BSO_ARTIFACT=path.json` writes a replayable
    /// [`ScheduleArtifact`] if the run finds a violation,
    /// `BSO_DEADLINE_MS=n` applies a wall-clock deadline when the
    /// builder set none, and `BSO_CHECKPOINT=path.json` writes a
    /// resumable [`Checkpoint`] if the run is interrupted.
    pub fn run(&self) -> Report
    where
        P::State: Hash + Eq,
    {
        let mut config = self.config.clone();
        if config.deadline.is_none() {
            if let Some(ms) = std::env::var(checkpoint::DEADLINE_ENV_VAR)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                config.deadline = Some(Duration::from_millis(ms));
            }
        }
        if let Some(c) = config.context_bound {
            // Iterative context-bounding: explore with 0, 1, …, c
            // context switches, surfacing the first violation (found
            // at the smallest switch count that manifests it). A pass
            // that completes without a violation proves nothing about
            // the unbounded space, so only Violated and Interrupted
            // outcomes short-circuit.
            for cb in 0..c {
                let mut bounded = config.clone();
                bounded.context_bound = Some(cb);
                let report = self.run_with(None, &bounded, None);
                match report.outcome {
                    ExploreOutcome::Violated { .. } | ExploreOutcome::Interrupted { .. } => {
                        return report;
                    }
                    _ => {}
                }
            }
        }
        self.run_with(None, &config, None)
    }

    /// Continues an exploration from a [`Checkpoint`] written by an
    /// interrupted run on the *same* protocol instance and inputs.
    ///
    /// The checkpoint pins the semantics of the original run (spec,
    /// fault budget, step bound, inputs); the builder contributes the
    /// resource knobs (deadline, budgets, workers, dedup, telemetry) —
    /// so a resumed run can get a fresh deadline. The returned report
    /// accumulates the checkpoint's state/terminal counts, making the
    /// final tallies comparable with an uninterrupted run.
    /// `max_steps_per_proc` is not reconstructible across an interrupt
    /// and stays empty.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's process count does not match the
    /// protocol, or if a frontier entry does not replay on it (i.e.
    /// the checkpoint belongs to a different protocol).
    pub fn resume(&self, cp: &Checkpoint) -> Report
    where
        P::State: Hash + Eq,
    {
        assert_eq!(
            cp.inputs.len(),
            self.proto.processes(),
            "checkpoint is for {} processes but the protocol has {}",
            cp.inputs.len(),
            self.proto.processes()
        );
        let mut config = self.config.clone();
        config.spec = cp.spec.clone();
        config.faults = cp.faults;
        config.step_bound = cp.step_bound;
        let track = cp.step_bound.is_some();
        let seeds: Seeds<P::State> = cp
            .frontier
            .iter()
            .map(|entry| {
                let key =
                    replay_frontier_key(self.proto, &cp.inputs, entry, track).unwrap_or_else(|e| {
                        panic!("checkpoint frontier entry does not replay on this protocol: {e}")
                    });
                (key, entry.clone())
            })
            .collect();
        if seeds.is_empty() {
            // Degenerate checkpoint (interrupted before seeding):
            // restart from scratch under the checkpoint's semantics.
            return self.run_with(None, &config, None);
        }
        self.run_with(Some(seeds), &config, Some(cp))
    }

    /// Packages an [`ExploreOutcome::Interrupted`] report into a
    /// durable [`Checkpoint`] that [`resume`](Explorer::resume) (in
    /// this or a later process) continues from. Returns `None` for any
    /// other outcome.
    pub fn checkpoint_for(&self, report: &Report) -> Option<Checkpoint> {
        self.checkpoint_for_in(report, &self.config)
    }

    fn checkpoint_for_in(&self, report: &Report, config: &ExploreConfig) -> Option<Checkpoint> {
        let ExploreOutcome::Interrupted {
            reason,
            states,
            deepest,
            frontier,
        } = &report.outcome
        else {
            return None;
        };
        Some(Checkpoint {
            protocol: self.resolved_protocol_id(),
            inputs: self.resolved_inputs(),
            spec: config.spec.clone(),
            faults: config.faults,
            step_bound: config.step_bound,
            reason: *reason,
            states: *states,
            terminals: report.terminals,
            deepest: *deepest,
            dedup_hits: report.stats.dedup_hits,
            frontier: frontier.clone(),
        })
    }

    /// Shared tail of [`run`](Explorer::run) and
    /// [`resume`](Explorer::resume): dispatch, progress sampling, and
    /// the artifact/checkpoint escape hatches.
    fn run_with(
        &self,
        seeds: Option<Seeds<P::State>>,
        config: &ExploreConfig,
        base: Option<&Checkpoint>,
    ) -> Report
    where
        P::State: Hash + Eq,
    {
        bso_telemetry::progress::spawn_global_if_env();
        let owned;
        let inputs: &[Value] = match &self.inputs {
            Some(v) => v,
            None => {
                owned = self.proto.pid_inputs();
                &owned
            }
        };
        let run = self
            .sym_run
            .or(self.par_run)
            .unwrap_or(run_plain_serial::<P> as RunFn<P>);
        let mut report = run(self.proto, inputs, seeds, config, self.resolved_workers());
        if let Some(cp) = base {
            report.states += cp.states;
            report.terminals += cp.terminals;
            report.stats.dedup_hits += cp.dedup_hits;
            report.max_steps_per_proc = Vec::new();
            match &mut report.outcome {
                ExploreOutcome::Exhausted { states, deepest }
                | ExploreOutcome::Interrupted {
                    states, deepest, ..
                } => {
                    *states = report.states;
                    *deepest = (*deepest).max(cp.deepest);
                }
                _ => {}
            }
        }
        // The stream always ends with a sample of the final counters,
        // even when the whole run fits inside one sampling interval.
        bso_telemetry::progress::sample_global_now();
        if let Some(v) = report.outcome.violation() {
            if let Some(path) = std::env::var_os(artifact::ENV_VAR) {
                let art = self.artifact_for_in(v, config);
                match art.save(&path) {
                    Ok(()) => eprintln!(
                        "counterexample artifact written to {}",
                        std::path::Path::new(&path).display()
                    ),
                    Err(e) => eprintln!(
                        "warning: failed to write {} artifact: {e}",
                        artifact::ENV_VAR
                    ),
                }
            }
        }
        if matches!(report.outcome, ExploreOutcome::Interrupted { .. }) {
            if let Some(path) = std::env::var_os(checkpoint::ENV_VAR) {
                let cp = self
                    .checkpoint_for_in(&report, config)
                    .expect("outcome is Interrupted");
                match cp.save(&path) {
                    Ok(()) => eprintln!(
                        "checkpoint written to {}",
                        std::path::Path::new(&path).display()
                    ),
                    Err(e) => eprintln!(
                        "warning: failed to write {} checkpoint: {e}",
                        checkpoint::ENV_VAR
                    ),
                }
            }
        }
        report
    }

    /// [`artifact_for`](Explorer::artifact_for) against an explicit
    /// (possibly checkpoint-overridden) configuration.
    fn artifact_for_in(&self, violation: &Violation, config: &ExploreConfig) -> ScheduleArtifact {
        let mut art = ScheduleArtifact::from_violation(
            self.resolved_protocol_id(),
            &self.resolved_inputs(),
            &config.spec,
            violation,
        );
        art.step_bound = config.step_bound;
        art
    }
}

fn assert_inputs_equivariant<P: SymmetricProtocol>(
    proto: &P,
    canon: &SymCanon<'_, P>,
    inputs: &[Value],
) {
    for perm in canon.elements() {
        for (p, input) in inputs.iter().enumerate() {
            assert!(
                proto.permute_value(perm, input) == inputs[perm[p]],
                "symmetry reduction requires equivariant inputs: renaming by {perm:?} \
                 maps p{p}'s input {input} to {}, but p{}'s input is {}",
                proto.permute_value(perm, input),
                perm[p],
                inputs[perm[p]],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolExt;
    use crate::{Action, Protocol};
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Sound 2-process election through a test&set bit (same as the
    /// crate-level example, minus the doc scaffolding).
    struct TasElection;

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum St {
        Announce(usize),
        Grab(usize),
        ReadPeer(usize),
        Done(usize),
    }

    impl Protocol for TasElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::TestAndSet);
            l.push_n(ObjectInit::Register(Value::Nil), 2);
            l
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Announce(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Announce(p) => Action::Invoke(Op::write(ObjectId(1 + p), Value::Pid(*p))),
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::ReadPeer(p) => Action::Invoke(Op::read(ObjectId(1 + (1 - p)))),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = match st.clone() {
                St::Announce(p) => St::Grab(p),
                St::Grab(p) => {
                    if resp == Value::Bool(false) {
                        St::Done(p)
                    } else {
                        St::ReadPeer(p)
                    }
                }
                St::ReadPeer(_) => St::Done(resp.as_pid().expect("peer announced")),
                done => done,
            };
        }
    }

    /// A *broken* election: grabs the bit before announcing, so the
    /// loser can read an empty announcement... made worse: the loser
    /// elects itself. Agreement must be violated on some schedule.
    struct BrokenElection;

    impl Protocol for BrokenElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            TasElection.layout()
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Grab(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
                _ => unreachable!(),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            if let St::Grab(p) = st.clone() {
                // Bug: the loser also decides itself.
                let _ = resp;
                *st = St::Done(p);
            }
        }
    }

    /// A protocol that livelocks: two processes forever read.
    struct Livelock;

    impl Protocol for Livelock {
        type State = u8;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::Register(Value::Nil));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> u8 {
            0
        }
        fn next_action(&self, st: &u8) -> Action {
            let _ = st;
            Action::Invoke(Op::read(ObjectId(0)))
        }
        fn on_response(&self, st: &mut u8, _resp: Value) {
            *st = (*st + 1) % 3;
        }
    }

    #[test]
    fn verifies_sound_election_and_reports_step_bounds() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = Explorer::new(&proto).inputs(&inputs).config(&cfg).run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.states > 0 && report.terminals > 0);
        // announce + grab + (maybe read) + decide = at most 4 steps
        assert_eq!(report.max_steps_per_proc, vec![4, 4]);
        assert!(report.stats.states_per_sec > 0.0);
        assert!(report.stats.peak_frontier > 0);
    }

    #[test]
    fn finds_agreement_violation_with_replayable_schedule() {
        let proto = BrokenElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = Explorer::new(&proto).inputs(&inputs).config(&cfg).run();
        let v = report
            .outcome
            .violation()
            .expect("must be violated")
            .clone();
        assert_eq!(v.kind, ViolationKind::Agreement);

        // The schedule must replay to an actual disagreement.
        let mut sim = crate::Simulation::new(&proto, &inputs);
        let res = sim
            .run(
                &mut crate::scheduler::Scripted::new(v.schedule.clone()),
                100,
            )
            .unwrap();
        assert!(crate::checker::check_election(&res).is_err());
    }

    #[test]
    fn detects_livelock_as_not_wait_free() {
        let proto = Livelock;
        let cfg = ExploreConfig {
            spec: TaskSpec::None,
            ..Default::default()
        };
        let report = Explorer::new(&proto)
            .inputs(&[Value::Nil, Value::Nil])
            .config(&cfg)
            .run();
        let v = report.outcome.violation().expect("livelock must be caught");
        assert_eq!(v.kind, ViolationKind::NotWaitFree);
    }

    #[test]
    fn parallel_and_fingerprint_modes_agree_on_livelock() {
        for dedup in [DedupMode::Exact, DedupMode::Fingerprint] {
            let cfg = ExploreConfig {
                workers: 4,
                dedup,
                ..Default::default()
            };
            let report = Explorer::new(&Livelock)
                .inputs(&[Value::Nil, Value::Nil])
                .config(&cfg)
                .parallel(true)
                .run();
            let v = report.outcome.violation().expect("livelock must be caught");
            assert_eq!(v.kind, ViolationKind::NotWaitFree, "dedup {dedup:?}");
        }
    }

    #[test]
    fn consensus_spec_checks_validity_against_participants() {
        /// Decides a constant that is nobody's input.
        struct ConstDecider;
        impl Protocol for ConstDecider {
            type State = ();
            fn processes(&self) -> usize {
                1
            }
            fn layout(&self) -> Layout {
                Layout::new()
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Decide(Value::Int(99))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let cfg = ExploreConfig {
            spec: TaskSpec::Consensus(vec![Value::Int(1)]),
            ..Default::default()
        };
        let report = Explorer::new(&ConstDecider)
            .inputs(&[Value::Int(1)])
            .config(&cfg)
            .run();
        let v = report.outcome.violation().expect("invalid decision");
        assert_eq!(v.kind, ViolationKind::Validity);
    }

    #[test]
    fn exhaustion_is_reported_not_mistaken_for_a_verdict() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            max_states: 2,
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = Explorer::new(&proto).inputs(&inputs).config(&cfg).run();
        match report.outcome {
            ExploreOutcome::Exhausted { states, deepest } => {
                assert_eq!(states, 2);
                assert!(deepest >= 1, "progress info must be reported");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn budget_of_exactly_the_state_count_suffices() {
        // Measure the exact state count, then re-run with precisely
        // that budget: an inclusive bound must still verify, and one
        // state less must exhaust.
        let proto = TasElection;
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let base = Explorer::new(&proto).inputs(&inputs).config(&cfg);
        let full = base.run();
        assert!(full.outcome.is_verified());
        let exact = base.clone().max_states(full.states).run();
        assert!(
            exact.outcome.is_verified(),
            "max_states == states must verify: {:?}",
            exact.outcome
        );
        let starved = base.max_states(full.states - 1).run();
        match starved.outcome {
            ExploreOutcome::Exhausted { states, .. } => {
                assert_eq!(states, full.states - 1)
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn set_consensus_spec_enforces_bound() {
        /// Everyone decides its own input: n-set consensus but not
        /// (n−1)-set consensus.
        struct OwnInput;
        impl Protocol for OwnInput {
            type State = Value;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Register(Value::Nil));
                l
            }
            fn init(&self, _pid: Pid, input: &Value) -> Value {
                input.clone()
            }
            fn next_action(&self, st: &Value) -> Action {
                Action::Decide(st.clone())
            }
            fn on_response(&self, _st: &mut Value, _resp: Value) {}
        }
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let ok = Explorer::new(&OwnInput)
            .inputs(&inputs)
            .spec(TaskSpec::SetConsensus(inputs.clone(), 3))
            .run();
        assert!(ok.outcome.is_verified());
        let bad = Explorer::new(&OwnInput)
            .inputs(&inputs)
            .spec(TaskSpec::SetConsensus(inputs.clone(), 2))
            .run();
        assert_eq!(
            bad.outcome.violation().unwrap().kind,
            ViolationKind::Agreement
        );
    }

    #[test]
    fn symmetric_exploration_agrees_with_plain_on_a_symmetric_protocol() {
        /// Fully symmetric: everyone sticky-writes its pid and elects
        /// the pid the write-once register reports (the first writer).
        struct FirstWriteWins;

        #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum FS {
            Write(usize),
            Done(usize),
        }

        impl Protocol for FirstWriteWins {
            type State = FS;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Sticky);
                l
            }
            fn init(&self, pid: Pid, _input: &Value) -> FS {
                FS::Write(pid)
            }
            fn next_action(&self, st: &FS) -> Action {
                match st {
                    FS::Write(p) => {
                        Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(Value::Pid(*p))))
                    }
                    FS::Done(p) => Action::Decide(Value::Pid(*p)),
                }
            }
            fn on_response(&self, st: &mut FS, resp: Value) {
                if let FS::Write(_) = st {
                    *st = FS::Done(resp.as_pid().expect("sticky holds the winner"));
                }
            }
        }

        impl SymmetricProtocol for FirstWriteWins {
            fn symmetry_group(&self) -> Vec<Vec<Pid>> {
                // Full S₃.
                vec![
                    vec![0, 2, 1],
                    vec![1, 0, 2],
                    vec![1, 2, 0],
                    vec![2, 0, 1],
                    vec![2, 1, 0],
                ]
            }
            fn permute_state(&self, perm: &[Pid], st: &FS) -> FS {
                match st {
                    FS::Write(p) => FS::Write(perm[*p]),
                    FS::Done(p) => FS::Done(perm[*p]),
                }
            }
        }

        let proto = FirstWriteWins;
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let base = Explorer::new(&proto).inputs(&inputs).config(&cfg);
        let plain = base.run();
        let sym = base.clone().symmetric(true).run();
        assert!(plain.outcome.is_verified());
        assert!(sym.outcome.is_verified());
        // Same exact step bounds from ~6× fewer states.
        assert_eq!(plain.max_steps_per_proc, sym.max_steps_per_proc);
        assert!(
            sym.states * 3 < plain.states,
            "symmetry should collapse orbits: {} vs {}",
            sym.states,
            plain.states
        );
        // And in parallel.
        let sym_par = base.symmetric(true).parallel(true).workers(3).run();
        assert!(sym_par.outcome.is_verified());
        assert_eq!(sym_par.max_steps_per_proc, sym.max_steps_per_proc);
        assert_eq!(sym_par.states, sym.states);
    }

    #[test]
    fn symmetric_exploration_rejects_non_equivariant_inputs() {
        // Symmetric protocol, but consensus inputs that distinguish
        // processes: the reduction must refuse to run.
        struct Sym2;
        impl Protocol for Sym2 {
            type State = u8;
            fn processes(&self) -> usize {
                2
            }
            fn layout(&self) -> Layout {
                Layout::new()
            }
            fn init(&self, _pid: Pid, _input: &Value) -> u8 {
                0
            }
            fn next_action(&self, _st: &u8) -> Action {
                Action::Decide(Value::Int(0))
            }
            fn on_response(&self, _st: &mut u8, _resp: Value) {}
        }
        impl SymmetricProtocol for Sym2 {
            fn symmetry_group(&self) -> Vec<Vec<Pid>> {
                vec![vec![1, 0]]
            }
            fn permute_state(&self, _perm: &[Pid], st: &u8) -> u8 {
                *st
            }
        }
        let result = std::panic::catch_unwind(|| {
            Explorer::new(&Sym2)
                .inputs(&[Value::Int(1), Value::Int(2)])
                .symmetric(true)
                .run()
        });
        assert!(result.is_err(), "non-equivariant inputs must be rejected");
    }
}
