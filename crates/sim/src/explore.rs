//! Exhaustive exploration of *all* interleavings of a protocol.
//!
//! For a finite-state protocol instance, [`explore`] decides the three
//! clauses of the paper's task specifications outright:
//!
//! * **Agreement / validity** are checked incrementally at every
//!   decision along every path; any counterexample is reported with a
//!   replayable schedule.
//! * **Wait-freedom** reduces to *acyclicity of the reachable global
//!   state graph*: a process always has an enabled step until it
//!   decides, so an infinite run that starves no-one out of steps
//!   exists iff the (finite) state graph has a cycle, and a cycle is
//!   exactly a schedule on which some process takes infinitely many
//!   steps without deciding. Conversely, in an acyclic finite graph
//!   every solo extension of every reachable state terminates — which
//!   is wait-freedom. The explorer therefore also yields the exact
//!   worst-case number of steps per process over all schedules.
//! * **Crash tolerance** needs no separate exploration: a crashed
//!   process is one that is never scheduled again, and every clause
//!   above is checked on every *prefix*, so a violation in a crashy
//!   run appears as a violation along the corresponding crash-free
//!   path prefix. (Validity at decision time is checked against the
//!   processes that have stepped *so far*, which is precisely the
//!   participant set of the crash-closure of that prefix.)
//!
//! The exploration itself runs on the sharded dataflow engine of
//! [`crate::engine`] (one code path for every variant; see its module
//! docs for the algorithm). Four entry points scale it:
//!
//! * [`explore`] — single-threaded, exact deduplication: the baseline,
//!   fully deterministic.
//! * [`explore_parallel`] — a work-stealing worker pool
//!   ([`ExploreConfig::workers`]).
//! * [`explore_symmetric`] / [`explore_symmetric_parallel`] — also
//!   quotient the state space by the protocol's process-symmetry group
//!   ([`crate::symmetry::SymmetricProtocol`]), visiting one
//!   representative per orbit.
//!
//! [`ExploreConfig::dedup`] selects exact full-state deduplication or
//! memory-lean 64-bit [`fingerprints`](crate::fingerprint): the latter
//! stores no state clones but admits a ≈ `states²/2⁶⁵` probability of
//! a hash collision silently merging two distinct states. A collision
//! can only *lose* states (risking a wrong `Verified`), never
//! fabricate a counterexample: reported schedules always replay.
//!
//! State explosion limits exhaustive runs to small `(n, k)`; the
//! per-instance results are still genuine theorems about those
//! instances ("for n=3, k=4, `LabelElection` is a correct wait-free
//! election under **every** schedule").

use std::fmt;
use std::hash::Hash;
use std::time::Duration;

use bso_objects::Value;

use crate::engine;
use crate::symmetry::{NoCanon, SymCanon, SymmetricProtocol};
use crate::{Pid, Protocol, SharedMemory};

/// What task specification to enforce during exploration.
#[derive(Clone, Debug, Default)]
pub enum TaskSpec {
    /// Leader election: agreement on a participating process id.
    Election,
    /// Consensus over the given inputs (one per process).
    Consensus(Vec<Value>),
    /// `l`-set consensus over the given inputs.
    SetConsensus(Vec<Value>, usize),
    /// No decision-value checking (termination/step bounds only).
    #[default]
    None,
}

/// How generated states are deduplicated in the visited table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DedupMode {
    /// Full-state keys: exact, collision-free (the default).
    #[default]
    Exact,
    /// 64-bit fingerprints: no state clones are retained, at a
    /// ≈ `states²/2⁶⁵` risk of a collision merging two states (which
    /// can yield a wrong `Verified`, never a bogus counterexample).
    Fingerprint,
}

/// Exploration limits and the specification to enforce.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Abort (as [`ExploreOutcome::Exhausted`]) after visiting this
    /// many distinct states.
    pub max_states: usize,
    /// The task specification to enforce at decisions.
    pub spec: TaskSpec,
    /// Worker threads for the parallel entry points (`0` = one per
    /// available CPU). [`explore`]/[`explore_symmetric`] ignore this
    /// and always run single-threaded.
    pub workers: usize,
    /// Visited-table key representation.
    pub dedup: DedupMode,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_states: 2_000_000,
            spec: TaskSpec::None,
            workers: 0,
            dedup: DedupMode::Exact,
        }
    }
}

/// The kind of a discovered violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Two processes decided differently (or too many set-consensus
    /// values).
    Agreement,
    /// A decision no participant proposed.
    Validity,
    /// A cycle in the state graph: some schedule starves a process
    /// forever — the protocol is not wait-free.
    NotWaitFree,
    /// The protocol performed an illegal shared-memory operation.
    IllegalOperation,
}

/// A concrete counterexample: a schedule driving the protocol into the
/// violation. Replay it with [`crate::scheduler::Scripted`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub description: String,
    /// The schedule (pid per step) reaching the violation.
    pub schedule: Vec<Pid>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} steps: {}",
            self.kind,
            self.schedule.len(),
            self.description
        )
    }
}

/// The verdict of an exploration.
#[derive(Clone, Debug)]
pub enum ExploreOutcome {
    /// Every interleaving satisfies the specification and terminates.
    Verified,
    /// A counterexample was found.
    Violated(Violation),
    /// The state budget ran out before the exploration completed; no
    /// verdict. The payload reports how far the exploration got, for
    /// budget tuning.
    Exhausted {
        /// Distinct states visited before giving up (= the budget).
        states: usize,
        /// The deepest schedule prefix reached (steps from the initial
        /// state).
        deepest: usize,
    },
}

impl ExploreOutcome {
    /// Whether the outcome is [`ExploreOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified)
    }

    /// The violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            ExploreOutcome::Violated(v) => Some(v),
            _ => None,
        }
    }
}

/// Performance counters from one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the run.
    pub duration: Duration,
    /// Distinct states visited per second of wall-clock time.
    pub states_per_sec: f64,
    /// Generated successors that were already in the visited table.
    pub dedup_hits: usize,
    /// Peak number of queued (generated but unexpanded) states.
    pub peak_frontier: usize,
    /// Successful work-steal operations (0 in serial runs).
    pub steals: usize,
    /// Contended visited-table shard acquisitions.
    pub shard_contention: usize,
}

/// Exploration statistics and verdict.
#[derive(Clone, Debug)]
pub struct Report {
    /// The verdict.
    pub outcome: ExploreOutcome,
    /// Distinct global states visited (orbit representatives when
    /// symmetry reduction is active).
    pub states: usize,
    /// Distinct terminal (all-decided) states.
    pub terminals: usize,
    /// For each process, the exact maximum number of steps it takes
    /// over **all** schedules — the wait-freedom bound witness.
    /// Meaningful only when the outcome is `Verified`.
    pub max_steps_per_proc: Vec<usize>,
    /// Performance counters.
    pub stats: ExploreStats,
}

/// One global state of the explored system.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct StateKey<S> {
    pub(crate) mem: SharedMemory,
    pub(crate) states: Vec<S>,
    pub(crate) decisions: Vec<Option<Value>>,
    pub(crate) stepped: u64,
}

/// Checks a decision of `pid` against the task specification.
///
/// `decisions` holds the *other* processes' decisions (the decider's
/// slot still `None`); `stepped` already includes the decider's bit.
pub(crate) fn check_decision(
    spec: &TaskSpec,
    decisions: &[Option<Value>],
    stepped: u64,
    pid: Pid,
    v: &Value,
) -> Result<(), (ViolationKind, String)> {
    let n = decisions.len();
    let participants = move || (0..n).filter(move |p| stepped >> p & 1 == 1);
    match spec {
        TaskSpec::None => Ok(()),
        TaskSpec::Election => {
            match v.as_pid() {
                Some(w) if participants().any(|p| p == w) => {}
                _ => {
                    return Err((
                        ViolationKind::Validity,
                        format!("p{pid} elected {v}, not a participant"),
                    ))
                }
            }
            for (q, d) in decisions.iter().enumerate() {
                if let Some(w) = d {
                    if w != v {
                        return Err((
                            ViolationKind::Agreement,
                            format!("p{q} elected {w} but p{pid} elected {v}"),
                        ));
                    }
                }
            }
            Ok(())
        }
        TaskSpec::Consensus(inputs) => {
            if !participants().any(|p| &inputs[p] == v) {
                return Err((
                    ViolationKind::Validity,
                    format!("p{pid} decided {v}, not a participant's input"),
                ));
            }
            for (q, d) in decisions.iter().enumerate() {
                if let Some(w) = d {
                    if w != v {
                        return Err((
                            ViolationKind::Agreement,
                            format!("p{q} decided {w} but p{pid} decided {v}"),
                        ));
                    }
                }
            }
            Ok(())
        }
        TaskSpec::SetConsensus(inputs, l) => {
            if !participants().any(|p| &inputs[p] == v) {
                return Err((
                    ViolationKind::Validity,
                    format!("p{pid} decided {v}, not a participant's input"),
                ));
            }
            let mut set: Vec<&Value> = decisions.iter().flatten().collect();
            set.push(v);
            set.sort();
            set.dedup();
            if set.len() > *l {
                return Err((
                    ViolationKind::Agreement,
                    format!("{} distinct decisions exceed the {l}-set bound", set.len()),
                ));
            }
            Ok(())
        }
    }
}

fn init_key<P: Protocol>(proto: &P, inputs: &[Value]) -> StateKey<P::State> {
    let n = proto.processes();
    assert!(n <= 64, "explorer supports at most 64 processes");
    assert_eq!(inputs.len(), n, "need one input per process");
    StateKey {
        mem: SharedMemory::new(&proto.layout()),
        states: inputs
            .iter()
            .enumerate()
            .map(|(p, v)| proto.init(p, v))
            .collect(),
        decisions: vec![None; n],
        stepped: 0,
    }
}

/// Explores **all** interleavings of `proto` from the given inputs,
/// single-threaded with exact-or-fingerprint deduplication per
/// `config.dedup`.
///
/// See the module docs for exactly what a `Verified` outcome proves.
///
/// # Panics
///
/// Panics if the protocol has more than 64 processes or if
/// `inputs.len()` does not match.
pub fn explore<P: Protocol>(proto: &P, inputs: &[Value], config: &ExploreConfig) -> Report
where
    P::State: Hash + Eq,
{
    engine::dispatch_serial(proto, init_key(proto, inputs), config, NoCanon)
}

/// [`explore`] on a pool of work-stealing worker threads
/// ([`ExploreConfig::workers`]; `0` = one per available CPU).
///
/// Verdicts agree with [`explore`]; with several workers the *choice*
/// of counterexample among equally valid ones may differ (the engine
/// keeps the lexicographically smallest schedule discovered before
/// exploration halted).
///
/// # Panics
///
/// As [`explore`].
pub fn explore_parallel<P>(proto: &P, inputs: &[Value], config: &ExploreConfig) -> Report
where
    P: Protocol + Sync,
    P::State: Hash + Eq + Send,
{
    let workers = match config.workers {
        0 => std::thread::available_parallelism().map_or(1, |v| v.get()),
        w => w,
    };
    let init = init_key(proto, inputs);
    if workers <= 1 {
        engine::dispatch_serial(proto, init, config, NoCanon)
    } else {
        engine::dispatch_parallel(proto, init, config, NoCanon, workers)
    }
}

/// [`explore`] under process-symmetry reduction: only one
/// representative per orbit of the protocol's symmetry group is
/// visited (see [`SymmetricProtocol`] for the soundness contract).
///
/// # Panics
///
/// As [`explore`]; additionally panics if the declared symmetry group
/// is invalid (not permutations, or not closed under composition) or
/// if `inputs` is not fixed by the group — renaming processes must
/// rename their inputs onto each other, as with
/// [`crate::ProtocolExt::pid_inputs`], or the specification itself
/// would distinguish the processes and the reduction would be unsound.
pub fn explore_symmetric<P>(proto: &P, inputs: &[Value], config: &ExploreConfig) -> Report
where
    P: SymmetricProtocol,
    P::State: Hash + Eq + Ord,
{
    let canon = SymCanon::new(proto).unwrap_or_else(|e| panic!("{e}"));
    assert_inputs_equivariant(proto, &canon, inputs);
    engine::dispatch_serial(proto, init_key(proto, inputs), config, canon)
}

/// [`explore_symmetric`] on a work-stealing worker pool.
///
/// # Panics
///
/// As [`explore_symmetric`].
pub fn explore_symmetric_parallel<P>(proto: &P, inputs: &[Value], config: &ExploreConfig) -> Report
where
    P: SymmetricProtocol + Sync,
    P::State: Hash + Eq + Ord + Send,
{
    let workers = match config.workers {
        0 => std::thread::available_parallelism().map_or(1, |v| v.get()),
        w => w,
    };
    let canon = SymCanon::new(proto).unwrap_or_else(|e| panic!("{e}"));
    assert_inputs_equivariant(proto, &canon, inputs);
    let init = init_key(proto, inputs);
    if workers <= 1 {
        engine::dispatch_serial(proto, init, config, canon)
    } else {
        engine::dispatch_parallel(proto, init, config, canon, workers)
    }
}

fn assert_inputs_equivariant<P: SymmetricProtocol>(
    proto: &P,
    canon: &SymCanon<'_, P>,
    inputs: &[Value],
) {
    for perm in canon.elements() {
        for (p, input) in inputs.iter().enumerate() {
            assert!(
                proto.permute_value(perm, input) == inputs[perm[p]],
                "symmetry reduction requires equivariant inputs: renaming by {perm:?} \
                 maps p{p}'s input {input} to {}, but p{}'s input is {}",
                proto.permute_value(perm, input),
                perm[p],
                inputs[perm[p]],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolExt;
    use crate::{Action, Protocol};
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Sound 2-process election through a test&set bit (same as the
    /// crate-level example, minus the doc scaffolding).
    struct TasElection;

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum St {
        Announce(usize),
        Grab(usize),
        ReadPeer(usize),
        Done(usize),
    }

    impl Protocol for TasElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::TestAndSet);
            l.push_n(ObjectInit::Register(Value::Nil), 2);
            l
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Announce(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Announce(p) => Action::Invoke(Op::write(ObjectId(1 + p), Value::Pid(*p))),
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::ReadPeer(p) => Action::Invoke(Op::read(ObjectId(1 + (1 - p)))),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = match st.clone() {
                St::Announce(p) => St::Grab(p),
                St::Grab(p) => {
                    if resp == Value::Bool(false) {
                        St::Done(p)
                    } else {
                        St::ReadPeer(p)
                    }
                }
                St::ReadPeer(_) => St::Done(resp.as_pid().expect("peer announced")),
                done => done,
            };
        }
    }

    /// A *broken* election: grabs the bit before announcing, so the
    /// loser can read an empty announcement... made worse: the loser
    /// elects itself. Agreement must be violated on some schedule.
    struct BrokenElection;

    impl Protocol for BrokenElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            TasElection.layout()
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Grab(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
                _ => unreachable!(),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            if let St::Grab(p) = st.clone() {
                // Bug: the loser also decides itself.
                let _ = resp;
                *st = St::Done(p);
            }
        }
    }

    /// A protocol that livelocks: two processes forever read.
    struct Livelock;

    impl Protocol for Livelock {
        type State = u8;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::Register(Value::Nil));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> u8 {
            0
        }
        fn next_action(&self, st: &u8) -> Action {
            let _ = st;
            Action::Invoke(Op::read(ObjectId(0)))
        }
        fn on_response(&self, st: &mut u8, _resp: Value) {
            *st = (*st + 1) % 3;
        }
    }

    #[test]
    fn verifies_sound_election_and_reports_step_bounds() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = explore(&proto, &inputs, &cfg);
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.states > 0 && report.terminals > 0);
        // announce + grab + (maybe read) + decide = at most 4 steps
        assert_eq!(report.max_steps_per_proc, vec![4, 4]);
        assert!(report.stats.states_per_sec > 0.0);
        assert!(report.stats.peak_frontier > 0);
    }

    #[test]
    fn finds_agreement_violation_with_replayable_schedule() {
        let proto = BrokenElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = explore(&proto, &inputs, &cfg);
        let v = report
            .outcome
            .violation()
            .expect("must be violated")
            .clone();
        assert_eq!(v.kind, ViolationKind::Agreement);

        // The schedule must replay to an actual disagreement.
        let mut sim = crate::Simulation::new(&proto, &inputs);
        let res = sim
            .run(
                &mut crate::scheduler::Scripted::new(v.schedule.clone()),
                100,
            )
            .unwrap();
        assert!(crate::checker::check_election(&res).is_err());
    }

    #[test]
    fn detects_livelock_as_not_wait_free() {
        let proto = Livelock;
        let cfg = ExploreConfig {
            spec: TaskSpec::None,
            ..Default::default()
        };
        let report = explore(&proto, &[Value::Nil, Value::Nil], &cfg);
        let v = report.outcome.violation().expect("livelock must be caught");
        assert_eq!(v.kind, ViolationKind::NotWaitFree);
    }

    #[test]
    fn parallel_and_fingerprint_modes_agree_on_livelock() {
        for dedup in [DedupMode::Exact, DedupMode::Fingerprint] {
            let cfg = ExploreConfig {
                workers: 4,
                dedup,
                ..Default::default()
            };
            let report = explore_parallel(&Livelock, &[Value::Nil, Value::Nil], &cfg);
            let v = report.outcome.violation().expect("livelock must be caught");
            assert_eq!(v.kind, ViolationKind::NotWaitFree, "dedup {dedup:?}");
        }
    }

    #[test]
    fn consensus_spec_checks_validity_against_participants() {
        /// Decides a constant that is nobody's input.
        struct ConstDecider;
        impl Protocol for ConstDecider {
            type State = ();
            fn processes(&self) -> usize {
                1
            }
            fn layout(&self) -> Layout {
                Layout::new()
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Decide(Value::Int(99))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let cfg = ExploreConfig {
            spec: TaskSpec::Consensus(vec![Value::Int(1)]),
            ..Default::default()
        };
        let report = explore(&ConstDecider, &[Value::Int(1)], &cfg);
        let v = report.outcome.violation().expect("invalid decision");
        assert_eq!(v.kind, ViolationKind::Validity);
    }

    #[test]
    fn exhaustion_is_reported_not_mistaken_for_a_verdict() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig {
            max_states: 2,
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let report = explore(&proto, &inputs, &cfg);
        match report.outcome {
            ExploreOutcome::Exhausted { states, deepest } => {
                assert_eq!(states, 2);
                assert!(deepest >= 1, "progress info must be reported");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn budget_of_exactly_the_state_count_suffices() {
        // Measure the exact state count, then re-run with precisely
        // that budget: an inclusive bound must still verify, and one
        // state less must exhaust.
        let proto = TasElection;
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let full = explore(&proto, &inputs, &cfg);
        assert!(full.outcome.is_verified());
        let exact = explore(
            &proto,
            &inputs,
            &ExploreConfig {
                max_states: full.states,
                ..cfg.clone()
            },
        );
        assert!(
            exact.outcome.is_verified(),
            "max_states == states must verify: {:?}",
            exact.outcome
        );
        let starved = explore(
            &proto,
            &inputs,
            &ExploreConfig {
                max_states: full.states - 1,
                ..cfg
            },
        );
        match starved.outcome {
            ExploreOutcome::Exhausted { states, .. } => {
                assert_eq!(states, full.states - 1)
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn set_consensus_spec_enforces_bound() {
        /// Everyone decides its own input: n-set consensus but not
        /// (n−1)-set consensus.
        struct OwnInput;
        impl Protocol for OwnInput {
            type State = Value;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Register(Value::Nil));
                l
            }
            fn init(&self, _pid: Pid, input: &Value) -> Value {
                input.clone()
            }
            fn next_action(&self, st: &Value) -> Action {
                Action::Decide(st.clone())
            }
            fn on_response(&self, _st: &mut Value, _resp: Value) {}
        }
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let ok = explore(
            &OwnInput,
            &inputs,
            &ExploreConfig {
                spec: TaskSpec::SetConsensus(inputs.clone(), 3),
                ..Default::default()
            },
        );
        assert!(ok.outcome.is_verified());
        let bad = explore(
            &OwnInput,
            &inputs,
            &ExploreConfig {
                spec: TaskSpec::SetConsensus(inputs.clone(), 2),
                ..Default::default()
            },
        );
        assert_eq!(
            bad.outcome.violation().unwrap().kind,
            ViolationKind::Agreement
        );
    }

    #[test]
    fn symmetric_exploration_agrees_with_plain_on_a_symmetric_protocol() {
        /// Fully symmetric: everyone sticky-writes its pid and elects
        /// the pid the write-once register reports (the first writer).
        struct FirstWriteWins;

        #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum FS {
            Write(usize),
            Done(usize),
        }

        impl Protocol for FirstWriteWins {
            type State = FS;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Sticky);
                l
            }
            fn init(&self, pid: Pid, _input: &Value) -> FS {
                FS::Write(pid)
            }
            fn next_action(&self, st: &FS) -> Action {
                match st {
                    FS::Write(p) => {
                        Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(Value::Pid(*p))))
                    }
                    FS::Done(p) => Action::Decide(Value::Pid(*p)),
                }
            }
            fn on_response(&self, st: &mut FS, resp: Value) {
                if let FS::Write(_) = st {
                    *st = FS::Done(resp.as_pid().expect("sticky holds the winner"));
                }
            }
        }

        impl SymmetricProtocol for FirstWriteWins {
            fn symmetry_group(&self) -> Vec<Vec<Pid>> {
                // Full S₃.
                vec![
                    vec![0, 2, 1],
                    vec![1, 0, 2],
                    vec![1, 2, 0],
                    vec![2, 0, 1],
                    vec![2, 1, 0],
                ]
            }
            fn permute_state(&self, perm: &[Pid], st: &FS) -> FS {
                match st {
                    FS::Write(p) => FS::Write(perm[*p]),
                    FS::Done(p) => FS::Done(perm[*p]),
                }
            }
        }

        let proto = FirstWriteWins;
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig {
            spec: TaskSpec::Election,
            ..Default::default()
        };
        let plain = explore(&proto, &inputs, &cfg);
        let sym = explore_symmetric(&proto, &inputs, &cfg);
        assert!(plain.outcome.is_verified());
        assert!(sym.outcome.is_verified());
        // Same exact step bounds from ~6× fewer states.
        assert_eq!(plain.max_steps_per_proc, sym.max_steps_per_proc);
        assert!(
            sym.states * 3 < plain.states,
            "symmetry should collapse orbits: {} vs {}",
            sym.states,
            plain.states
        );
        // And in parallel.
        let sym_par =
            explore_symmetric_parallel(&proto, &inputs, &ExploreConfig { workers: 3, ..cfg });
        assert!(sym_par.outcome.is_verified());
        assert_eq!(sym_par.max_steps_per_proc, sym.max_steps_per_proc);
        assert_eq!(sym_par.states, sym.states);
    }

    #[test]
    fn symmetric_exploration_rejects_non_equivariant_inputs() {
        // Symmetric protocol, but consensus inputs that distinguish
        // processes: the reduction must refuse to run.
        struct Sym2;
        impl Protocol for Sym2 {
            type State = u8;
            fn processes(&self) -> usize {
                2
            }
            fn layout(&self) -> Layout {
                Layout::new()
            }
            fn init(&self, _pid: Pid, _input: &Value) -> u8 {
                0
            }
            fn next_action(&self, _st: &u8) -> Action {
                Action::Decide(Value::Int(0))
            }
            fn on_response(&self, _st: &mut u8, _resp: Value) {}
        }
        impl SymmetricProtocol for Sym2 {
            fn symmetry_group(&self) -> Vec<Vec<Pid>> {
                vec![vec![1, 0]]
            }
            fn permute_state(&self, _perm: &[Pid], st: &u8) -> u8 {
                *st
            }
        }
        let result = std::panic::catch_unwind(|| {
            explore_symmetric(
                &Sym2,
                &[Value::Int(1), Value::Int(2)],
                &ExploreConfig::default(),
            )
        });
        assert!(result.is_err(), "non-equivariant inputs must be rejected");
    }
}
