//! Exhaustive exploration of *all* interleavings of a protocol.
//!
//! For a finite-state protocol instance, [`explore`] decides the three
//! clauses of the paper's task specifications outright:
//!
//! * **Agreement / validity** are checked incrementally at every
//!   decision along every path; any counterexample is reported with a
//!   replayable schedule.
//! * **Wait-freedom** reduces to *acyclicity of the reachable global
//!   state graph*: a process always has an enabled step until it
//!   decides, so an infinite run that starves no-one out of steps
//!   exists iff the (finite) state graph has a cycle, and a cycle is
//!   exactly a schedule on which some process takes infinitely many
//!   steps without deciding. Conversely, in an acyclic finite graph
//!   every solo extension of every reachable state terminates — which
//!   is wait-freedom. The explorer therefore also yields the exact
//!   worst-case number of steps per process over all schedules.
//! * **Crash tolerance** needs no separate exploration: a crashed
//!   process is one that is never scheduled again, and every clause
//!   above is checked on every *prefix*, so a violation in a crashy
//!   run appears as a violation along the corresponding crash-free
//!   path prefix. (Validity at decision time is checked against the
//!   processes that have stepped *so far*, which is precisely the
//!   participant set of the crash-closure of that prefix.)
//!
//! State explosion limits exhaustive runs to small `(n, k)`; the
//! per-instance results are still genuine theorems about those
//! instances ("for n=3, k=4, `LabelElection` is a correct wait-free
//! election under **every** schedule").

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

use bso_objects::Value;

use crate::{Action, Pid, Protocol, SharedMemory};

/// What task specification to enforce during exploration.
#[derive(Clone, Debug, Default)]
pub enum TaskSpec {
    /// Leader election: agreement on a participating process id.
    Election,
    /// Consensus over the given inputs (one per process).
    Consensus(Vec<Value>),
    /// `l`-set consensus over the given inputs.
    SetConsensus(Vec<Value>, usize),
    /// No decision-value checking (termination/step bounds only).
    #[default]
    None,
}

/// Exploration limits and the specification to enforce.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Abort (as [`ExploreOutcome::Exhausted`]) after visiting this
    /// many distinct states.
    pub max_states: usize,
    /// The task specification to enforce at decisions.
    pub spec: TaskSpec,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig { max_states: 2_000_000, spec: TaskSpec::None }
    }
}

/// The kind of a discovered violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Two processes decided differently (or too many set-consensus
    /// values).
    Agreement,
    /// A decision no participant proposed.
    Validity,
    /// A cycle in the state graph: some schedule starves a process
    /// forever — the protocol is not wait-free.
    NotWaitFree,
    /// The protocol performed an illegal shared-memory operation.
    IllegalOperation,
}

/// A concrete counterexample: a schedule driving the protocol into the
/// violation. Replay it with [`crate::scheduler::Scripted`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub description: String,
    /// The schedule (pid per step) reaching the violation.
    pub schedule: Vec<Pid>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} steps: {}",
            self.kind,
            self.schedule.len(),
            self.description
        )
    }
}

/// The verdict of an exploration.
#[derive(Clone, Debug)]
pub enum ExploreOutcome {
    /// Every interleaving satisfies the specification and terminates.
    Verified,
    /// A counterexample was found.
    Violated(Violation),
    /// The state budget ran out before the exploration completed; no
    /// verdict.
    Exhausted,
}

impl ExploreOutcome {
    /// Whether the outcome is [`ExploreOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified)
    }

    /// The violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            ExploreOutcome::Violated(v) => Some(v),
            _ => None,
        }
    }
}

/// Exploration statistics and verdict.
#[derive(Clone, Debug)]
pub struct Report {
    /// The verdict.
    pub outcome: ExploreOutcome,
    /// Distinct global states visited.
    pub states: usize,
    /// Distinct terminal (all-decided) states.
    pub terminals: usize,
    /// For each process, the exact maximum number of steps it takes
    /// over **all** schedules — the wait-freedom bound witness.
    /// Meaningful only when the outcome is `Verified`.
    pub max_steps_per_proc: Vec<usize>,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct StateKey<S> {
    mem: SharedMemory,
    states: Vec<S>,
    decisions: Vec<Option<Value>>,
    stepped: u64,
}

enum Stop {
    Violation(Violation),
    Exhausted,
}

struct Explorer<'p, P: Protocol> {
    proto: &'p P,
    config: &'p ExploreConfig,
    memo: HashMap<StateKey<P::State>, Vec<usize>>,
    gray: HashSet<StateKey<P::State>>,
    path: Vec<Pid>,
    terminals: usize,
}

impl<'p, P: Protocol> Explorer<'p, P>
where
    P::State: Hash + Eq,
{
    fn enabled(key: &StateKey<P::State>) -> Vec<Pid> {
        (0..key.decisions.len()).filter(|&p| key.decisions[p].is_none()).collect()
    }

    /// Applies one step of `pid` to a copy of `key`; checks the task
    /// specification if the step is a decision.
    fn successor(
        &mut self,
        key: &StateKey<P::State>,
        pid: Pid,
    ) -> Result<StateKey<P::State>, Stop> {
        let mut next = key.clone();
        match self.proto.next_action(&next.states[pid]) {
            Action::Invoke(op) => {
                let resp = next.mem.apply(pid, &op).map_err(|err| {
                    self.path.push(pid);
                    Stop::Violation(Violation {
                        kind: ViolationKind::IllegalOperation,
                        description: format!("p{pid} applied {op}: {err}"),
                        schedule: self.path_schedule_pop(),
                    })
                })?;
                self.proto.on_response(&mut next.states[pid], resp);
                next.stepped |= 1 << pid;
            }
            Action::Decide(v) => {
                next.stepped |= 1 << pid;
                self.check_decision(&next, pid, &v)?;
                next.decisions[pid] = Some(v);
            }
        }
        Ok(next)
    }

    fn path_schedule_pop(&mut self) -> Vec<Pid> {
        let s = self.path.clone();
        self.path.pop();
        s
    }

    fn stop(&mut self, pid: Pid, kind: ViolationKind, description: String) -> Stop {
        self.path.push(pid);
        Stop::Violation(Violation { kind, description, schedule: self.path_schedule_pop() })
    }

    fn check_decision(
        &mut self,
        key: &StateKey<P::State>,
        pid: Pid,
        v: &Value,
    ) -> Result<(), Stop> {
        let stepped = key.stepped;
        let n = key.decisions.len();
        let participants = move || (0..n).filter(move |p| stepped >> p & 1 == 1);
        match &self.config.spec {
            TaskSpec::None => Ok(()),
            TaskSpec::Election => {
                match v.as_pid() {
                    Some(w) if participants().any(|p| p == w) => {}
                    _ => {
                        return Err(self.stop(
                            pid,
                            ViolationKind::Validity,
                            format!("p{pid} elected {v}, not a participant"),
                        ))
                    }
                }
                for (q, d) in key.decisions.iter().enumerate() {
                    if let Some(w) = d {
                        if w != v {
                            return Err(self.stop(
                                pid,
                                ViolationKind::Agreement,
                                format!("p{q} elected {w} but p{pid} elected {v}"),
                            ));
                        }
                    }
                }
                Ok(())
            }
            TaskSpec::Consensus(inputs) => {
                if !participants().any(|p| &inputs[p] == v) {
                    return Err(self.stop(
                        pid,
                        ViolationKind::Validity,
                        format!("p{pid} decided {v}, not a participant's input"),
                    ));
                }
                for (q, d) in key.decisions.iter().enumerate() {
                    if let Some(w) = d {
                        if w != v {
                            return Err(self.stop(
                                pid,
                                ViolationKind::Agreement,
                                format!("p{q} decided {w} but p{pid} decided {v}"),
                            ));
                        }
                    }
                }
                Ok(())
            }
            TaskSpec::SetConsensus(inputs, l) => {
                if !participants().any(|p| &inputs[p] == v) {
                    return Err(self.stop(
                        pid,
                        ViolationKind::Validity,
                        format!("p{pid} decided {v}, not a participant's input"),
                    ));
                }
                let mut set: Vec<&Value> = key.decisions.iter().flatten().collect();
                set.push(v);
                set.sort();
                set.dedup();
                if set.len() > *l {
                    return Err(self.stop(
                        pid,
                        ViolationKind::Agreement,
                        format!("{} distinct decisions exceed the {l}-set bound", set.len()),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Returns, for each process, the maximum number of further steps
    /// it can take from `key` over all schedules.
    fn dfs(&mut self, key: StateKey<P::State>) -> Result<Vec<usize>, Stop> {
        if let Some(hit) = self.memo.get(&key) {
            return Ok(hit.clone());
        }
        if self.gray.contains(&key) {
            return Err(Stop::Violation(Violation {
                kind: ViolationKind::NotWaitFree,
                description: "state graph cycle: a schedule exists on which a process \
                              takes unboundedly many steps without deciding"
                    .into(),
                schedule: self.path.clone(),
            }));
        }
        if self.memo.len() + self.gray.len() >= self.config.max_states {
            return Err(Stop::Exhausted);
        }
        let enabled = Self::enabled(&key);
        if enabled.is_empty() {
            self.terminals += 1;
            let zeros = vec![0; key.decisions.len()];
            self.memo.insert(key, zeros.clone());
            return Ok(zeros);
        }
        self.gray.insert(key.clone());
        let mut best = vec![0usize; key.decisions.len()];
        for pid in enabled {
            let next = self.successor(&key, pid)?;
            self.path.push(pid);
            let rem = self.dfs(next);
            self.path.pop();
            let rem = rem?;
            for (p, r) in rem.iter().enumerate() {
                let total = r + usize::from(p == pid);
                if total > best[p] {
                    best[p] = total;
                }
            }
        }
        self.gray.remove(&key);
        match self.memo.entry(key) {
            Entry::Vacant(e) => {
                e.insert(best.clone());
            }
            Entry::Occupied(_) => unreachable!("state finished twice"),
        }
        Ok(best)
    }
}

/// Explores **all** interleavings of `proto` from the given inputs.
///
/// See the module docs for exactly what a `Verified` outcome proves.
///
/// # Panics
///
/// Panics if the protocol has more than 64 processes or if
/// `inputs.len()` does not match.
pub fn explore<P: Protocol>(proto: &P, inputs: &[Value], config: &ExploreConfig) -> Report
where
    P::State: Hash + Eq,
{
    let n = proto.processes();
    assert!(n <= 64, "explorer supports at most 64 processes");
    assert_eq!(inputs.len(), n, "need one input per process");
    let init = StateKey {
        mem: SharedMemory::new(&proto.layout()),
        states: inputs.iter().enumerate().map(|(p, v)| proto.init(p, v)).collect(),
        decisions: vec![None; n],
        stepped: 0,
    };
    let mut ex = Explorer { proto, config, memo: HashMap::new(), gray: HashSet::new(), path: Vec::new(), terminals: 0 };
    match ex.dfs(init) {
        Ok(bounds) => Report {
            outcome: ExploreOutcome::Verified,
            states: ex.memo.len(),
            terminals: ex.terminals,
            max_steps_per_proc: bounds,
        },
        Err(Stop::Violation(v)) => Report {
            outcome: ExploreOutcome::Violated(v),
            states: ex.memo.len() + ex.gray.len(),
            terminals: ex.terminals,
            max_steps_per_proc: Vec::new(),
        },
        Err(Stop::Exhausted) => Report {
            outcome: ExploreOutcome::Exhausted,
            states: ex.memo.len() + ex.gray.len(),
            terminals: ex.terminals,
            max_steps_per_proc: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Sound 2-process election through a test&set bit (same as the
    /// crate-level example, minus the doc scaffolding).
    struct TasElection;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Announce(usize),
        Grab(usize),
        ReadPeer(usize),
        Done(usize),
    }

    impl Protocol for TasElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::TestAndSet);
            l.push_n(ObjectInit::Register(Value::Nil), 2);
            l
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Announce(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Announce(p) => {
                    Action::Invoke(Op::write(ObjectId(1 + p), Value::Pid(*p)))
                }
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::ReadPeer(p) => Action::Invoke(Op::read(ObjectId(1 + (1 - p)))),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = match st.clone() {
                St::Announce(p) => St::Grab(p),
                St::Grab(p) => {
                    if resp == Value::Bool(false) {
                        St::Done(p)
                    } else {
                        St::ReadPeer(p)
                    }
                }
                St::ReadPeer(_) => St::Done(resp.as_pid().expect("peer announced")),
                done => done,
            };
        }
    }

    /// A *broken* election: grabs the bit before announcing, so the
    /// loser can read an empty announcement... made worse: the loser
    /// elects itself. Agreement must be violated on some schedule.
    struct BrokenElection;

    impl Protocol for BrokenElection {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            TasElection.layout()
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Grab(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::Done(p) => Action::Decide(Value::Pid(*p)),
                _ => unreachable!(),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            if let St::Grab(p) = st.clone() {
                // Bug: the loser also decides itself.
                let _ = resp;
                *st = St::Done(p);
            }
        }
    }

    /// A protocol that livelocks: two processes forever read.
    struct Livelock;

    impl Protocol for Livelock {
        type State = u8;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::Register(Value::Nil));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> u8 {
            0
        }
        fn next_action(&self, st: &u8) -> Action {
            let _ = st;
            Action::Invoke(Op::read(ObjectId(0)))
        }
        fn on_response(&self, st: &mut u8, _resp: Value) {
            *st = (*st + 1) % 3;
        }
    }

    #[test]
    fn verifies_sound_election_and_reports_step_bounds() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig { spec: TaskSpec::Election, ..Default::default() };
        let report = explore(&proto, &inputs, &cfg);
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.states > 0 && report.terminals > 0);
        // announce + grab + (maybe read) + decide = at most 4 steps
        assert_eq!(report.max_steps_per_proc, vec![4, 4]);
    }

    #[test]
    fn finds_agreement_violation_with_replayable_schedule() {
        let proto = BrokenElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig { spec: TaskSpec::Election, ..Default::default() };
        let report = explore(&proto, &inputs, &cfg);
        let v = report.outcome.violation().expect("must be violated").clone();
        assert_eq!(v.kind, ViolationKind::Agreement);

        // The schedule must replay to an actual disagreement.
        let mut sim = crate::Simulation::new(&proto, &inputs);
        let res = sim
            .run(&mut crate::scheduler::Scripted::new(v.schedule.clone()), 100)
            .unwrap();
        assert!(crate::checker::check_election(&res).is_err());
    }

    #[test]
    fn detects_livelock_as_not_wait_free() {
        let proto = Livelock;
        let cfg = ExploreConfig { spec: TaskSpec::None, ..Default::default() };
        let report = explore(&proto, &[Value::Nil, Value::Nil], &cfg);
        let v = report.outcome.violation().expect("livelock must be caught");
        assert_eq!(v.kind, ViolationKind::NotWaitFree);
    }

    #[test]
    fn consensus_spec_checks_validity_against_participants() {
        /// Decides a constant that is nobody's input.
        struct ConstDecider;
        impl Protocol for ConstDecider {
            type State = ();
            fn processes(&self) -> usize {
                1
            }
            fn layout(&self) -> Layout {
                Layout::new()
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Decide(Value::Int(99))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let cfg = ExploreConfig {
            spec: TaskSpec::Consensus(vec![Value::Int(1)]),
            ..Default::default()
        };
        let report = explore(&ConstDecider, &[Value::Int(1)], &cfg);
        let v = report.outcome.violation().expect("invalid decision");
        assert_eq!(v.kind, ViolationKind::Validity);
    }

    #[test]
    fn exhaustion_is_reported_not_mistaken_for_a_verdict() {
        let proto = TasElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let cfg = ExploreConfig { max_states: 2, spec: TaskSpec::Election };
        let report = explore(&proto, &inputs, &cfg);
        assert!(matches!(report.outcome, ExploreOutcome::Exhausted));
    }

    #[test]
    fn set_consensus_spec_enforces_bound() {
        /// Everyone decides its own input: n-set consensus but not
        /// (n−1)-set consensus.
        struct OwnInput;
        impl Protocol for OwnInput {
            type State = Value;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Register(Value::Nil));
                l
            }
            fn init(&self, _pid: Pid, input: &Value) -> Value {
                input.clone()
            }
            fn next_action(&self, st: &Value) -> Action {
                Action::Decide(st.clone())
            }
            fn on_response(&self, _st: &mut Value, _resp: Value) {}
        }
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let ok = explore(
            &OwnInput,
            &inputs,
            &ExploreConfig { spec: TaskSpec::SetConsensus(inputs.clone(), 3), ..Default::default() },
        );
        assert!(ok.outcome.is_verified());
        let bad = explore(
            &OwnInput,
            &inputs,
            &ExploreConfig { spec: TaskSpec::SetConsensus(inputs.clone(), 2), ..Default::default() },
        );
        assert_eq!(bad.outcome.violation().unwrap().kind, ViolationKind::Agreement);
    }
}
