//! Run-level task specifications: leader election, consensus, and
//! `l`-set consensus, exactly as defined in Section 2 of the paper.
//!
//! A checker consumes a [`RunResult`] and reports the first violated
//! clause. The [`RunChecker`] trait is the uniform interface: each
//! specification is a struct ([`ElectionChecker`],
//! [`ConsensusChecker`], [`SetConsensusChecker`],
//! [`StepBoundChecker`]), several can be bundled into a
//! [`CheckerSet`], and an exploration-level
//! [`TaskSpec`](crate::TaskSpec) maps onto its run-level counterpart
//! via `RunChecker for TaskSpec`. The historical free functions
//! ([`check_election`] and friends) delegate to the structs.
//!
//! The definitions follow the paper:
//!
//! * **Leader election** (multi-valued consensus): *consistent* —
//!   distinct processes never elect distinct identities; *wait-free* —
//!   each process elects after a finite number of steps; *valid* — the
//!   elected identity is that of a process that proposed itself
//!   (participated).
//! * **k-set consensus**: each decision is some process's input and at
//!   most `k` distinct values are decided.

use std::fmt;

use bso_objects::Value;

use crate::explore::TaskSpec;
use crate::{Pid, ProcStatus, RunResult};

/// A violated clause of a task specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecViolation {
    /// Two processes decided differently where agreement was required.
    Disagreement {
        /// First process and its decision.
        a: (Pid, Value),
        /// Second process and its (different) decision.
        b: (Pid, Value),
    },
    /// A decision value that no participant proposed.
    InvalidDecision {
        /// The deciding process.
        pid: Pid,
        /// Its invalid decision.
        value: Value,
    },
    /// A non-crashed process failed to decide (run quiesced without
    /// it, or it was still running at the step limit).
    Undecided {
        /// The process that never decided.
        pid: Pid,
    },
    /// More distinct values decided than the set-consensus bound
    /// allows.
    TooManyValues {
        /// The bound `l`.
        allowed: usize,
        /// The distinct decisions observed.
        got: Vec<Value>,
    },
    /// A process exceeded the claimed wait-freedom step bound.
    StepBoundExceeded {
        /// The offending process.
        pid: Pid,
        /// Steps it took.
        steps: usize,
        /// The claimed bound.
        bound: usize,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::Disagreement { a, b } => write!(
                f,
                "disagreement: p{} decided {} but p{} decided {}",
                a.0, a.1, b.0, b.1
            ),
            SpecViolation::InvalidDecision { pid, value } => {
                write!(f, "p{pid} decided {value}, which no participant proposed")
            }
            SpecViolation::Undecided { pid } => {
                write!(f, "p{pid} never decided although it did not crash")
            }
            SpecViolation::TooManyValues { allowed, got } => write!(
                f,
                "{} distinct values decided, only {allowed} allowed",
                got.len()
            ),
            SpecViolation::StepBoundExceeded { pid, steps, bound } => {
                write!(f, "p{pid} took {steps} steps, claimed bound is {bound}")
            }
        }
    }
}

impl std::error::Error for SpecViolation {}

fn check_all_decided(res: &RunResult) -> Result<(), SpecViolation> {
    for (pid, st) in res.statuses.iter().enumerate() {
        if matches!(st, ProcStatus::Running) {
            return Err(SpecViolation::Undecided { pid });
        }
    }
    Ok(())
}

fn decided(res: &RunResult) -> impl Iterator<Item = (Pid, &Value)> {
    res.decisions
        .iter()
        .enumerate()
        .filter_map(|(p, d)| d.as_ref().map(|v| (p, v)))
}

/// A run-level specification that can judge a completed run.
///
/// The trait unifies the election / consensus / set-consensus /
/// step-bound checkers so harnesses (the refutations, telemetry
/// validation, [`CheckerSet`]) can attach any mix of specifications
/// uniformly instead of dispatching on free functions.
pub trait RunChecker {
    /// A short stable name for reports and telemetry.
    fn name(&self) -> &'static str;

    /// Checks the run against this specification.
    ///
    /// # Errors
    ///
    /// The first violated clause, as a [`SpecViolation`].
    fn check(&self, res: &RunResult) -> Result<(), SpecViolation>;
}

/// [`RunChecker`] for the leader-election specification.
///
/// `Validity` is interpreted as in the paper: the elected identity must
/// be a *participant* — a process that took at least one step in the
/// run (a process that never moved cannot have proposed itself).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElectionChecker;

impl RunChecker for ElectionChecker {
    fn name(&self) -> &'static str {
        "election"
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        check_all_decided(res)?;
        let participants = res.trace.participants();
        let mut first: Option<(Pid, &Value)> = None;
        for (pid, v) in decided(res) {
            match v.as_pid() {
                Some(w) if participants.contains(&w) => {}
                _ => {
                    return Err(SpecViolation::InvalidDecision {
                        pid,
                        value: v.clone(),
                    })
                }
            }
            match first {
                None => first = Some((pid, v)),
                Some((p0, v0)) => {
                    if v0 != v {
                        return Err(SpecViolation::Disagreement {
                            a: (p0, v0.clone()),
                            b: (pid, v.clone()),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// [`RunChecker`] for the consensus specification over fixed inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusChecker {
    /// The per-process proposed inputs.
    pub inputs: Vec<Value>,
}

impl RunChecker for ConsensusChecker {
    fn name(&self) -> &'static str {
        "consensus"
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        check_all_decided(res)?;
        let participants = res.trace.participants();
        let valid: Vec<&Value> = participants.iter().map(|&p| &self.inputs[p]).collect();
        let mut first: Option<(Pid, &Value)> = None;
        for (pid, v) in decided(res) {
            if !valid.contains(&v) {
                return Err(SpecViolation::InvalidDecision {
                    pid,
                    value: v.clone(),
                });
            }
            match first {
                None => first = Some((pid, v)),
                Some((p0, v0)) => {
                    if v0 != v {
                        return Err(SpecViolation::Disagreement {
                            a: (p0, v0.clone()),
                            b: (pid, v.clone()),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// [`RunChecker`] for `l`-set consensus: at most `l` distinct
/// decisions, each some participant's input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetConsensusChecker {
    /// The per-process proposed inputs.
    pub inputs: Vec<Value>,
    /// The bound on distinct decision values.
    pub l: usize,
}

impl RunChecker for SetConsensusChecker {
    fn name(&self) -> &'static str {
        "set_consensus"
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        check_all_decided(res)?;
        let participants = res.trace.participants();
        let valid: Vec<&Value> = participants.iter().map(|&p| &self.inputs[p]).collect();
        for (pid, v) in decided(res) {
            if !valid.contains(&v) {
                return Err(SpecViolation::InvalidDecision {
                    pid,
                    value: v.clone(),
                });
            }
        }
        let set = res.decision_set();
        if set.len() > self.l {
            return Err(SpecViolation::TooManyValues {
                allowed: self.l,
                got: set,
            });
        }
        Ok(())
    }
}

/// [`RunChecker`] for a claimed wait-freedom bound: every decided
/// process took at most `bound` steps (its decision step included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepBoundChecker {
    /// The claimed per-process step bound.
    pub bound: usize,
}

impl RunChecker for StepBoundChecker {
    fn name(&self) -> &'static str {
        "step_bound"
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        for (pid, &steps) in res.steps.iter().enumerate() {
            if res.decisions[pid].is_some() && steps > self.bound {
                return Err(SpecViolation::StepBoundExceeded {
                    pid,
                    steps,
                    bound: self.bound,
                });
            }
        }
        Ok(())
    }
}

/// [`RunChecker`] for wait-freedom under the paper's crash-fault
/// adversary: every **non-crashed** process must decide (crashed
/// processes owe nothing), and — when a bound is claimed — within
/// `bound` of its own steps. This is the run-level counterpart of
/// exploring with [`Explorer::faults`](crate::Explorer::faults) and
/// [`Explorer::step_bound`](crate::Explorer::step_bound): a protocol
/// is wait-free iff this checker accepts every run under every crash
/// plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitFreeChecker {
    /// The claimed per-process step bound; `None` only demands that
    /// every non-crashed process decides.
    pub bound: Option<usize>,
}

impl RunChecker for WaitFreeChecker {
    fn name(&self) -> &'static str {
        "wait_free"
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        for (pid, st) in res.statuses.iter().enumerate() {
            match st {
                ProcStatus::Running => return Err(SpecViolation::Undecided { pid }),
                ProcStatus::Crashed => {}
                ProcStatus::Decided(_) => {
                    if let Some(bound) = self.bound {
                        if res.steps[pid] > bound {
                            return Err(SpecViolation::StepBoundExceeded {
                                pid,
                                steps: res.steps[pid],
                                bound,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// An exploration-level [`TaskSpec`] *is* a run-level specification:
/// this impl maps each variant onto its checker ([`TaskSpec::None`]
/// accepts every run), letting code that holds an [`crate::Explorer`]
/// configuration judge concrete runs with it.
impl RunChecker for TaskSpec {
    fn name(&self) -> &'static str {
        match self {
            TaskSpec::Election => ElectionChecker.name(),
            TaskSpec::Consensus(_) => "consensus",
            TaskSpec::SetConsensus(..) => "set_consensus",
            TaskSpec::None => "none",
        }
    }

    fn check(&self, res: &RunResult) -> Result<(), SpecViolation> {
        match self {
            TaskSpec::Election => ElectionChecker.check(res),
            TaskSpec::Consensus(inputs) => ConsensusChecker {
                inputs: inputs.clone(),
            }
            .check(res),
            TaskSpec::SetConsensus(inputs, l) => SetConsensusChecker {
                inputs: inputs.clone(),
                l: *l,
            }
            .check(res),
            TaskSpec::None => Ok(()),
        }
    }
}

/// An ordered bundle of [`RunChecker`]s applied as one.
#[derive(Default)]
pub struct CheckerSet {
    checkers: Vec<Box<dyn RunChecker>>,
}

impl CheckerSet {
    /// An empty set (accepts every run).
    pub fn new() -> CheckerSet {
        CheckerSet::default()
    }

    /// Adds a checker, builder-style.
    #[must_use]
    pub fn with(mut self, checker: impl RunChecker + 'static) -> CheckerSet {
        self.checkers.push(Box::new(checker));
        self
    }

    /// Adds a checker in place.
    pub fn push(&mut self, checker: impl RunChecker + 'static) {
        self.checkers.push(Box::new(checker));
    }

    /// How many checkers the set holds.
    pub fn len(&self) -> usize {
        self.checkers.len()
    }

    /// Whether the set holds no checkers.
    pub fn is_empty(&self) -> bool {
        self.checkers.is_empty()
    }

    /// Runs every checker in order.
    ///
    /// # Errors
    ///
    /// The first failing checker's name and violation.
    pub fn check(&self, res: &RunResult) -> Result<(), (&'static str, SpecViolation)> {
        for c in &self.checkers {
            c.check(res).map_err(|v| (c.name(), v))?;
        }
        Ok(())
    }
}

/// Checks the leader-election specification (see [`ElectionChecker`]).
///
/// # Errors
///
/// The first violated clause, as a [`SpecViolation`].
pub fn check_election(res: &RunResult) -> Result<(), SpecViolation> {
    ElectionChecker.check(res)
}

/// Checks the consensus specification against the run's inputs (see
/// [`ConsensusChecker`]).
///
/// # Errors
///
/// The first violated clause, as a [`SpecViolation`].
pub fn check_consensus(res: &RunResult, inputs: &[Value]) -> Result<(), SpecViolation> {
    ConsensusChecker {
        inputs: inputs.to_vec(),
    }
    .check(res)
}

/// Checks the `l`-set-consensus specification (see
/// [`SetConsensusChecker`]).
///
/// # Errors
///
/// The first violated clause, as a [`SpecViolation`].
pub fn check_set_consensus(
    res: &RunResult,
    inputs: &[Value],
    l: usize,
) -> Result<(), SpecViolation> {
    SetConsensusChecker {
        inputs: inputs.to_vec(),
        l,
    }
    .check(res)
}

/// Checks a claimed wait-freedom bound (see [`StepBoundChecker`]).
///
/// # Errors
///
/// [`SpecViolation::StepBoundExceeded`] for the worst offender.
pub fn check_step_bound(res: &RunResult, bound: usize) -> Result<(), SpecViolation> {
    StepBoundChecker { bound }.check(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Trace};

    fn run_with(decisions: Vec<Option<Value>>, trace: Trace) -> RunResult {
        let statuses = decisions
            .iter()
            .map(|d| match d {
                Some(v) => ProcStatus::Decided(v.clone()),
                None => ProcStatus::Crashed,
            })
            .collect();
        let steps = decisions.iter().map(|_| 1).collect();
        RunResult {
            trace,
            decisions,
            statuses,
            steps,
        }
    }

    fn trace_of(pids: &[Pid]) -> Trace {
        let mut t = Trace::new();
        for &p in pids {
            t.push(p, EventKind::Decided(Value::Nil));
        }
        t
    }

    #[test]
    fn election_accepts_agreeing_participant() {
        let res = run_with(
            vec![Some(Value::Pid(1)), Some(Value::Pid(1))],
            trace_of(&[0, 1]),
        );
        assert!(check_election(&res).is_ok());
    }

    #[test]
    fn election_rejects_disagreement() {
        let res = run_with(
            vec![Some(Value::Pid(0)), Some(Value::Pid(1))],
            trace_of(&[0, 1]),
        );
        assert!(matches!(
            check_election(&res),
            Err(SpecViolation::Disagreement { .. })
        ));
    }

    #[test]
    fn election_rejects_non_participant_winner() {
        // Only p0 took steps, yet both decide p1.
        let res = run_with(vec![Some(Value::Pid(1)), None], trace_of(&[0]));
        assert!(matches!(
            check_election(&res),
            Err(SpecViolation::InvalidDecision { .. })
        ));
    }

    #[test]
    fn election_rejects_undecided_runner() {
        let mut res = run_with(vec![Some(Value::Pid(0)), None], trace_of(&[0, 1]));
        res.statuses[1] = ProcStatus::Running;
        assert_eq!(
            check_election(&res),
            Err(SpecViolation::Undecided { pid: 1 })
        );
    }

    #[test]
    fn consensus_validity_uses_participant_inputs() {
        let inputs = vec![Value::Int(3), Value::Int(7)];
        // p1 never stepped; deciding its input 7 is invalid.
        let res = run_with(vec![Some(Value::Int(7)), None], trace_of(&[0]));
        assert!(matches!(
            check_consensus(&res, &inputs),
            Err(SpecViolation::InvalidDecision { .. })
        ));
        let res = run_with(vec![Some(Value::Int(3)), None], trace_of(&[0]));
        assert!(check_consensus(&res, &inputs).is_ok());
    }

    #[test]
    fn set_consensus_counts_distinct_values() {
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let res = run_with(
            vec![
                Some(Value::Int(1)),
                Some(Value::Int(2)),
                Some(Value::Int(2)),
            ],
            trace_of(&[0, 1, 2]),
        );
        assert!(check_set_consensus(&res, &inputs, 2).is_ok());
        assert!(matches!(
            check_set_consensus(&res, &inputs, 1),
            Err(SpecViolation::TooManyValues { allowed: 1, .. })
        ));
    }

    #[test]
    fn step_bound_flags_offender() {
        let mut res = run_with(
            vec![Some(Value::Pid(0)), Some(Value::Pid(0))],
            trace_of(&[0, 1]),
        );
        res.steps = vec![3, 9];
        assert!(check_step_bound(&res, 9).is_ok());
        assert_eq!(
            check_step_bound(&res, 8),
            Err(SpecViolation::StepBoundExceeded {
                pid: 1,
                steps: 9,
                bound: 8
            })
        );
    }

    #[test]
    fn wait_free_checker_tolerates_crashes_but_not_stragglers() {
        // p0 decided in 3 steps, p1 crashed: wait-free.
        let mut res = run_with(vec![Some(Value::Pid(0)), None], trace_of(&[0, 1]));
        res.steps = vec![3, 1];
        assert!(WaitFreeChecker { bound: Some(3) }.check(&res).is_ok());
        assert!(WaitFreeChecker::default().check(&res).is_ok());
        // The decider exceeding the bound is flagged …
        assert_eq!(
            WaitFreeChecker { bound: Some(2) }.check(&res),
            Err(SpecViolation::StepBoundExceeded {
                pid: 0,
                steps: 3,
                bound: 2
            })
        );
        // … and so is a non-crashed process that never decides,
        // regardless of any bound.
        res.statuses[1] = ProcStatus::Running;
        assert_eq!(
            WaitFreeChecker::default().check(&res),
            Err(SpecViolation::Undecided { pid: 1 })
        );
        assert_eq!(WaitFreeChecker::default().name(), "wait_free");
    }

    #[test]
    fn task_spec_maps_onto_run_checkers() {
        let ok = run_with(
            vec![Some(Value::Pid(1)), Some(Value::Pid(1))],
            trace_of(&[0, 1]),
        );
        let bad = run_with(
            vec![Some(Value::Pid(0)), Some(Value::Pid(1))],
            trace_of(&[0, 1]),
        );
        assert_eq!(TaskSpec::Election.name(), "election");
        assert!(TaskSpec::Election.check(&ok).is_ok());
        assert!(TaskSpec::Election.check(&bad).is_err());
        // `None` accepts any run, even a disagreeing one.
        assert!(TaskSpec::None.check(&bad).is_ok());

        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let spec = TaskSpec::Consensus(inputs.clone());
        assert_eq!(spec.check(&ok), check_consensus(&ok, &inputs));
        assert_eq!(spec.check(&bad), check_consensus(&bad, &inputs));

        let spec = TaskSpec::SetConsensus(inputs.clone(), 1);
        assert_eq!(spec.check(&bad), check_set_consensus(&bad, &inputs, 1));
    }

    #[test]
    fn checker_set_reports_first_failure_by_name() {
        let mut res = run_with(
            vec![Some(Value::Pid(1)), Some(Value::Pid(1))],
            trace_of(&[0, 1]),
        );
        res.steps = vec![1, 5];
        let set = CheckerSet::new()
            .with(ElectionChecker)
            .with(StepBoundChecker { bound: 4 });
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let (name, violation) = set.check(&res).unwrap_err();
        assert_eq!(name, "step_bound");
        assert!(matches!(violation, SpecViolation::StepBoundExceeded { .. }));

        res.steps = vec![1, 4];
        assert!(set.check(&res).is_ok());
        assert!(CheckerSet::new().is_empty());
    }

    #[test]
    fn struct_checkers_match_free_functions() {
        let inputs = vec![Value::Int(3), Value::Int(7)];
        let res = run_with(vec![Some(Value::Int(7)), None], trace_of(&[0]));
        assert_eq!(
            ConsensusChecker {
                inputs: inputs.clone()
            }
            .check(&res),
            check_consensus(&res, &inputs)
        );
        assert_eq!(
            SetConsensusChecker {
                inputs: inputs.clone(),
                l: 1
            }
            .check(&res),
            check_set_consensus(&res, &inputs, 1)
        );
        assert_eq!(ElectionChecker.name(), "election");
        assert_eq!(ConsensusChecker { inputs }.name(), "consensus");
    }
}
