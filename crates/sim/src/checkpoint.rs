//! Resumable exploration checkpoints (`bso-checkpoint/v1`).
//!
//! When a resource guard ([`deadline`](crate::Explorer::deadline) or
//! [`memory_budget`](crate::Explorer::memory_budget)) interrupts a
//! run, the engine drains its work-stealing queues into a *frontier*:
//! the set of discovered-but-unexpanded states, each identified not by
//! its (protocol-specific, unserializable) state value but by the
//! deterministic **path** that reaches it — the schedule of pids
//! stepped plus any crash events. A [`Checkpoint`] bundles that
//! frontier with the run's configuration and progress counters;
//! [`Explorer::resume`](crate::Explorer::resume) replays each path to
//! rematerialize the frontier states and continues exploring from
//! them, so a timed-out or over-budget run is a head start rather than
//! wasted work.
//!
//! The resumed run's visited table starts empty: states inside the
//! already-explored region will be re-visited if the frontier reaches
//! back into them. The final *verdict* is nevertheless preserved —
//! violations are found wherever they live, and the interrupting run
//! only reports `Interrupted` after proving that no cycle is confined
//! to its completed region (see the engine docs) — but aggregate
//! counters (`states`, `dedup_hits`) can double-count re-visited
//! states and exact step bounds are not derivable from a multi-root
//! run, so `Report::max_steps_per_proc` stays empty after a resume.
//!
//! Document shape:
//!
//! ```json
//! {"schema": "bso-checkpoint/v1",
//!  "protocol": "label-election-2-3",
//!  "processes": 2,
//!  "inputs": [null, null],
//!  "spec": {"task": "election"},
//!  "faults": 1,
//!  "step_bound": null,
//!  "reason": "deadline",
//!  "states": 412, "terminals": 31, "deepest": 9, "dedup_hits": 57,
//!  "frontier": [{"schedule": [0, 1, 0], "crashes": [{"at": 2, "pid": 1}]}, …]}
//! ```
//!
//! Setting `BSO_CHECKPOINT=path.json` ([`ENV_VAR`]) makes
//! [`Explorer::run`](crate::Explorer::run) write a checkpoint
//! automatically whenever a run is interrupted, and
//! `BSO_DEADLINE_MS=…` ([`DEADLINE_ENV_VAR`]) imposes a deadline
//! without touching code — together they make any example or bench
//! interruptible and resumable from the command line.

use std::path::Path;

use bso_objects::Value;
use bso_telemetry::json::Json;

use crate::artifact::{crashes_from_json, load_json_doc, ArtifactError};
use crate::explore::{FrontierEntry, InterruptReason, TaskSpec};
use crate::Pid;

/// The schema tag every checkpoint carries.
pub const SCHEMA: &str = "bso-checkpoint/v1";

/// The environment variable that makes `Explorer::run` write a
/// checkpoint when a run is interrupted: `BSO_CHECKPOINT=path.json`.
pub const ENV_VAR: &str = "BSO_CHECKPOINT";

/// The environment variable that imposes a wall-clock deadline on
/// `Explorer::run` when none is configured: `BSO_DEADLINE_MS=500`.
pub const DEADLINE_ENV_VAR: &str = "BSO_DEADLINE_MS";

/// A serialized interrupted exploration: everything needed to continue
/// the run later (on the same protocol instance).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// A stable identifier for the protocol instance (same convention
    /// as [`ScheduleArtifact::protocol`](crate::ScheduleArtifact)).
    pub protocol: String,
    /// Per-process inputs of the interrupted run.
    pub inputs: Vec<Value>,
    /// The task specification being checked.
    pub spec: TaskSpec,
    /// The crash budget (`f`) of the interrupted run.
    pub faults: usize,
    /// The wait-freedom step bound of the interrupted run, if any.
    pub step_bound: Option<usize>,
    /// Which resource guard interrupted the run.
    pub reason: InterruptReason,
    /// States discovered before the interrupt (dedup summary).
    pub states: usize,
    /// Terminal states seen before the interrupt.
    pub terminals: usize,
    /// Deepest level reached before the interrupt.
    pub deepest: usize,
    /// Dedup hits before the interrupt (dedup summary).
    pub dedup_hits: usize,
    /// The unexpanded frontier, one replayable path per state.
    pub frontier: Vec<FrontierEntry>,
}

impl Checkpoint {
    /// The checkpoint as a JSON document (see the module docs for the
    /// shape).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("protocol", Json::str(&self.protocol)),
            ("processes", Json::U64(self.inputs.len() as u64)),
            (
                "inputs",
                Json::Arr(
                    self.inputs
                        .iter()
                        .map(crate::artifact::value_to_json)
                        .collect(),
                ),
            ),
            ("spec", crate::artifact::spec_to_json(&self.spec)),
            ("faults", Json::U64(self.faults as u64)),
            (
                "step_bound",
                self.step_bound.map_or(Json::Null, |b| Json::U64(b as u64)),
            ),
            (
                "reason",
                Json::str(match self.reason {
                    InterruptReason::Deadline => "deadline",
                    InterruptReason::MemoryBudget => "memory-budget",
                }),
            ),
            ("states", Json::U64(self.states as u64)),
            ("terminals", Json::U64(self.terminals as u64)),
            ("deepest", Json::U64(self.deepest as u64)),
            ("dedup_hits", Json::U64(self.dedup_hits as u64)),
            (
                "frontier",
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|entry| {
                            let mut fields = vec![(
                                "schedule",
                                Json::Arr(
                                    entry
                                        .schedule
                                        .iter()
                                        .map(|&p| Json::U64(p as u64))
                                        .collect(),
                                ),
                            )];
                            if !entry.crashes.is_empty() {
                                fields.push((
                                    "crashes",
                                    Json::Arr(
                                        entry
                                            .crashes
                                            .iter()
                                            .map(|c| {
                                                Json::obj([
                                                    ("at", Json::U64(c.at as u64)),
                                                    ("pid", Json::U64(c.pid as u64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// [`Checkpoint::to_json`] rendered pretty.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reconstructs a checkpoint from its JSON document.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] describing the first malformed field.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, ArtifactError> {
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(ArtifactError::Schema(format!(
                "missing or unknown \"schema\" (expected {SCHEMA:?})"
            )));
        }
        let protocol = doc
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("\"protocol\" is missing or not a string")?
            .to_string();
        let inputs: Vec<Value> = doc
            .get("inputs")
            .and_then(Json::items)
            .ok_or("\"inputs\" is missing or not an array")?
            .iter()
            .map(crate::artifact::value_from_json)
            .collect::<Result<_, String>>()?;
        if let Some(n) = doc.get("processes").and_then(Json::as_u64) {
            if n as usize != inputs.len() {
                return Err(ArtifactError::Schema(format!(
                    "\"processes\" is {n} but {} inputs are given",
                    inputs.len()
                )));
            }
        }
        let spec = crate::artifact::spec_from_json(doc.get("spec").ok_or("\"spec\" is missing")?)?;
        let faults = doc
            .get("faults")
            .and_then(Json::as_u64)
            .ok_or("\"faults\" is missing or not a number")? as usize;
        let step_bound = match doc.get("step_bound") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .map(|b| b as usize)
                    .ok_or_else(|| format!("\"step_bound\" {j:?} is not a number"))?,
            ),
        };
        let reason = match doc.get("reason").and_then(Json::as_str) {
            Some("deadline") => InterruptReason::Deadline,
            Some("memory-budget") => InterruptReason::MemoryBudget,
            Some(other) => {
                return Err(ArtifactError::Schema(format!(
                    "unknown interrupt reason {other:?}"
                )))
            }
            None => return Err("\"reason\" is missing or not a string".into()),
        };
        let counter = |name: &str| -> Result<usize, ArtifactError> {
            Ok(doc
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name:?} is missing or not a number"))?
                as usize)
        };
        let mut frontier = Vec::new();
        for entry in doc
            .get("frontier")
            .and_then(Json::items)
            .ok_or("\"frontier\" is missing or not an array")?
        {
            let schedule: Vec<Pid> = entry
                .get("schedule")
                .and_then(Json::items)
                .ok_or("frontier entry lacks a \"schedule\" array")?
                .iter()
                .map(|s| {
                    s.as_u64()
                        .map(|p| p as Pid)
                        .ok_or_else(|| format!("schedule entry {s:?} is not a pid"))
                })
                .collect::<Result<_, String>>()?;
            for &p in &schedule {
                if p >= inputs.len() {
                    return Err(ArtifactError::Schema(format!(
                        "frontier schedule steps p{p} but only {} processes exist",
                        inputs.len()
                    )));
                }
            }
            let crashes = crashes_from_json(entry, inputs.len(), schedule.len())?;
            frontier.push(FrontierEntry { schedule, crashes });
        }
        Ok(Checkpoint {
            protocol,
            inputs,
            spec,
            faults,
            step_bound,
            reason,
            states: counter("states")?,
            terminals: counter("terminals")?,
            deepest: counter("deepest")?,
            dedup_hits: counter("dedup_hits")?,
            frontier,
        })
    }

    /// Writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// Reads and parses a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// An [`ArtifactError`] typing the I/O, JSON or schema problem.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, ArtifactError> {
        let doc = load_json_doc(path.as_ref())?;
        Checkpoint::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::CrashEvent;

    fn sample() -> Checkpoint {
        Checkpoint {
            protocol: "label-election-2-3".to_string(),
            inputs: vec![Value::Nil, Value::Nil],
            spec: TaskSpec::Election,
            faults: 1,
            step_bound: Some(6),
            reason: InterruptReason::Deadline,
            states: 412,
            terminals: 31,
            deepest: 9,
            dedup_hits: 57,
            frontier: vec![
                FrontierEntry {
                    schedule: vec![0, 1, 0],
                    crashes: vec![CrashEvent { at: 2, pid: 1 }],
                },
                FrontierEntry {
                    schedule: vec![1],
                    crashes: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn checkpoints_round_trip_through_rendered_json() {
        let cp = sample();
        let doc = bso_telemetry::json::parse(&cp.to_json_string()).unwrap();
        assert_eq!(Checkpoint::from_json(&doc).unwrap(), cp);
    }

    #[test]
    fn malformed_checkpoints_are_rejected_with_reasons() {
        let cp = sample();
        // Wrong schema tag.
        let mut doc = cp.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::str("bso-schedule/v1");
        }
        let err = Checkpoint::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        // Unknown interrupt reason.
        let mut doc = cp.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "reason" {
                    *v = Json::str("coffee-break");
                }
            }
        }
        let err = Checkpoint::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("coffee-break"), "{err}");
        // A frontier schedule stepping a nonexistent process.
        let mut bad = cp.clone();
        bad.frontier[1].schedule = vec![5];
        let err = Checkpoint::from_json(&bad.to_json()).unwrap_err();
        assert!(err.to_string().contains("p5"), "{err}");
        // Truncated file → Parse, missing file → Io.
        let dir = std::env::temp_dir().join(format!("bso-checkpoint-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let truncated = dir.join("t.json");
        std::fs::write(&truncated, &cp.to_json_string()[..40]).unwrap();
        assert!(matches!(
            Checkpoint::load(&truncated),
            Err(ArtifactError::Parse { .. })
        ));
        assert!(matches!(
            Checkpoint::load(dir.join("missing.json")),
            Err(ArtifactError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
