//! Process-symmetry reduction for the exhaustive explorer.
//!
//! Many protocols treat process identities generically: renaming the
//! processes by a permutation π (and renaming every pid-derived datum —
//! decisions, announced names, owned symbols — consistently) maps legal
//! runs to legal runs. The explorer then only needs to visit one
//! representative per *orbit* of global states under the protocol's
//! symmetry group: up to `n!` states collapse into one.
//!
//! A protocol opts in by implementing [`SymmetricProtocol`], declaring
//! its group of pid permutations and how a permutation acts on local
//! states and values. The engine handles the global-state action
//! itself (reindexing the per-process vectors, the `stepped` bitmap,
//! and the shared memory — including per-process snapshot slots).
//!
//! **Soundness contract.** For every declared permutation π the
//! protocol must be *equivariant*: stepping process `p` from state `s`
//! and then applying π must give the same global state as applying π
//! first and then stepping `π(p)`. This holds exactly when
//! `next_action`/`on_response` commute with the renaming, which the
//! implementor must ensure (the engine validates the cheap algebraic
//! prerequisites: each element is a permutation, the set is closed
//! under composition, and the exploration inputs are fixed by the
//! renaming). Counterexample schedules remain genuinely replayable:
//! the engine always expands a *concrete* reachable representative of
//! each orbit, never an abstract canonical form.
//!
//! **Composition with partial-order reduction.** Symmetry composes
//! with [`crate::Explorer::dpor`]: persistent sets are a function of
//! the stored (representative) state alone, so whichever concrete
//! orbit member arrives first, the reduction decisions over the
//! quotient graph are well-defined. Sleep-set masks are indexed by
//! pid, so when a dedup hit lands on a representative reached under a
//! different permutation the arriving mask is translated through the
//! composed pid map before being intersected with the stored one (see
//! `engine::rep_map` and DESIGN.md §3.11).

use std::collections::HashSet;

use bso_objects::{spec::ObjectState, Sym, Value};

use crate::explore::StateKey;
use crate::{Pid, Protocol, SharedMemory};

/// A [`Protocol`] whose transition relation is invariant under a group
/// of process permutations.
///
/// See the module docs for the equivariance contract. Implementing
/// this trait unlocks [`crate::Explorer::symmetric`].
pub trait SymmetricProtocol: Protocol {
    /// The pid permutations under which the protocol is equivariant.
    ///
    /// Element `perm` maps process `p` to `perm[p]`. The identity is
    /// implied and need not be listed; the returned set plus the
    /// identity must be closed under composition (a group). Returning
    /// an empty vector degrades gracefully to no reduction.
    fn symmetry_group(&self) -> Vec<Vec<Pid>>;

    /// The action of `perm` on one process's local state.
    ///
    /// This renames pid-derived data *inside* the state; the engine
    /// itself moves the state from index `p` to index `perm[p]`.
    fn permute_state(&self, perm: &[Pid], state: &Self::State) -> Self::State;

    /// The action of `perm` on a shared-memory or decision value.
    ///
    /// The default renames `Value::Pid` payloads (recursively through
    /// pairs and sequences) and leaves everything else alone. Override
    /// when other data encodes process identities — e.g. a protocol
    /// whose process `p` owns symbol `p` must also rename symbols.
    fn permute_value(&self, perm: &[Pid], v: &Value) -> Value {
        permute_pids_in_value(perm, v)
    }
}

/// Renames every `Value::Pid(p)` with `p < perm.len()` to
/// `Value::Pid(perm[p])`, recursing through pairs and sequences.
pub fn permute_pids_in_value(perm: &[Pid], v: &Value) -> Value {
    match v {
        Value::Pid(p) if *p < perm.len() => Value::Pid(perm[*p]),
        Value::Pair(a, b) => Value::Pair(
            Box::new(permute_pids_in_value(perm, a)),
            Box::new(permute_pids_in_value(perm, b)),
        ),
        Value::Seq(xs) => Value::Seq(xs.iter().map(|x| permute_pids_in_value(perm, x)).collect()),
        other => other.clone(),
    }
}

/// Checks that `raw` (plus the identity) is a permutation group on
/// `0..n` and returns its non-identity elements, deduplicated.
pub(crate) fn validated_group(n: usize, raw: Vec<Vec<Pid>>) -> Result<Vec<Vec<Pid>>, String> {
    let identity: Vec<Pid> = (0..n).collect();
    let mut set: HashSet<Vec<Pid>> = HashSet::new();
    set.insert(identity.clone());
    for perm in raw {
        if perm.len() != n {
            return Err(format!(
                "symmetry element {perm:?} is not a permutation of 0..{n}"
            ));
        }
        let mut seen = vec![false; n];
        for &q in &perm {
            if q >= n || seen[q] {
                return Err(format!(
                    "symmetry element {perm:?} is not a permutation of 0..{n}"
                ));
            }
            seen[q] = true;
        }
        set.insert(perm);
    }
    for a in &set {
        for b in &set {
            let composed: Vec<Pid> = (0..n).map(|p| a[b[p]]).collect();
            if !set.contains(&composed) {
                return Err(format!(
                    "symmetry set is not closed under composition: {a:?} ∘ {b:?} = \
                     {composed:?} is missing"
                ));
            }
        }
    }
    set.remove(&identity);
    let mut elems: Vec<Vec<Pid>> = set.into_iter().collect();
    elems.sort();
    Ok(elems)
}

/// A canonicalization result: the orbit-minimal form of a state and
/// the pid permutation mapping the state's coordinates to canonical
/// coordinates — or `None` when the state is already canonical.
pub(crate) type Canonical<S> = Option<(StateKey<S>, Box<[Pid]>)>;

/// How the engine maps each generated successor to the key it
/// deduplicates on. The non-reducing case is a free no-op; the
/// symmetric case picks the orbit minimum.
pub(crate) trait Canonicalizer<P: Protocol> {
    /// Returns the canonical (orbit-minimal) form of `key` and the pid
    /// permutation mapping `key`'s coordinates to canonical
    /// coordinates — or `None` when `key` is already canonical.
    fn canonicalize(&self, key: &StateKey<P::State>) -> Canonical<P::State>;
}

/// The trivial canonicalizer: every state is its own representative.
pub(crate) struct NoCanon;

impl<P: Protocol> Canonicalizer<P> for NoCanon {
    fn canonicalize(&self, _key: &StateKey<P::State>) -> Canonical<P::State> {
        None
    }
}

/// Orbit-minimum canonicalization under a validated symmetry group.
pub(crate) struct SymCanon<'p, P: SymmetricProtocol> {
    proto: &'p P,
    /// Non-identity group elements.
    elems: Vec<Vec<Pid>>,
}

impl<'p, P: SymmetricProtocol> SymCanon<'p, P> {
    /// Validates the protocol's declared group.
    ///
    /// # Errors
    ///
    /// Any element that is not a permutation of `0..n`, or a set not
    /// closed under composition, is rejected with a description.
    pub(crate) fn new(proto: &'p P) -> Result<SymCanon<'p, P>, String> {
        let elems = validated_group(proto.processes(), proto.symmetry_group())?;
        Ok(SymCanon { proto, elems })
    }

    /// The validated non-identity elements.
    pub(crate) fn elements(&self) -> &[Vec<Pid>] {
        &self.elems
    }

    /// Applies the global-state action of `perm` to `key`.
    fn apply(&self, perm: &[Pid], key: &StateKey<P::State>) -> StateKey<P::State>
    where
        P::State: Clone,
    {
        let n = perm.len();
        debug_assert_eq!(key.states.len(), n);
        let mut states: Vec<P::State> = key.states.clone();
        let mut decisions: Vec<Option<Value>> = vec![None; n];
        let mut stepped = 0u64;
        let mut crashed = 0u64;
        let mut steps = key.steps.clone();
        for p in 0..n {
            let q = perm[p];
            states[q] = self.proto.permute_state(perm, &key.states[p]);
            decisions[q] = key.decisions[p]
                .as_ref()
                .map(|v| self.proto.permute_value(perm, v));
            if key.stepped >> p & 1 == 1 {
                stepped |= 1 << q;
            }
            if key.crashed >> p & 1 == 1 {
                crashed |= 1 << q;
            }
            if !steps.is_empty() {
                steps[q] = key.steps[p];
            }
        }
        let mem = self.apply_memory(perm, &key.mem);
        StateKey {
            mem,
            states,
            decisions,
            stepped,
            crashed,
            steps,
        }
    }

    fn apply_memory(&self, perm: &[Pid], mem: &SharedMemory) -> SharedMemory {
        let pv = |v: &Value| self.proto.permute_value(perm, v);
        let psym = |s: Sym| -> Sym {
            match pv(&Value::Sym(s)) {
                Value::Sym(t) => t,
                other => panic!("permute_value must map symbols to symbols, got {other:?}"),
            }
        };
        let objects = mem
            .objects()
            .iter()
            .map(|obj| match obj {
                ObjectState::Register { val } => ObjectState::Register { val: pv(val) },
                ObjectState::CasK { val, k } => ObjectState::CasK {
                    val: psym(*val),
                    k: *k,
                },
                ObjectState::CasReg { val } => ObjectState::CasReg { val: pv(val) },
                ObjectState::TestAndSet { set } => ObjectState::TestAndSet { set: *set },
                ObjectState::FetchAdd { val } => ObjectState::FetchAdd { val: *val },
                ObjectState::Snapshot { slots } => {
                    // Slot `i` is owned by process `i`, so the slots
                    // move with the processes.
                    assert_eq!(
                        slots.len(),
                        perm.len(),
                        "symmetry reduction requires per-process snapshot slots"
                    );
                    let mut moved: Vec<Value> = slots.clone();
                    for (i, slot) in slots.iter().enumerate() {
                        moved[perm[i]] = pv(slot);
                    }
                    ObjectState::Snapshot { slots: moved }
                }
                ObjectState::Sticky { val } => ObjectState::Sticky { val: pv(val) },
                ObjectState::Queue { items } => ObjectState::Queue {
                    items: items.iter().map(pv).collect(),
                },
                ObjectState::RmwK { val, k, functions } => ObjectState::RmwK {
                    val: psym(*val),
                    k: *k,
                    functions: functions.clone(),
                },
            })
            .collect();
        SharedMemory::from_objects(objects)
    }
}

impl<P: SymmetricProtocol> Canonicalizer<P> for SymCanon<'_, P>
where
    P::State: Clone + Ord,
{
    fn canonicalize(&self, key: &StateKey<P::State>) -> Canonical<P::State> {
        let mut best: Option<(StateKey<P::State>, &[Pid])> = None;
        for perm in &self.elems {
            let cand = self.apply(perm, key);
            let beats_key = cand < *key;
            let beats_best = best.as_ref().is_none_or(|(b, _)| cand < *b);
            if beats_key && beats_best {
                best = Some((cand, perm));
            }
        }
        best.map(|(cand, perm)| (cand, perm.to_vec().into_boxed_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_validation_accepts_s3_and_rejects_non_groups() {
        // Full S₃ (identity omitted).
        let s3 = vec![
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let elems = validated_group(3, s3).unwrap();
        assert_eq!(elems.len(), 5);

        // A lone 3-cycle is not closed (its square is missing).
        let err = validated_group(3, vec![vec![1, 2, 0]]).unwrap_err();
        assert!(err.contains("not closed"), "{err}");

        // Not a permutation.
        assert!(validated_group(3, vec![vec![0, 0, 1]]).is_err());
        assert!(validated_group(3, vec![vec![0, 1]]).is_err());

        // The empty set (identity only) is a group.
        assert!(validated_group(3, Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn pid_renaming_recurses_through_structures() {
        let perm = vec![1usize, 0];
        let v = Value::Pair(
            Box::new(Value::Pid(0)),
            Box::new(Value::Seq(vec![Value::Pid(1), Value::Int(7)])),
        );
        let w = permute_pids_in_value(&perm, &v);
        assert_eq!(
            w,
            Value::Pair(
                Box::new(Value::Pid(1)),
                Box::new(Value::Seq(vec![Value::Pid(0), Value::Int(7)])),
            )
        );
        // Out-of-range pids (foreign data) are left alone.
        assert_eq!(permute_pids_in_value(&perm, &Value::Pid(9)), Value::Pid(9));
    }
}
