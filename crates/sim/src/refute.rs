//! Refutation of candidate protocols: the executable counterpart of
//! the impossibility arguments the paper builds on.
//!
//! FLP (Fischer–Lynch–Paterson) and Loui–Abu-Amara prove that *no*
//! protocol solves wait-free consensus among two processes using only
//! read/write registers, and Herlihy's hierarchy pins each object type
//! to the process counts it supports. A universally quantified
//! impossibility cannot be established by running programs — but the
//! classical valency argument is an *effective procedure* against any
//! given candidate: every candidate must exhibit either an agreement /
//! validity violation or a schedule on which some process runs forever
//! (a state-graph cycle). [`refute_consensus`] finds and returns that
//! witness.
//!
//! `bso-hierarchy` uses this to demonstrate the intro facts of the
//! paper (read/write registers cannot elect a leader even for n = 2;
//! test&set elects 2 but not 3), and the same machinery underlies the
//! claim that makes Theorem 1 a contradiction: (k−1)!-set consensus
//! among (k−1)!+1 processes is unsolvable from read/write registers.

use std::fmt;
use std::hash::Hash;

use bso_objects::Value;

use crate::explore::TaskSpec;
use crate::{ExploreOutcome, Explorer, Protocol, Violation};

/// The witness that a candidate protocol fails its task.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// The violation found (agreement, validity, or non-wait-freedom),
    /// with a replayable schedule.
    pub violation: Violation,
    /// States explored before the witness was found.
    pub states: usize,
}

impl fmt::Display for Refutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refuted after {} states: {}",
            self.states, self.violation
        )
    }
}

/// The verdict on a candidate protocol.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Exhaustively verified correct for this instance — the candidate
    /// *does* solve the task (e.g. test&set 2-consensus).
    Correct {
        /// Distinct states explored.
        states: usize,
        /// Exact worst-case steps per process (wait-freedom witness).
        max_steps_per_proc: Vec<usize>,
    },
    /// A counterexample schedule was found.
    Refuted(Refutation),
    /// The state budget was exhausted without a verdict.
    Unknown {
        /// Distinct states explored.
        states: usize,
    },
}

impl Verdict {
    /// The refutation, if the candidate was refuted.
    pub fn refutation(&self) -> Option<&Refutation> {
        match self {
            Verdict::Refuted(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the candidate was exhaustively verified.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct { .. })
    }
}

fn verdict_of(report: crate::ExploreReport) -> Verdict {
    match report.outcome {
        ExploreOutcome::Verified => Verdict::Correct {
            states: report.states,
            max_steps_per_proc: report.max_steps_per_proc,
        },
        ExploreOutcome::Violated(violation) => Verdict::Refuted(Refutation {
            violation,
            states: report.states,
        }),
        ExploreOutcome::Exhausted { .. } | ExploreOutcome::Interrupted { .. } => Verdict::Unknown {
            states: report.states,
        },
    }
}

/// Tries to refute `proto` as a consensus protocol for the given
/// inputs: explores all schedules, looking for disagreement, an invalid
/// decision, or a run on which some process never decides.
pub fn refute_consensus<P: Protocol>(proto: &P, inputs: &[Value], max_states: usize) -> Verdict
where
    P::State: Hash + Eq,
{
    verdict_of(
        Explorer::new(proto)
            .inputs(inputs)
            .max_states(max_states)
            .spec(TaskSpec::Consensus(inputs.to_vec()))
            .run(),
    )
}

/// Tries to refute `proto` as a leader-election protocol (inputs are
/// the process identities).
pub fn refute_election<P: Protocol>(proto: &P, max_states: usize) -> Verdict
where
    P::State: Hash + Eq,
{
    let inputs: Vec<Value> = (0..proto.processes()).map(Value::Pid).collect();
    verdict_of(
        Explorer::new(proto)
            .inputs(&inputs)
            .max_states(max_states)
            .spec(TaskSpec::Election)
            .run(),
    )
}

/// Tries to refute `proto` as an `l`-set-consensus protocol.
pub fn refute_set_consensus<P: Protocol>(
    proto: &P,
    inputs: &[Value],
    l: usize,
    max_states: usize,
) -> Verdict
where
    P::State: Hash + Eq,
{
    verdict_of(
        Explorer::new(proto)
            .inputs(inputs)
            .max_states(max_states)
            .spec(TaskSpec::SetConsensus(inputs.to_vec(), l))
            .run(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Pid};
    use bso_objects::{Layout, ObjectId, ObjectInit, Op};

    /// The natural — doomed — read/write consensus candidate: write
    /// your input, read the peer's slot, decide the minimum announced
    /// input. FLP guarantees *some* schedule breaks it; here it is
    /// disagreement (p0 decides before p1 announces).
    struct RwMinConsensus;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Write(Pid, Value),
        Read(Pid, Value),
        Done(Value),
    }

    impl Protocol for RwMinConsensus {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push_n(ObjectInit::Register(Value::Nil), 2);
            l
        }
        fn init(&self, pid: Pid, input: &Value) -> St {
            St::Write(pid, input.clone())
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Write(p, v) => Action::Invoke(Op::write(ObjectId(*p), v.clone())),
                St::Read(p, _) => Action::Invoke(Op::read(ObjectId(1 - *p))),
                St::Done(v) => Action::Decide(v.clone()),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = match st.clone() {
                St::Write(p, v) => St::Read(p, v),
                St::Read(_, mine) => {
                    let decision = match resp {
                        Value::Nil => mine,
                        peer => mine.min(peer),
                    };
                    St::Done(decision)
                }
                done => done,
            };
        }
    }

    #[test]
    fn rw_consensus_candidate_is_refuted() {
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let verdict = refute_consensus(&RwMinConsensus, &inputs, 100_000);
        let r = verdict.refutation().expect("FLP says this must fail");
        // Replay the witness schedule and confirm the violation is real.
        let mut sim = crate::Simulation::new(&RwMinConsensus, &inputs);
        let res = sim
            .run(
                &mut crate::scheduler::Scripted::new(r.violation.schedule.clone()),
                1000,
            )
            .unwrap();
        assert!(crate::checker::check_consensus(&res, &inputs).is_err());
    }

    #[test]
    fn verdict_accessors() {
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let verdict = refute_consensus(&RwMinConsensus, &inputs, 100_000);
        assert!(!verdict.is_correct());
        let unknown = refute_consensus(&RwMinConsensus, &inputs, 1);
        assert!(matches!(unknown, Verdict::Unknown { .. }));
    }
}
