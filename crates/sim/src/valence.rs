//! Valency analysis of protocol state graphs.
//!
//! The classical impossibility proofs (FLP, Loui–Abu-Amara, and the
//! set-consensus results the paper's reduction targets) reason about
//! the *valence* of a global state: the set of values still decidable
//! in some extension. A state is **bivalent** if two or more values are
//! reachable, **univalent** if exactly one is, and a bivalent state all
//! of whose successors are univalent is **critical** — the fulcrum of
//! every valency argument.
//!
//! [`analyze`] materializes the reachable state graph (bounded) and
//! computes valences by fixpoint propagation, which also works for
//! cyclic graphs (non-wait-free candidates). It reports how many
//! bivalent and critical states exist and whether the initial state is
//! bivalent — for a read/write consensus candidate with distinct
//! inputs, FLP's Lemma "some initial state is bivalent, and bivalence
//! can be maintained forever" becomes observable data.

use std::collections::HashMap;
use std::hash::Hash;

use bso_objects::Value;

use crate::{Action, Pid, Protocol, SharedMemory};

/// The valence of one state: which decision values are reachable from
/// it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Valence {
    values: Vec<Value>,
}

impl Valence {
    /// The reachable decision values, sorted and deduplicated.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether at least two distinct values are reachable.
    pub fn is_bivalent(&self) -> bool {
        self.values.len() >= 2
    }

    /// Whether exactly one value is reachable.
    pub fn is_univalent(&self) -> bool {
        self.values.len() == 1
    }
}

/// The result of a valency analysis.
#[derive(Clone, Debug)]
pub struct ValenceReport {
    /// Valence of the initial state.
    pub initial: Valence,
    /// Number of reachable states.
    pub states: usize,
    /// Number of bivalent states.
    pub bivalent: usize,
    /// Number of critical states (bivalent, every successor
    /// univalent).
    pub critical: usize,
    /// Whether the graph was fully materialized (false = state budget
    /// hit; counts are then lower bounds).
    pub complete: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key<S> {
    mem: SharedMemory,
    states: Vec<S>,
    decisions: Vec<Option<Value>>,
}

/// Materializes the reachable state graph of `proto` (up to
/// `max_states`) and computes the valence of every state.
///
/// Decisions already made in a state count toward its valence, so the
/// analysis is meaningful even for protocols violating agreement.
///
/// # Panics
///
/// Panics if a process performs an illegal shared-memory operation
/// (the candidate should at least type-check against its own layout).
pub fn analyze<P: Protocol>(proto: &P, inputs: &[Value], max_states: usize) -> ValenceReport
where
    P::State: Hash + Eq,
{
    let n = proto.processes();
    assert_eq!(inputs.len(), n);
    let init = Key {
        mem: SharedMemory::new(&proto.layout()),
        states: inputs
            .iter()
            .enumerate()
            .map(|(p, v)| proto.init(p, v))
            .collect(),
        decisions: vec![None; n],
    };

    // 1. BFS-materialize the graph.
    let mut index: HashMap<Key<P::State>, usize> = HashMap::new();
    let mut keys: Vec<Key<P::State>> = Vec::new();
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    index.insert(init.clone(), 0);
    keys.push(init);
    succs.push(Vec::new());
    queue.push_back(0usize);
    let mut complete = true;
    while let Some(i) = queue.pop_front() {
        let key = keys[i].clone();
        let enabled: Vec<Pid> = (0..n).filter(|&p| key.decisions[p].is_none()).collect();
        for pid in enabled {
            let mut next = key.clone();
            match proto.next_action(&next.states[pid]) {
                Action::Invoke(op) => {
                    let resp = next
                        .mem
                        .apply(pid, &op)
                        .unwrap_or_else(|e| panic!("p{pid} illegal op {op}: {e}"));
                    proto.on_response(&mut next.states[pid], resp);
                }
                Action::Decide(v) => next.decisions[pid] = Some(v),
            }
            let j = match index.get(&next) {
                Some(&j) => j,
                None => {
                    if keys.len() >= max_states {
                        complete = false;
                        continue;
                    }
                    let j = keys.len();
                    index.insert(next.clone(), j);
                    keys.push(next);
                    succs.push(Vec::new());
                    queue.push_back(j);
                    j
                }
            };
            succs[i].push(j);
        }
    }

    // 2. Fixpoint propagation of reachable decision values.
    let mut vals: Vec<Vec<Value>> = keys
        .iter()
        .map(|k| {
            let mut v: Vec<Value> = k.decisions.iter().flatten().cloned().collect();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..keys.len()).rev() {
            let mut merged = vals[i].clone();
            for &j in &succs[i] {
                for v in &vals[j] {
                    if !merged.contains(v) {
                        merged.push(v.clone());
                    }
                }
            }
            merged.sort();
            if merged != vals[i] {
                vals[i] = merged;
                changed = true;
            }
        }
    }

    // 3. Classify.
    let bivalent = vals.iter().filter(|v| v.len() >= 2).count();
    let critical = (0..keys.len())
        .filter(|&i| {
            vals[i].len() >= 2
                && !succs[i].is_empty()
                && succs[i].iter().all(|&j| vals[j].len() == 1)
        })
        .count();
    ValenceReport {
        initial: Valence {
            values: vals[0].clone(),
        },
        states: keys.len(),
        bivalent,
        critical,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Test&set consensus for two processes (sound): the winner's input
    /// prevails.
    struct TasConsensus;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Announce(Pid, Value),
        Grab(Pid, Value),
        ReadPeer(Pid),
        Done(Value),
    }

    impl Protocol for TasConsensus {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::TestAndSet);
            l.push_n(ObjectInit::Register(Value::Nil), 2);
            l
        }
        fn init(&self, pid: Pid, input: &Value) -> St {
            St::Announce(pid, input.clone())
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Announce(p, v) => Action::Invoke(Op::write(ObjectId(1 + p), v.clone())),
                St::Grab(..) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
                St::ReadPeer(p) => Action::Invoke(Op::read(ObjectId(1 + (1 - p)))),
                St::Done(v) => Action::Decide(v.clone()),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = match st.clone() {
                St::Announce(p, v) => St::Grab(p, v),
                St::Grab(p, v) => {
                    if resp == Value::Bool(false) {
                        St::Done(v)
                    } else {
                        St::ReadPeer(p)
                    }
                }
                St::ReadPeer(_) => St::Done(resp),
                done => done,
            };
        }
    }

    #[test]
    fn initial_state_is_bivalent_then_resolves() {
        let inputs = vec![Value::Int(10), Value::Int(20)];
        let report = analyze(&TasConsensus, &inputs, 100_000);
        assert!(report.complete);
        assert!(
            report.initial.is_bivalent(),
            "both inputs are reachable initially"
        );
        assert_eq!(report.initial.values(), &[Value::Int(10), Value::Int(20)]);
        // A sound consensus protocol resolves bivalence at some critical
        // state — for test&set consensus, at the test&set itself.
        assert!(report.critical >= 1, "expected a critical state");
        assert!(report.bivalent >= 1);
        assert!(report.states > report.bivalent);
    }

    #[test]
    fn univalent_when_inputs_agree() {
        let inputs = vec![Value::Int(5), Value::Int(5)];
        let report = analyze(&TasConsensus, &inputs, 100_000);
        assert!(report.initial.is_univalent());
        assert_eq!(report.bivalent, 0);
        assert_eq!(report.critical, 0);
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let report = analyze(&TasConsensus, &inputs, 3);
        assert!(!report.complete);
    }
}
