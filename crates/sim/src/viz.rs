//! ASCII rendering of runs: space–time diagrams and register
//! histories.
//!
//! The paper's arguments are all about *runs* — interleavings,
//! histories of the compare&swap register, who observed what when.
//! This module renders a recorded [`Trace`] so humans can follow them:
//!
//! * [`timeline`] — one row per process, one column per step: `W`/`R`
//!   register ops, `C`/`c` successful/failed compare&swaps, `S`/`U`
//!   snapshot scans/updates, `D` decisions, `✗` crashes.
//! * [`register_history`] — the value sequence a given register (or
//!   compare&swap) goes through, with the step index of each change.
//!
//! Both are plain functions returning `String`s; the examples print
//! them.

use std::fmt::Write as _;

use bso_objects::{ObjectId, OpKind, Value};

use crate::record::RecordedOp;
use crate::{EventKind, Trace};

/// One character per completed operation — the shared glyph alphabet
/// of [`timeline`] and [`history_timeline`].
fn op_glyph(kind: &OpKind, resp: &Value) -> char {
    match kind {
        OpKind::Read => 'r',
        OpKind::Write(_) => 'W',
        OpKind::Cas { expect, .. } => {
            if resp == expect {
                'C' // successful compare&swap
            } else {
                'c' // failed compare&swap
            }
        }
        OpKind::TestAndSet => 'T',
        OpKind::Reset => 't',
        OpKind::FetchAdd(_) => 'F',
        OpKind::Swap(_) => 'X',
        OpKind::SnapshotScan => 'S',
        OpKind::SnapshotUpdate(_) => 'U',
        OpKind::StickyWrite(_) => 'K',
        OpKind::Enqueue(_) => 'Q',
        OpKind::Dequeue => 'q',
        OpKind::Rmw { .. } => 'M',
    }
}

/// One character per event, for the timeline.
fn glyph(kind: &EventKind) -> char {
    match kind {
        EventKind::Applied { op, resp } => op_glyph(&op.kind, resp),
        EventKind::Decided(_) => 'D',
        EventKind::Crashed => '✗',
    }
}

/// Renders the trace as a space–time diagram: one row per process, one
/// column per global step. See `examples/quickstart.rs` for real
/// output, e.g.:
///
/// ```text
/// p0   |U r S  U   r  S C  D|
/// p1   |  U   r S U  r S  cD|
/// ```
pub fn timeline(trace: &Trace, processes: usize) -> String {
    let steps = trace.len();
    let mut rows = vec![vec![' '; steps]; processes];
    for e in trace.events() {
        rows[e.pid][e.seq] = glyph(&e.kind);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "      steps 0..{steps}   (W/r register · C/c compare&swap ok/fail · S/U snapshot · D decide · ✗ crash)"
    );
    for (p, row) in rows.iter().enumerate() {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "p{p:<3} |{}|", line);
    }
    out
}

/// Renders a recorded client history (as produced by the wire
/// client's recorder or [`crate::RecordingMemory`]) as a space–time
/// diagram: one row per process, one column per completed operation in
/// response order, plus a footer row naming the object each column
/// hit (object ids rendered base-36).
///
/// ```text
///       ops 0..5 by response order
/// p0   |C  F r|
/// p1   | c F  |
///  obj |00 121|
/// ```
pub fn history_timeline(log: &[RecordedOp], processes: usize) -> String {
    let cols = log.len();
    let mut rows = vec![vec![' '; cols]; processes];
    let mut objs = vec![' '; cols];
    for (i, rec) in log.iter().enumerate() {
        if let Some(row) = rows.get_mut(rec.pid) {
            row[i] = op_glyph(&rec.op.kind, &rec.resp);
        }
        objs[i] = char::from_digit((rec.op.obj.0 % 36) as u32, 36).unwrap_or('?');
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "      ops 0..{cols} by response order   (W/r register · C/c compare&swap ok/fail · F fetch&add · S/U snapshot)"
    );
    for (p, row) in rows.iter().enumerate() {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "p{p:<3} |{line}|");
    }
    let obj_line: String = objs.iter().collect();
    let _ = writeln!(out, " obj |{obj_line}|");
    out
}

/// The sequence of values the object `obj` takes in the trace, as
/// `(step, value)` pairs starting from `initial`.
pub fn register_history(trace: &Trace, obj: ObjectId, initial: Value) -> Vec<(usize, Value)> {
    let mut out = vec![(0, initial)];
    for e in trace.events() {
        if let EventKind::Applied { op, resp } = &e.kind {
            if op.obj != obj {
                continue;
            }
            match &op.kind {
                OpKind::Write(v) | OpKind::Swap(v) => out.push((e.seq, v.clone())),
                OpKind::Cas { expect, new } if resp == expect => out.push((e.seq, new.clone())),
                _ => {}
            }
        }
    }
    out
}

/// Renders a register history as a compact arrow chain, e.g.
/// `⊥ →(#12) 0 →(#31) 2`.
pub fn register_history_string(trace: &Trace, obj: ObjectId, initial: Value) -> String {
    let hist = register_history(trace, obj, initial);
    let mut out = String::new();
    for (i, (step, v)) in hist.iter().enumerate() {
        if i == 0 {
            let _ = write!(out, "{v}");
        } else {
            let _ = write!(out, " →(#{step}) {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Op, Sym};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(
            0,
            EventKind::Applied {
                op: Op::write(ObjectId(1), Value::Pid(0)),
                resp: Value::Nil,
            },
        );
        t.push(
            1,
            EventKind::Applied {
                op: Op::cas(ObjectId(0), Sym::BOTTOM.into(), Sym::new(0).into()),
                resp: Value::Sym(Sym::BOTTOM), // success
            },
        );
        t.push(
            0,
            EventKind::Applied {
                op: Op::cas(ObjectId(0), Sym::BOTTOM.into(), Sym::new(1).into()),
                resp: Value::Sym(Sym::new(0)), // failure
            },
        );
        t.push(1, EventKind::Decided(Value::Pid(1)));
        t.push(0, EventKind::Crashed);
        t
    }

    #[test]
    fn timeline_glyphs_and_alignment() {
        let s = timeline(&sample_trace(), 2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "p0   |W c ✗|");
        assert_eq!(lines[2], "p1   | C D |");
    }

    #[test]
    fn register_history_tracks_successes_only() {
        let t = sample_trace();
        let h = register_history(&t, ObjectId(0), Value::Sym(Sym::BOTTOM));
        assert_eq!(
            h,
            vec![(0, Value::Sym(Sym::BOTTOM)), (1, Value::Sym(Sym::new(0)))],
            "the failed compare&swap must not appear"
        );
        assert_eq!(
            register_history_string(&t, ObjectId(0), Value::Sym(Sym::BOTTOM)),
            "⊥ →(#1) 0"
        );
    }

    #[test]
    fn history_timeline_renders_recorded_ops() {
        use crate::record::RecordedOp;
        let log = vec![
            RecordedOp {
                pid: 0,
                op: Op::cas(ObjectId(0), Sym::BOTTOM.into(), Sym::new(0).into()),
                resp: Value::Sym(Sym::BOTTOM), // success
                invoked_at: 0,
                responded_at: 1,
            },
            RecordedOp {
                pid: 1,
                op: Op::new(ObjectId(2), OpKind::FetchAdd(1)),
                resp: Value::Int(0),
                invoked_at: 2,
                responded_at: 3,
            },
            RecordedOp {
                pid: 0,
                op: Op::read(ObjectId(1)),
                resp: Value::Nil,
                invoked_at: 4,
                responded_at: 5,
            },
        ];
        let s = history_timeline(&log, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "p0   |C r|");
        assert_eq!(lines[2], "p1   | F |");
        assert_eq!(lines[3], " obj |021|");
    }

    #[test]
    fn empty_trace_renders() {
        let s = timeline(&Trace::new(), 1);
        assert!(s.contains("p0"));
        let h = register_history(&Trace::new(), ObjectId(0), Value::Nil);
        assert_eq!(h, vec![(0, Value::Nil)]);
    }
}
