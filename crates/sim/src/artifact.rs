//! Replayable counterexample artifacts (`bso-schedule/v1`).
//!
//! A [`Violation`] from the explorer is an in-memory value; a
//! [`ScheduleArtifact`] is the same counterexample made durable: the
//! protocol's identity, the per-process inputs, the task specification
//! and the exact interleaving, serialized as JSON through the shared
//! `bso_telemetry::json` writer. Because the simulator is
//! deterministic given a schedule, the artifact replays to the
//! identical [`Trace`](crate::Trace) on any machine — load it with
//! [`ScheduleArtifact::load`], re-execute it with
//! [`Explorer::replay`](crate::Explorer::replay), and check the
//! outcome with [`verify_replay`].
//!
//! Setting `BSO_ARTIFACT=path.json` ([`ENV_VAR`]) makes
//! [`Explorer::run`](crate::Explorer::run) write an artifact
//! automatically whenever it finds a violation; the `bso-bench`
//! `replay` bin consumes them.
//!
//! Document shape:
//!
//! ```json
//! {"schema": "bso-schedule/v1",
//!  "protocol": "tas-three-eager",
//!  "processes": 3,
//!  "inputs": [1, 2, 3],
//!  "spec": {"task": "consensus", "inputs": [1, 2, 3]},
//!  "violation": {"kind": "agreement", "description": "…"},
//!  "schedule": [0, 0, 1, 2, 1]}
//! ```
//!
//! Values encode as: `Nil` → `null`, `Bool` → boolean, `Int` → number,
//! `Pid(p)` → `{"pid": p}`, `Sym` → `{"sym": code}` (code 0 = ⊥),
//! `Pair(a, b)` → `{"pair": [a, b]}`, `Seq` → array.

use std::path::Path;

use bso_objects::{Sym, Value};
use bso_telemetry::json::{self, Json};

use crate::checker::RunChecker;
use crate::explore::{TaskSpec, Violation, ViolationKind};
use crate::sim::{ProcStatus, RunError, RunResult};
use crate::Pid;

/// The schema tag every artifact carries.
pub const SCHEMA: &str = "bso-schedule/v1";

/// The environment variable that makes `Explorer::run` write an
/// artifact on violation: `BSO_ARTIFACT=path.json`.
pub const ENV_VAR: &str = "BSO_ARTIFACT";

/// A serialized counterexample: everything needed to re-execute one
/// exact interleaving of a protocol instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleArtifact {
    /// A stable identifier for the protocol instance (the replay bin
    /// keeps a registry of known ids; defaults to the Rust type name).
    pub protocol: String,
    /// Per-process inputs, one per process.
    pub inputs: Vec<Value>,
    /// The task specification the schedule violates.
    pub spec: TaskSpec,
    /// The interleaving: the pid stepped at each point.
    pub schedule: Vec<Pid>,
    /// The violation the schedule exhibits (`None` for a plain saved
    /// schedule).
    pub kind: Option<ViolationKind>,
    /// Human-readable details from the discovering run.
    pub description: Option<String>,
}

impl ScheduleArtifact {
    /// Builds an artifact from an explorer violation.
    pub fn from_violation(
        protocol: impl Into<String>,
        inputs: &[Value],
        spec: &TaskSpec,
        violation: &Violation,
    ) -> ScheduleArtifact {
        ScheduleArtifact {
            protocol: protocol.into(),
            inputs: inputs.to_vec(),
            spec: spec.clone(),
            schedule: violation.schedule.clone(),
            kind: Some(violation.kind.clone()),
            description: Some(violation.description.clone()),
        }
    }

    /// The artifact as a JSON document (see the module docs for the
    /// shape).
    pub fn to_json(&self) -> Json {
        let violation = match &self.kind {
            None => Json::Null,
            Some(kind) => Json::obj([
                ("kind", Json::str(kind_to_str(kind))),
                (
                    "description",
                    match &self.description {
                        Some(d) => Json::str(d),
                        None => Json::Null,
                    },
                ),
            ]),
        };
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("protocol", Json::str(&self.protocol)),
            ("processes", Json::U64(self.inputs.len() as u64)),
            (
                "inputs",
                Json::Arr(self.inputs.iter().map(value_to_json).collect()),
            ),
            ("spec", spec_to_json(&self.spec)),
            ("violation", violation),
            (
                "schedule",
                Json::Arr(self.schedule.iter().map(|&p| Json::U64(p as u64)).collect()),
            ),
        ])
    }

    /// [`ScheduleArtifact::to_json`] rendered pretty.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reconstructs an artifact from its JSON document.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(doc: &Json) -> Result<ScheduleArtifact, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(format!(
                "missing or unknown \"schema\" (expected {SCHEMA:?})"
            ));
        }
        let protocol = doc
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("\"protocol\" is missing or not a string")?
            .to_string();
        let inputs: Vec<Value> = doc
            .get("inputs")
            .and_then(Json::items)
            .ok_or("\"inputs\" is missing or not an array")?
            .iter()
            .map(value_from_json)
            .collect::<Result<_, _>>()?;
        if let Some(n) = doc.get("processes").and_then(Json::as_u64) {
            if n as usize != inputs.len() {
                return Err(format!(
                    "\"processes\" is {n} but {} inputs are given",
                    inputs.len()
                ));
            }
        }
        let spec = spec_from_json(doc.get("spec").ok_or("\"spec\" is missing")?)?;
        let (kind, description) = match doc.get("violation") {
            None | Some(Json::Null) => (None, None),
            Some(v) => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("\"violation.kind\" is missing or not a string")?;
                (
                    Some(kind_from_str(kind)?),
                    v.get("description")
                        .and_then(Json::as_str)
                        .map(String::from),
                )
            }
        };
        let schedule: Vec<Pid> = doc
            .get("schedule")
            .and_then(Json::items)
            .ok_or("\"schedule\" is missing or not an array")?
            .iter()
            .map(|s| {
                s.as_u64()
                    .map(|p| p as Pid)
                    .ok_or_else(|| format!("schedule entry {s:?} is not a pid"))
            })
            .collect::<Result<_, _>>()?;
        for &p in &schedule {
            if p >= inputs.len() {
                return Err(format!(
                    "schedule steps p{p} but only {} processes exist",
                    inputs.len()
                ));
            }
        }
        Ok(ScheduleArtifact {
            protocol,
            inputs,
            spec,
            schedule,
            kind,
            description,
        })
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// Reads and parses an artifact from `path`.
    ///
    /// # Errors
    ///
    /// A description of the I/O, JSON or schema problem.
    pub fn load(path: impl AsRef<Path>) -> Result<ScheduleArtifact, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        ScheduleArtifact::from_json(&doc)
    }
}

/// Checks that re-executing an artifact reproduced the violation it
/// claims: agreement/validity artifacts must fail the task
/// specification, not-wait-free artifacts must leave some process
/// undecided (the schedule is a cycle prefix), illegal-operation
/// artifacts must abort the run, and violation-free artifacts must
/// satisfy the specification.
///
/// # Errors
///
/// A description of the divergence between the claim and the replay.
pub fn verify_replay(
    artifact: &ScheduleArtifact,
    outcome: &Result<RunResult, RunError>,
) -> Result<String, String> {
    match (&artifact.kind, outcome) {
        (Some(ViolationKind::IllegalOperation), Err(e @ RunError::Object { .. })) => {
            Ok(format!("illegal operation reproduced: {e}"))
        }
        (Some(ViolationKind::IllegalOperation), Err(e)) => Err(format!(
            "expected an illegal operation, run failed with: {e}"
        )),
        (Some(ViolationKind::IllegalOperation), Ok(_)) => {
            Err("expected an illegal operation, but the run completed".into())
        }
        (_, Err(e)) => Err(format!("replay failed unexpectedly: {e}")),
        (Some(ViolationKind::NotWaitFree), Ok(res)) => {
            let running = res
                .statuses
                .iter()
                .filter(|s| matches!(s, ProcStatus::Running))
                .count();
            if running > 0 {
                Ok(format!(
                    "cycle prefix reproduced: {running} process(es) still undecided \
                     after {} steps",
                    artifact.schedule.len()
                ))
            } else {
                Err("expected an undecided process after the cycle prefix, \
                     but every process decided"
                    .into())
            }
        }
        (Some(ViolationKind::Agreement) | Some(ViolationKind::Validity), Ok(res)) => {
            match artifact.spec.check(res) {
                Err(v) => Ok(format!("violation reproduced: {v}")),
                Ok(()) => Err("expected a specification violation, but the replayed \
                               run satisfies the specification"
                    .into()),
            }
        }
        (None, Ok(res)) => match artifact.spec.check(res) {
            Ok(()) => Ok("schedule replayed cleanly; specification holds".into()),
            Err(v) => Err(format!(
                "violation-free artifact failed its specification on replay: {v}"
            )),
        },
    }
}

fn kind_to_str(kind: &ViolationKind) -> &'static str {
    match kind {
        ViolationKind::Agreement => "agreement",
        ViolationKind::Validity => "validity",
        ViolationKind::NotWaitFree => "not-wait-free",
        ViolationKind::IllegalOperation => "illegal-operation",
    }
}

fn kind_from_str(s: &str) -> Result<ViolationKind, String> {
    match s {
        "agreement" => Ok(ViolationKind::Agreement),
        "validity" => Ok(ViolationKind::Validity),
        "not-wait-free" => Ok(ViolationKind::NotWaitFree),
        "illegal-operation" => Ok(ViolationKind::IllegalOperation),
        other => Err(format!("unknown violation kind {other:?}")),
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Nil => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::I64(*i),
        Value::Sym(s) => Json::obj([("sym", Json::U64(u64::from(s.code())))]),
        Value::Pid(p) => Json::obj([("pid", Json::U64(*p as u64))]),
        Value::Pair(a, b) => {
            Json::obj([("pair", Json::Arr(vec![value_to_json(a), value_to_json(b)]))])
        }
        Value::Seq(items) => Json::Arr(items.iter().map(value_to_json).collect()),
    }
}

fn value_from_json(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Nil),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::U64(v) => i64::try_from(*v)
            .map(Value::Int)
            .map_err(|_| format!("integer {v} does not fit a value")),
        Json::I64(v) => Ok(Value::Int(*v)),
        Json::Arr(items) => items
            .iter()
            .map(value_from_json)
            .collect::<Result<_, _>>()
            .map(Value::Seq),
        Json::Obj(_) => {
            if let Some(p) = j.get("pid").and_then(Json::as_u64) {
                Ok(Value::Pid(p as usize))
            } else if let Some(c) = j.get("sym").and_then(Json::as_u64) {
                let code = u8::try_from(c).map_err(|_| format!("sym code {c} out of range"))?;
                Ok(Value::Sym(Sym::from_code(code)))
            } else if let Some(pair) = j.get("pair").and_then(Json::items) {
                match pair {
                    [a, b] => Ok(Value::Pair(
                        Box::new(value_from_json(a)?),
                        Box::new(value_from_json(b)?),
                    )),
                    _ => Err("\"pair\" must hold exactly two values".into()),
                }
            } else {
                Err(format!("unrecognized value object {j:?}"))
            }
        }
        other => Err(format!("unrecognized value {other:?}")),
    }
}

fn spec_to_json(spec: &TaskSpec) -> Json {
    match spec {
        TaskSpec::None => Json::obj([("task", Json::str("none"))]),
        TaskSpec::Election => Json::obj([("task", Json::str("election"))]),
        TaskSpec::Consensus(inputs) => Json::obj([
            ("task", Json::str("consensus")),
            (
                "inputs",
                Json::Arr(inputs.iter().map(value_to_json).collect()),
            ),
        ]),
        TaskSpec::SetConsensus(inputs, l) => Json::obj([
            ("task", Json::str("set-consensus")),
            (
                "inputs",
                Json::Arr(inputs.iter().map(value_to_json).collect()),
            ),
            ("l", Json::U64(*l as u64)),
        ]),
    }
}

fn spec_from_json(j: &Json) -> Result<TaskSpec, String> {
    let task = j
        .get("task")
        .and_then(Json::as_str)
        .ok_or("\"spec.task\" is missing or not a string")?;
    let inputs = || -> Result<Vec<Value>, String> {
        j.get("inputs")
            .and_then(Json::items)
            .ok_or_else(|| format!("spec {task:?} requires \"inputs\""))?
            .iter()
            .map(value_from_json)
            .collect()
    };
    match task {
        "none" => Ok(TaskSpec::None),
        "election" => Ok(TaskSpec::Election),
        "consensus" => Ok(TaskSpec::Consensus(inputs()?)),
        "set-consensus" => {
            let l = j
                .get("l")
                .and_then(Json::as_u64)
                .ok_or("set-consensus requires \"l\"")?;
            Ok(TaskSpec::SetConsensus(inputs()?, l as usize))
        }
        other => Err(format!("unknown task {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Nil,
            Value::Bool(true),
            Value::Int(-7),
            Value::Sym(Sym::BOTTOM),
            Value::Sym(Sym::new(3)),
            Value::Pid(2),
            Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Pid(0))),
            Value::Seq(vec![Value::Int(1), Value::Nil, Value::Bool(false)]),
        ]
    }

    #[test]
    fn values_round_trip_through_json() {
        for v in sample_values() {
            let j = value_to_json(&v);
            let back = value_from_json(&j).unwrap();
            assert_eq!(back, v, "via {j:?}");
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let inputs = vec![Value::Int(1), Value::Int(2)];
        for spec in [
            TaskSpec::None,
            TaskSpec::Election,
            TaskSpec::Consensus(inputs.clone()),
            TaskSpec::SetConsensus(inputs, 2),
        ] {
            let j = spec_to_json(&spec);
            let back = spec_from_json(&j).unwrap();
            assert_eq!(back, spec, "via {j:?}");
        }
    }

    #[test]
    fn artifact_round_trips_through_rendered_json() {
        let art = ScheduleArtifact {
            protocol: "broken-election".to_string(),
            inputs: vec![Value::Pid(0), Value::Pid(1)],
            spec: TaskSpec::Election,
            schedule: vec![0, 1, 0, 1],
            kind: Some(ViolationKind::Agreement),
            description: Some("p0 elected 0 but p1 elected 1".to_string()),
        };
        let text = art.to_json_string();
        let doc = json::parse(&text).unwrap();
        assert_eq!(ScheduleArtifact::from_json(&doc).unwrap(), art);
    }

    #[test]
    fn malformed_artifacts_are_rejected_with_reasons() {
        let good = ScheduleArtifact {
            protocol: "p".to_string(),
            inputs: vec![Value::Nil],
            spec: TaskSpec::None,
            schedule: vec![0],
            kind: None,
            description: None,
        };
        // Wrong schema tag.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::str("bso-schedule/v0");
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .contains("schema"));
        // Schedule stepping a nonexistent process.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "schedule" {
                    *v = Json::Arr(vec![Json::U64(5)]);
                }
            }
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .contains("schedule"));
        // Process count disagreeing with the inputs.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "processes" {
                    *v = Json::U64(9);
                }
            }
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .contains("processes"));
    }
}
