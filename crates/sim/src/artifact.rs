//! Replayable counterexample artifacts (`bso-schedule/v1`).
//!
//! A [`Violation`] from the explorer is an in-memory value; a
//! [`ScheduleArtifact`] is the same counterexample made durable: the
//! protocol's identity, the per-process inputs, the task specification
//! and the exact interleaving, serialized as JSON through the shared
//! `bso_telemetry::json` writer. Because the simulator is
//! deterministic given a schedule, the artifact replays to the
//! identical [`Trace`](crate::Trace) on any machine — load it with
//! [`ScheduleArtifact::load`], re-execute it with
//! [`Explorer::replay`](crate::Explorer::replay), and check the
//! outcome with [`verify_replay`].
//!
//! Setting `BSO_ARTIFACT=path.json` ([`ENV_VAR`]) makes
//! [`Explorer::run`](crate::Explorer::run) write an artifact
//! automatically whenever it finds a violation; the `bso-bench`
//! `replay` bin consumes them.
//!
//! Document shape:
//!
//! ```json
//! {"schema": "bso-schedule/v1",
//!  "protocol": "tas-three-eager",
//!  "processes": 3,
//!  "inputs": [1, 2, 3],
//!  "spec": {"task": "consensus", "inputs": [1, 2, 3]},
//!  "violation": {"kind": "agreement", "description": "…"},
//!  "schedule": [0, 0, 1, 2, 1]}
//! ```
//!
//! Values encode as: `Nil` → `null`, `Bool` → boolean, `Int` → number,
//! `Pid(p)` → `{"pid": p}`, `Sym` → `{"sym": code}` (code 0 = ⊥),
//! `Pair(a, b)` → `{"pair": [a, b]}`, `Seq` → array.
//!
//! Crash-schedule counterexamples add an optional `"crashes"` array
//! (`[{"at": step_index, "pid": p}, …]`: `pid` crashes after `at`
//! schedule steps have executed) and step-bound counterexamples an
//! optional `"step_bound"` number; both are absent in crash-free
//! artifacts, so documents written by earlier versions still load.

use std::path::Path;

use bso_objects::{Sym, Value};
use bso_telemetry::json::{self, Json};

use crate::checker::RunChecker;
use crate::explore::{CrashEvent, TaskSpec, Violation, ViolationKind};
use crate::sim::{ProcStatus, RunError, RunResult};
use crate::Pid;

/// The schema tag every artifact carries.
pub const SCHEMA: &str = "bso-schedule/v1";

/// The environment variable that makes `Explorer::run` write an
/// artifact on violation: `BSO_ARTIFACT=path.json`.
pub const ENV_VAR: &str = "BSO_ARTIFACT";

/// Why an artifact (or checkpoint) file failed to load: the three
/// stages — reading the file, parsing the JSON, interpreting the
/// document — fail with typed causes instead of panicking, so a
/// truncated or hand-edited file is a recoverable, diagnosable error.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The file is not well-formed JSON.
    Parse {
        /// The offending path.
        path: String,
        /// The underlying JSON parse error.
        error: json::ParseError,
    },
    /// The JSON is well-formed but not a valid document: wrong schema
    /// tag, missing field, or inconsistent contents.
    Schema(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { path, error } => write!(f, "{path}: {error}"),
            ArtifactError::Parse { path, error } => write!(f, "{path}: {error}"),
            ArtifactError::Schema(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { error, .. } => Some(error),
            ArtifactError::Parse { error, .. } => Some(error),
            ArtifactError::Schema(_) => None,
        }
    }
}

impl From<String> for ArtifactError {
    fn from(msg: String) -> ArtifactError {
        ArtifactError::Schema(msg)
    }
}

impl From<&str> for ArtifactError {
    fn from(msg: &str) -> ArtifactError {
        ArtifactError::Schema(msg.to_string())
    }
}

/// A serialized counterexample: everything needed to re-execute one
/// exact interleaving of a protocol instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleArtifact {
    /// A stable identifier for the protocol instance (the replay bin
    /// keeps a registry of known ids; defaults to the Rust type name).
    pub protocol: String,
    /// Per-process inputs, one per process.
    pub inputs: Vec<Value>,
    /// The task specification the schedule violates.
    pub spec: TaskSpec,
    /// The interleaving: the pid stepped at each point.
    pub schedule: Vec<Pid>,
    /// Crash events interleaved with the schedule: `CrashEvent { at,
    /// pid }` crashes `pid` once `at` schedule steps have executed.
    /// Empty for crash-free counterexamples.
    pub crashes: Vec<CrashEvent>,
    /// The per-process step bound the discovering run enforced, when
    /// the wait-freedom spec was active (needed to re-verify
    /// [`ViolationKind::StepBound`] artifacts).
    pub step_bound: Option<usize>,
    /// The violation the schedule exhibits (`None` for a plain saved
    /// schedule).
    pub kind: Option<ViolationKind>,
    /// Human-readable details from the discovering run.
    pub description: Option<String>,
}

impl ScheduleArtifact {
    /// Builds an artifact from an explorer violation.
    pub fn from_violation(
        protocol: impl Into<String>,
        inputs: &[Value],
        spec: &TaskSpec,
        violation: &Violation,
    ) -> ScheduleArtifact {
        ScheduleArtifact {
            protocol: protocol.into(),
            inputs: inputs.to_vec(),
            spec: spec.clone(),
            schedule: violation.schedule.clone(),
            crashes: violation.crashes.clone(),
            step_bound: None,
            kind: Some(violation.kind.clone()),
            description: Some(violation.description.clone()),
        }
    }

    /// The artifact as a JSON document (see the module docs for the
    /// shape).
    pub fn to_json(&self) -> Json {
        let violation = match &self.kind {
            None => Json::Null,
            Some(kind) => Json::obj([
                ("kind", Json::str(kind_to_str(kind))),
                (
                    "description",
                    match &self.description {
                        Some(d) => Json::str(d),
                        None => Json::Null,
                    },
                ),
            ]),
        };
        let mut fields = vec![
            ("schema", Json::str(SCHEMA)),
            ("protocol", Json::str(&self.protocol)),
            ("processes", Json::U64(self.inputs.len() as u64)),
            (
                "inputs",
                Json::Arr(self.inputs.iter().map(value_to_json).collect()),
            ),
            ("spec", spec_to_json(&self.spec)),
            ("violation", violation),
            (
                "schedule",
                Json::Arr(self.schedule.iter().map(|&p| Json::U64(p as u64)).collect()),
            ),
        ];
        // Optional fields are omitted when trivial, so crash-free
        // artifacts keep the pre-fault document shape.
        if !self.crashes.is_empty() {
            fields.push((
                "crashes",
                Json::Arr(
                    self.crashes
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("at", Json::U64(c.at as u64)),
                                ("pid", Json::U64(c.pid as u64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(bound) = self.step_bound {
            fields.push(("step_bound", Json::U64(bound as u64)));
        }
        Json::obj(fields)
    }

    /// [`ScheduleArtifact::to_json`] rendered pretty.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reconstructs an artifact from its JSON document.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] describing the first malformed field.
    pub fn from_json(doc: &Json) -> Result<ScheduleArtifact, ArtifactError> {
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(ArtifactError::Schema(format!(
                "missing or unknown \"schema\" (expected {SCHEMA:?})"
            )));
        }
        let protocol = doc
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("\"protocol\" is missing or not a string")?
            .to_string();
        let inputs: Vec<Value> = doc
            .get("inputs")
            .and_then(Json::items)
            .ok_or("\"inputs\" is missing or not an array")?
            .iter()
            .map(value_from_json)
            .collect::<Result<_, _>>()?;
        if let Some(n) = doc.get("processes").and_then(Json::as_u64) {
            if n as usize != inputs.len() {
                return Err(ArtifactError::Schema(format!(
                    "\"processes\" is {n} but {} inputs are given",
                    inputs.len()
                )));
            }
        }
        let spec = spec_from_json(doc.get("spec").ok_or("\"spec\" is missing")?)?;
        let (kind, description) = match doc.get("violation") {
            None | Some(Json::Null) => (None, None),
            Some(v) => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("\"violation.kind\" is missing or not a string")?;
                (
                    Some(kind_from_str(kind)?),
                    v.get("description")
                        .and_then(Json::as_str)
                        .map(String::from),
                )
            }
        };
        let schedule: Vec<Pid> = doc
            .get("schedule")
            .and_then(Json::items)
            .ok_or("\"schedule\" is missing or not an array")?
            .iter()
            .map(|s| {
                s.as_u64()
                    .map(|p| p as Pid)
                    .ok_or_else(|| format!("schedule entry {s:?} is not a pid"))
            })
            .collect::<Result<_, _>>()?;
        for &p in &schedule {
            if p >= inputs.len() {
                return Err(ArtifactError::Schema(format!(
                    "schedule steps p{p} but only {} processes exist",
                    inputs.len()
                )));
            }
        }
        let crashes = crashes_from_json(doc, inputs.len(), schedule.len())?;
        let step_bound = match doc.get("step_bound") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .map(|b| b as usize)
                    .ok_or_else(|| format!("\"step_bound\" {j:?} is not a number"))?,
            ),
        };
        Ok(ScheduleArtifact {
            protocol,
            inputs,
            spec,
            schedule,
            crashes,
            step_bound,
            kind,
            description,
        })
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// Reads and parses an artifact from `path`.
    ///
    /// # Errors
    ///
    /// An [`ArtifactError`] typing the I/O, JSON or schema problem.
    pub fn load(path: impl AsRef<Path>) -> Result<ScheduleArtifact, ArtifactError> {
        let doc = load_json_doc(path.as_ref())?;
        ScheduleArtifact::from_json(&doc)
    }
}

/// Reads and parses any bso JSON document, typing the failure stage.
pub(crate) fn load_json_doc(path: &Path) -> Result<Json, ArtifactError> {
    let text = std::fs::read_to_string(path).map_err(|error| ArtifactError::Io {
        path: path.display().to_string(),
        error,
    })?;
    json::parse(&text).map_err(|error| ArtifactError::Parse {
        path: path.display().to_string(),
        error,
    })
}

/// Parses the optional `"crashes"` array shared by schedule and
/// checkpoint documents, validating pids and positions.
pub(crate) fn crashes_from_json(
    doc: &Json,
    processes: usize,
    schedule_len: usize,
) -> Result<Vec<CrashEvent>, ArtifactError> {
    let mut crashes = Vec::new();
    let Some(items) = doc.get("crashes").and_then(Json::items) else {
        match doc.get("crashes") {
            None | Some(Json::Null) => return Ok(crashes),
            Some(other) => {
                return Err(ArtifactError::Schema(format!(
                    "\"crashes\" {other:?} is not an array"
                )))
            }
        }
    };
    for item in items {
        let at = item
            .get("at")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("crash entry {item:?} lacks a numeric \"at\""))?
            as usize;
        let pid = item
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("crash entry {item:?} lacks a numeric \"pid\""))?
            as usize;
        if pid >= processes {
            return Err(ArtifactError::Schema(format!(
                "crash event names p{pid} but only {processes} processes exist"
            )));
        }
        if at > schedule_len {
            return Err(ArtifactError::Schema(format!(
                "crash event at step {at} lies beyond the {schedule_len}-step schedule"
            )));
        }
        crashes.push(CrashEvent { at, pid });
    }
    Ok(crashes)
}

/// Checks that re-executing an artifact reproduced the violation it
/// claims: agreement/validity artifacts must fail the task
/// specification, not-wait-free artifacts must leave some process
/// undecided (the schedule is a cycle prefix), illegal-operation
/// artifacts must abort the run, and violation-free artifacts must
/// satisfy the specification.
///
/// # Errors
///
/// A description of the divergence between the claim and the replay.
pub fn verify_replay(
    artifact: &ScheduleArtifact,
    outcome: &Result<RunResult, RunError>,
) -> Result<String, String> {
    match (&artifact.kind, outcome) {
        (Some(ViolationKind::IllegalOperation), Err(e @ RunError::Object { .. })) => {
            Ok(format!("illegal operation reproduced: {e}"))
        }
        (Some(ViolationKind::IllegalOperation), Err(e)) => Err(format!(
            "expected an illegal operation, run failed with: {e}"
        )),
        (Some(ViolationKind::IllegalOperation), Ok(_)) => {
            Err("expected an illegal operation, but the run completed".into())
        }
        (_, Err(e)) => Err(format!("replay failed unexpectedly: {e}")),
        (Some(ViolationKind::StepBound), Ok(res)) => {
            let bound = artifact
                .step_bound
                .ok_or("step-bound artifact carries no \"step_bound\" to check against")?;
            match res.steps.iter().position(|&s| s > bound) {
                Some(p) => Ok(format!(
                    "step-bound violation reproduced: p{p} took {} steps, bound is {bound}",
                    res.steps[p]
                )),
                None => Err(format!(
                    "expected some process to exceed the {bound}-step bound, \
                     but none did"
                )),
            }
        }
        // A panic artifact's schedule stops *before* the step whose
        // generation panicked (re-running the panicking call would
        // re-panic); replaying the prefix cleanly is all that can be
        // checked.
        (Some(ViolationKind::Panic), Ok(_)) => Ok(format!(
            "panic-prefix schedule of {} step(s) replayed cleanly; the panic \
             itself fires when the next state is generated",
            artifact.schedule.len()
        )),
        (Some(ViolationKind::NotWaitFree), Ok(res)) => {
            let running = res
                .statuses
                .iter()
                .filter(|s| matches!(s, ProcStatus::Running))
                .count();
            if running > 0 {
                Ok(format!(
                    "cycle prefix reproduced: {running} process(es) still undecided \
                     after {} steps",
                    artifact.schedule.len()
                ))
            } else {
                Err("expected an undecided process after the cycle prefix, \
                     but every process decided"
                    .into())
            }
        }
        (Some(ViolationKind::Agreement) | Some(ViolationKind::Validity), Ok(res)) => {
            match artifact.spec.check(res) {
                Err(v) => Ok(format!("violation reproduced: {v}")),
                Ok(()) => Err("expected a specification violation, but the replayed \
                               run satisfies the specification"
                    .into()),
            }
        }
        (None, Ok(res)) => match artifact.spec.check(res) {
            Ok(()) => Ok("schedule replayed cleanly; specification holds".into()),
            Err(v) => Err(format!(
                "violation-free artifact failed its specification on replay: {v}"
            )),
        },
    }
}

fn kind_to_str(kind: &ViolationKind) -> &'static str {
    match kind {
        ViolationKind::Agreement => "agreement",
        ViolationKind::Validity => "validity",
        ViolationKind::NotWaitFree => "not-wait-free",
        ViolationKind::StepBound => "step-bound",
        ViolationKind::IllegalOperation => "illegal-operation",
        ViolationKind::Panic => "panic",
    }
}

fn kind_from_str(s: &str) -> Result<ViolationKind, String> {
    match s {
        "agreement" => Ok(ViolationKind::Agreement),
        "validity" => Ok(ViolationKind::Validity),
        "not-wait-free" => Ok(ViolationKind::NotWaitFree),
        "step-bound" => Ok(ViolationKind::StepBound),
        "illegal-operation" => Ok(ViolationKind::IllegalOperation),
        "panic" => Ok(ViolationKind::Panic),
        other => Err(format!("unknown violation kind {other:?}")),
    }
}

pub(crate) fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Nil => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::I64(*i),
        Value::Sym(s) => Json::obj([("sym", Json::U64(u64::from(s.code())))]),
        Value::Pid(p) => Json::obj([("pid", Json::U64(*p as u64))]),
        Value::Pair(a, b) => {
            Json::obj([("pair", Json::Arr(vec![value_to_json(a), value_to_json(b)]))])
        }
        Value::Seq(items) => Json::Arr(items.iter().map(value_to_json).collect()),
    }
}

pub(crate) fn value_from_json(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Nil),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::U64(v) => i64::try_from(*v)
            .map(Value::Int)
            .map_err(|_| format!("integer {v} does not fit a value")),
        Json::I64(v) => Ok(Value::Int(*v)),
        Json::Arr(items) => items
            .iter()
            .map(value_from_json)
            .collect::<Result<_, _>>()
            .map(Value::Seq),
        Json::Obj(_) => {
            if let Some(p) = j.get("pid").and_then(Json::as_u64) {
                Ok(Value::Pid(p as usize))
            } else if let Some(c) = j.get("sym").and_then(Json::as_u64) {
                let code = u8::try_from(c).map_err(|_| format!("sym code {c} out of range"))?;
                Ok(Value::Sym(Sym::from_code(code)))
            } else if let Some(pair) = j.get("pair").and_then(Json::items) {
                match pair {
                    [a, b] => Ok(Value::Pair(
                        Box::new(value_from_json(a)?),
                        Box::new(value_from_json(b)?),
                    )),
                    _ => Err("\"pair\" must hold exactly two values".into()),
                }
            } else {
                Err(format!("unrecognized value object {j:?}"))
            }
        }
        other => Err(format!("unrecognized value {other:?}")),
    }
}

pub(crate) fn spec_to_json(spec: &TaskSpec) -> Json {
    match spec {
        TaskSpec::None => Json::obj([("task", Json::str("none"))]),
        TaskSpec::Election => Json::obj([("task", Json::str("election"))]),
        TaskSpec::Consensus(inputs) => Json::obj([
            ("task", Json::str("consensus")),
            (
                "inputs",
                Json::Arr(inputs.iter().map(value_to_json).collect()),
            ),
        ]),
        TaskSpec::SetConsensus(inputs, l) => Json::obj([
            ("task", Json::str("set-consensus")),
            (
                "inputs",
                Json::Arr(inputs.iter().map(value_to_json).collect()),
            ),
            ("l", Json::U64(*l as u64)),
        ]),
    }
}

pub(crate) fn spec_from_json(j: &Json) -> Result<TaskSpec, String> {
    let task = j
        .get("task")
        .and_then(Json::as_str)
        .ok_or("\"spec.task\" is missing or not a string")?;
    let inputs = || -> Result<Vec<Value>, String> {
        j.get("inputs")
            .and_then(Json::items)
            .ok_or_else(|| format!("spec {task:?} requires \"inputs\""))?
            .iter()
            .map(value_from_json)
            .collect()
    };
    match task {
        "none" => Ok(TaskSpec::None),
        "election" => Ok(TaskSpec::Election),
        "consensus" => Ok(TaskSpec::Consensus(inputs()?)),
        "set-consensus" => {
            let l = j
                .get("l")
                .and_then(Json::as_u64)
                .ok_or("set-consensus requires \"l\"")?;
            Ok(TaskSpec::SetConsensus(inputs()?, l as usize))
        }
        other => Err(format!("unknown task {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Nil,
            Value::Bool(true),
            Value::Int(-7),
            Value::Sym(Sym::BOTTOM),
            Value::Sym(Sym::new(3)),
            Value::Pid(2),
            Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Pid(0))),
            Value::Seq(vec![Value::Int(1), Value::Nil, Value::Bool(false)]),
        ]
    }

    #[test]
    fn values_round_trip_through_json() {
        for v in sample_values() {
            let j = value_to_json(&v);
            let back = value_from_json(&j).unwrap();
            assert_eq!(back, v, "via {j:?}");
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let inputs = vec![Value::Int(1), Value::Int(2)];
        for spec in [
            TaskSpec::None,
            TaskSpec::Election,
            TaskSpec::Consensus(inputs.clone()),
            TaskSpec::SetConsensus(inputs, 2),
        ] {
            let j = spec_to_json(&spec);
            let back = spec_from_json(&j).unwrap();
            assert_eq!(back, spec, "via {j:?}");
        }
    }

    #[test]
    fn artifact_round_trips_through_rendered_json() {
        let art = ScheduleArtifact {
            protocol: "broken-election".to_string(),
            inputs: vec![Value::Pid(0), Value::Pid(1)],
            spec: TaskSpec::Election,
            schedule: vec![0, 1, 0, 1],
            crashes: Vec::new(),
            step_bound: None,
            kind: Some(ViolationKind::Agreement),
            description: Some("p0 elected 0 but p1 elected 1".to_string()),
        };
        let text = art.to_json_string();
        // Crash-free artifacts keep the pre-fault document shape.
        assert!(!text.contains("crashes"));
        assert!(!text.contains("step_bound"));
        let doc = json::parse(&text).unwrap();
        assert_eq!(ScheduleArtifact::from_json(&doc).unwrap(), art);
    }

    #[test]
    fn crash_schedules_round_trip_through_rendered_json() {
        let art = ScheduleArtifact {
            protocol: "lock-election".to_string(),
            inputs: vec![Value::Nil, Value::Nil],
            spec: TaskSpec::Election,
            schedule: vec![0, 0, 1, 1],
            crashes: vec![CrashEvent { at: 2, pid: 0 }],
            step_bound: Some(4),
            kind: Some(ViolationKind::StepBound),
            description: Some("p1 spins past the bound".to_string()),
        };
        let text = art.to_json_string();
        let doc = json::parse(&text).unwrap();
        assert_eq!(ScheduleArtifact::from_json(&doc).unwrap(), art);
    }

    #[test]
    fn malformed_artifacts_are_rejected_with_reasons() {
        let good = ScheduleArtifact {
            protocol: "p".to_string(),
            inputs: vec![Value::Nil],
            spec: TaskSpec::None,
            schedule: vec![0],
            crashes: Vec::new(),
            step_bound: None,
            kind: None,
            description: None,
        };
        // Wrong schema tag.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::str("bso-schedule/v0");
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .to_string()
            .contains("schema"));
        // Schedule stepping a nonexistent process.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "schedule" {
                    *v = Json::Arr(vec![Json::U64(5)]);
                }
            }
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .to_string()
            .contains("schedule"));
        // Process count disagreeing with the inputs.
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "processes" {
                    *v = Json::U64(9);
                }
            }
        }
        assert!(ScheduleArtifact::from_json(&doc)
            .unwrap_err()
            .to_string()
            .contains("processes"));
    }

    #[test]
    fn malformed_crash_events_are_rejected_with_reasons() {
        let mut good = ScheduleArtifact {
            protocol: "p".to_string(),
            inputs: vec![Value::Nil, Value::Nil],
            spec: TaskSpec::None,
            schedule: vec![0, 1],
            crashes: vec![CrashEvent { at: 1, pid: 0 }],
            step_bound: None,
            kind: None,
            description: None,
        };
        // Crashing a process that does not exist.
        good.crashes[0].pid = 7;
        let err = ScheduleArtifact::from_json(&good.to_json()).unwrap_err();
        assert!(err.to_string().contains("p7"), "{err}");
        // A crash positioned past the end of the schedule.
        good.crashes[0] = CrashEvent { at: 9, pid: 0 };
        let err = ScheduleArtifact::from_json(&good.to_json()).unwrap_err();
        assert!(err.to_string().contains("beyond"), "{err}");
        // "crashes" of the wrong JSON type.
        good.crashes.clear();
        let mut doc = good.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("crashes".to_string(), Json::str("nope")));
        }
        let err = ScheduleArtifact::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("not an array"), "{err}");
    }

    #[test]
    fn load_types_io_parse_and_schema_failures() {
        let dir = std::env::temp_dir().join(format!("bso-artifact-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file → Io.
        let missing = dir.join("missing.json");
        assert!(matches!(
            ScheduleArtifact::load(&missing),
            Err(ArtifactError::Io { .. })
        ));
        // Truncated JSON → Parse.
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, "{\"schema\": \"bso-sch").unwrap();
        assert!(matches!(
            ScheduleArtifact::load(&truncated),
            Err(ArtifactError::Parse { .. })
        ));
        // Well-formed JSON, wrong document → Schema.
        let wrong = dir.join("wrong.json");
        std::fs::write(&wrong, "{\"schema\": \"other/v1\"}").unwrap();
        assert!(matches!(
            ScheduleArtifact::load(&wrong),
            Err(ArtifactError::Schema(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
