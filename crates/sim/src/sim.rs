use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use bso_objects::{ObjectError, Op, Value};

use crate::{Action, EventKind, Pid, Protocol, Scheduler, SharedMemory, Trace};

/// The execution status of one simulated process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProcStatus {
    /// Still taking steps.
    Running,
    /// Decided this value and halted.
    Decided(Value),
    /// Crashed by the adversary; takes no further steps.
    Crashed,
}

impl ProcStatus {
    /// The decision value, if decided.
    pub fn decision(&self) -> Option<&Value> {
        match self {
            ProcStatus::Decided(v) => Some(v),
            _ => None,
        }
    }
}

/// An adversarial crash plan: process `p` crashes when it is scheduled
/// for its `after(p)`-th step (0 = crashes before taking any step).
///
/// Crashing is modelled as in the paper: a fail-stop process simply
/// stops taking steps; wait-freedom demands all other processes still
/// finish in finitely many of their own steps.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    after: BTreeMap<Pid, usize>,
}

impl CrashPlan {
    /// A plan with no crashes.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Adds a crash of `pid` after it has taken `steps` steps.
    pub fn crash(mut self, pid: Pid, steps: usize) -> CrashPlan {
        self.after.insert(pid, steps);
        self
    }

    /// Whether `pid` should crash now, given it has taken
    /// `steps_taken` steps.
    pub fn due(&self, pid: Pid, steps_taken: usize) -> bool {
        self.after.get(&pid).is_some_and(|&s| steps_taken >= s)
    }

    /// Whether the plan contains any crash.
    pub fn is_empty(&self) -> bool {
        self.after.is_empty()
    }
}

/// The outcome of running a simulation to quiescence.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The recorded run.
    pub trace: Trace,
    /// Per-process decision (None = crashed before deciding).
    pub decisions: Vec<Option<Value>>,
    /// Per-process final status.
    pub statuses: Vec<ProcStatus>,
    /// Per-process number of steps taken.
    pub steps: Vec<usize>,
}

impl RunResult {
    /// The distinct decision values, sorted.
    pub fn decision_set(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self.decisions.iter().flatten().cloned().collect();
        vs.sort();
        vs.dedup();
        vs
    }
}

/// Why a run could not complete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// A shared object rejected an operation — a protocol bug.
    Object {
        /// The offending process.
        pid: Pid,
        /// The offending operation.
        op: Op,
        /// The object's complaint.
        err: ObjectError,
    },
    /// The global step limit was exhausted before quiescence; for a
    /// wait-free protocol this indicates a livelock bug (or a limit
    /// that is too small).
    StepLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Object { pid, op, err } => {
                write!(f, "process {pid} performed illegal operation {op}: {err}")
            }
            RunError::StepLimit { limit } => {
                write!(f, "run did not quiesce within {limit} steps")
            }
        }
    }
}

impl Error for RunError {}

/// One execution of a [`Protocol`] under an adversarial scheduler.
///
/// See the crate-level example for end-to-end usage. `Simulation` is
/// deliberately low-level: [`Simulation::step`] advances exactly one
/// process by one atomic step, so tests can drive schedules by hand.
#[derive(Clone, Debug)]
pub struct Simulation<'p, P: Protocol> {
    proto: &'p P,
    mem: SharedMemory,
    states: Vec<P::State>,
    statuses: Vec<ProcStatus>,
    steps: Vec<usize>,
    trace: Trace,
    crash_plan: CrashPlan,
}

impl<'p, P: Protocol> Simulation<'p, P> {
    /// Sets up a fresh execution with the given per-process inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != proto.processes()`.
    pub fn new(proto: &'p P, inputs: &[Value]) -> Simulation<'p, P> {
        let n = proto.processes();
        assert_eq!(inputs.len(), n, "need one input per process");
        Simulation {
            proto,
            mem: SharedMemory::new(&proto.layout()),
            states: inputs
                .iter()
                .enumerate()
                .map(|(p, v)| proto.init(p, v))
                .collect(),
            statuses: vec![ProcStatus::Running; n],
            steps: vec![0; n],
            trace: Trace::new(),
            crash_plan: CrashPlan::none(),
        }
    }

    /// Installs an adversarial crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Simulation<'p, P> {
        self.crash_plan = plan;
        self
    }

    /// Crashes `pid` immediately (between scheduled steps): the
    /// fail-stop adversary of the paper, driven imperatively. Used by
    /// crash-schedule replay, where crash positions come from a
    /// [`CrashEvent`](crate::CrashEvent) list rather than a per-process
    /// step count. A process that already decided or crashed is left
    /// alone.
    pub fn crash(&mut self, pid: Pid) {
        if matches!(self.statuses[pid], ProcStatus::Running) {
            self.statuses[pid] = ProcStatus::Crashed;
            self.trace.push(pid, EventKind::Crashed);
        }
    }

    /// The processes that can still take a step.
    pub fn enabled(&self) -> Vec<Pid> {
        (0..self.statuses.len())
            .filter(|&p| matches!(self.statuses[p], ProcStatus::Running))
            .collect()
    }

    /// The local state of `pid` (for assertions in tests).
    pub fn state(&self, pid: Pid) -> &P::State {
        &self.states[pid]
    }

    /// The current shared memory.
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The status of each process.
    pub fn statuses(&self) -> &[ProcStatus] {
        &self.statuses
    }

    /// Advances `pid` by one step (one shared-memory operation, one
    /// decision, or its planned crash).
    ///
    /// # Errors
    ///
    /// [`RunError::Object`] if the process performs an illegal
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not currently enabled.
    pub fn step(&mut self, pid: Pid) -> Result<&EventKind, RunError> {
        assert!(
            matches!(self.statuses[pid], ProcStatus::Running),
            "process {pid} is not enabled"
        );
        if self.crash_plan.due(pid, self.steps[pid]) {
            self.statuses[pid] = ProcStatus::Crashed;
            self.trace.push(pid, EventKind::Crashed);
        } else {
            match self.proto.next_action(&self.states[pid]) {
                Action::Invoke(op) => {
                    let resp = self.mem.apply(pid, &op).map_err(|err| RunError::Object {
                        pid,
                        op: op.clone(),
                        err,
                    })?;
                    self.proto.on_response(&mut self.states[pid], resp.clone());
                    self.steps[pid] += 1;
                    self.trace.push(pid, EventKind::Applied { op, resp });
                }
                Action::Decide(v) => {
                    self.statuses[pid] = ProcStatus::Decided(v.clone());
                    self.steps[pid] += 1;
                    self.trace.push(pid, EventKind::Decided(v));
                }
            }
        }
        Ok(&self.trace.events().last().expect("just pushed").kind)
    }

    /// Runs under `sched` until every process has decided or crashed,
    /// or `max_steps` total steps have been taken.
    ///
    /// # Errors
    ///
    /// [`RunError::StepLimit`] on step-limit exhaustion,
    /// [`RunError::Object`] on a protocol bug.
    pub fn run(
        &mut self,
        sched: &mut dyn Scheduler,
        max_steps: usize,
    ) -> Result<RunResult, RunError> {
        let mut taken = 0;
        loop {
            let enabled = self.enabled();
            if enabled.is_empty() {
                break;
            }
            if taken >= max_steps {
                return Err(RunError::StepLimit { limit: max_steps });
            }
            let pid = sched.pick(&enabled);
            self.step(pid)?;
            taken += 1;
        }
        Ok(self.result())
    }

    /// Snapshot of the run outcome so far.
    pub fn result(&self) -> RunResult {
        RunResult {
            trace: self.trace.clone(),
            decisions: self
                .statuses
                .iter()
                .map(|s| s.decision().cloned())
                .collect(),
            statuses: self.statuses.clone(),
            steps: self.steps.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RandomSched, RoundRobin};
    use bso_objects::{Layout, ObjectId, ObjectInit, OpKind};

    /// Each process fetch&adds once; decides the previous counter value.
    struct Ranker {
        n: usize,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(i64),
    }

    impl Protocol for Ranker {
        type State = St;
        fn processes(&self) -> usize {
            self.n
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::FetchAdd(0));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> St {
            St::Start
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Start => Action::Invoke(Op::new(ObjectId(0), OpKind::FetchAdd(1))),
                St::Done(r) => Action::Decide(Value::Int(*r)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = St::Done(resp.as_int().unwrap());
        }
    }

    #[test]
    fn ranks_are_distinct_under_any_schedule() {
        for seed in 0..20 {
            let proto = Ranker { n: 4 };
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 4]);
            let res = sim.run(&mut RandomSched::new(seed), 1000).unwrap();
            let mut ranks: Vec<i64> = res
                .decisions
                .iter()
                .flatten()
                .map(|v| v.as_int().unwrap())
                .collect();
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 2, 3]);
            assert!(res.steps.iter().all(|&s| s == 2)); // one op + one decide
        }
    }

    #[test]
    fn crash_plan_stops_a_process() {
        let proto = Ranker { n: 2 };
        let mut sim = Simulation::new(&proto, &vec![Value::Nil; 2])
            .with_crash_plan(CrashPlan::none().crash(0, 0));
        let res = sim.run(&mut RoundRobin::new(), 100).unwrap();
        assert_eq!(res.statuses[0], ProcStatus::Crashed);
        assert_eq!(res.decisions[0], None);
        // p1 still finishes (wait-freedom of this trivial protocol).
        assert_eq!(res.decisions[1], Some(Value::Int(0)));
        assert_eq!(res.decision_set(), vec![Value::Int(0)]);
    }

    #[test]
    fn step_limit_reported() {
        /// A protocol that spins forever re-reading.
        struct Spinner;
        impl Protocol for Spinner {
            type State = ();
            fn processes(&self) -> usize {
                1
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Register(Value::Nil));
                l
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Invoke(Op::read(ObjectId(0)))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let proto = Spinner;
        let mut sim = Simulation::new(&proto, &[Value::Nil]);
        let err = sim.run(&mut RoundRobin::new(), 50).unwrap_err();
        assert_eq!(err, RunError::StepLimit { limit: 50 });
    }

    #[test]
    fn object_errors_identify_culprit() {
        /// Performs a test&set on a register: a type bug.
        struct Buggy;
        impl Protocol for Buggy {
            type State = ();
            fn processes(&self) -> usize {
                1
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::Register(Value::Nil));
                l
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let proto = Buggy;
        let mut sim = Simulation::new(&proto, &[Value::Nil]);
        let err = sim.run(&mut RoundRobin::new(), 10).unwrap_err();
        assert!(matches!(err, RunError::Object { pid: 0, .. }));
        assert!(err.to_string().contains("illegal operation"));
    }

    #[test]
    fn trace_schedule_replays_identically() {
        let proto = Ranker { n: 3 };
        let mut sim = Simulation::new(&proto, &vec![Value::Nil; 3]);
        let res = sim.run(&mut RandomSched::new(9), 100).unwrap();
        let mut replay = Simulation::new(&proto, &vec![Value::Nil; 3]);
        let res2 = replay
            .run(
                &mut crate::scheduler::Scripted::new(res.trace.schedule()),
                100,
            )
            .unwrap();
        assert_eq!(res.trace, res2.trace);
        assert_eq!(res.decisions, res2.decisions);
    }
}
