//! Schedulers: adversaries that pick which process moves next.
//!
//! In the asynchronous model the adversary controls the interleaving
//! entirely; a scheduler here is exactly such an adversary restricted
//! to the processes that are still enabled (not decided, not crashed).

use bso_objects::rng::SplitMix64;

use crate::Pid;

/// An adversary choosing the next process to step.
pub trait Scheduler {
    /// Picks one of the `enabled` processes (guaranteed non-empty,
    /// sorted ascending).
    fn pick(&mut self, enabled: &[Pid]) -> Pid;
}

/// Cycles through processes in pid order, skipping disabled ones.
///
/// Round-robin is the *fair* schedule; it exercises the common
/// contention-free fast paths.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin scheduler starting at process 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, enabled: &[Pid]) -> Pid {
        // First enabled pid >= self.next, else wrap to the smallest.
        let pid = enabled
            .iter()
            .copied()
            .find(|&p| p >= self.next)
            .unwrap_or(enabled[0]);
        self.next = pid + 1;
        pid
    }
}

/// Picks uniformly at random with a seeded generator — reproducible
/// stress schedules.
#[derive(Clone, Debug)]
pub struct RandomSched {
    rng: SplitMix64,
}

impl RandomSched {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> RandomSched {
        RandomSched {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, enabled: &[Pid]) -> Pid {
        enabled[self.rng.usize_below(enabled.len())]
    }
}

/// A *bursty* random scheduler: keeps scheduling the same process for a
/// random burst before switching.
///
/// Bursts approximate the solo-run extensions that impossibility
/// arguments exploit and tend to find different bugs than uniform
/// random scheduling.
#[derive(Clone, Debug)]
pub struct BurstSched {
    rng: SplitMix64,
    max_burst: usize,
    current: Option<Pid>,
    remaining: usize,
}

impl BurstSched {
    /// A burst scheduler with the given seed; bursts are 1..=`max_burst`
    /// steps long.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst` is 0.
    pub fn new(seed: u64, max_burst: usize) -> BurstSched {
        assert!(max_burst > 0, "max_burst must be positive");
        BurstSched {
            rng: SplitMix64::new(seed),
            max_burst,
            current: None,
            remaining: 0,
        }
    }
}

impl Scheduler for BurstSched {
    fn pick(&mut self, enabled: &[Pid]) -> Pid {
        if let Some(p) = self.current {
            if self.remaining > 0 && enabled.contains(&p) {
                self.remaining -= 1;
                return p;
            }
        }
        let p = enabled[self.rng.usize_below(enabled.len())];
        self.current = Some(p);
        self.remaining = self.rng.usize_below(self.max_burst);
        p
    }
}

/// Replays a fixed schedule (e.g. one extracted from a counterexample
/// trace); once the script is exhausted, falls back to round-robin.
///
/// Scripted entries that are not enabled at replay time are skipped —
/// this keeps replays of traces with decisions/crashes robust.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: std::collections::VecDeque<Pid>,
    fallback: RoundRobin,
}

impl Scripted {
    /// A scheduler replaying `script`.
    pub fn new(script: impl IntoIterator<Item = Pid>) -> Scripted {
        Scripted {
            script: script.into_iter().collect(),
            fallback: RoundRobin::new(),
        }
    }
}

impl Scheduler for Scripted {
    fn pick(&mut self, enabled: &[Pid]) -> Pid {
        while let Some(p) = self.script.pop_front() {
            if enabled.contains(&p) {
                return p;
            }
        }
        self.fallback.pick(enabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_and_skips() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&[0, 1, 2]), 0);
        assert_eq!(rr.pick(&[0, 1, 2]), 1);
        assert_eq!(rr.pick(&[0, 2]), 2);
        assert_eq!(rr.pick(&[0, 2]), 0);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let picks: Vec<Pid> = {
            let mut s = RandomSched::new(42);
            (0..32).map(|_| s.pick(&[3, 5, 9])).collect()
        };
        let again: Vec<Pid> = {
            let mut s = RandomSched::new(42);
            (0..32).map(|_| s.pick(&[3, 5, 9])).collect()
        };
        assert_eq!(picks, again);
        assert!(picks.iter().all(|p| [3, 5, 9].contains(p)));
    }

    #[test]
    fn bursts_repeat_then_switch() {
        let mut s = BurstSched::new(7, 4);
        let picks: Vec<Pid> = (0..64).map(|_| s.pick(&[0, 1])).collect();
        // must schedule both processes eventually
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn scripted_skips_disabled_then_falls_back() {
        let mut s = Scripted::new([1, 1, 0]);
        assert_eq!(s.pick(&[0, 1]), 1);
        assert_eq!(s.pick(&[0]), 0); // the scripted `1` is skipped
        assert_eq!(s.pick(&[0, 2]), 0); // fallback round-robin
    }
}
