use bso_objects::{spec::ObjectState, Layout, ObjectError, ObjectId, Op, Value};

/// The model shared memory: a heap of sequential object specifications.
///
/// Operations are applied one at a time, so every history produced
/// through a `SharedMemory` is linearizable by construction — the
/// simulation's step order *is* the linearization order.
///
/// The whole memory state is `Clone + Eq + Hash`, which is what allows
/// the exhaustive explorer to memoize global states.
///
/// # Example
///
/// ```
/// use bso_objects::{Layout, ObjectInit, Op, Value};
/// use bso_sim::SharedMemory;
///
/// let mut layout = Layout::new();
/// let r = layout.push(ObjectInit::Register(Value::Nil));
/// let mut mem = SharedMemory::new(&layout);
/// mem.apply(0, &Op::write(r, Value::Int(1))).unwrap();
/// assert_eq!(mem.apply(1, &Op::read(r)).unwrap(), Value::Int(1));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SharedMemory {
    objects: Vec<ObjectState>,
}

impl SharedMemory {
    /// Allocates all objects of `layout` in their initial states.
    pub fn new(layout: &Layout) -> SharedMemory {
        SharedMemory {
            objects: layout
                .objects()
                .iter()
                .map(ObjectState::from_init)
                .collect(),
        }
    }

    /// Applies one operation atomically on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Propagates object-level errors ([`ObjectError`]); an error means
    /// the *protocol* is buggy (wrong op for an object, value outside a
    /// bounded domain), never the memory.
    pub fn apply(&mut self, pid: usize, op: &Op) -> Result<Value, ObjectError> {
        let obj = self
            .objects
            .get_mut(op.obj.0)
            .ok_or(ObjectError::UnknownObject(op.obj))?;
        obj.apply(pid, &op.kind)
    }

    /// Read-only access to an object's state (for checkers and tests).
    pub fn object(&self, id: ObjectId) -> Option<&ObjectState> {
        self.objects.get(id.0)
    }

    /// Mutable access to one object's state by layout index (for the
    /// explorer's in-place step undo).
    pub(crate) fn object_state_mut(&mut self, idx: usize) -> &mut ObjectState {
        &mut self.objects[idx]
    }

    /// All object states, in layout order (for the explorer's
    /// symmetry-reduction canonicalizer).
    pub(crate) fn objects(&self) -> &[ObjectState] {
        &self.objects
    }

    /// Rebuilds a memory from explicit object states (for the
    /// explorer's symmetry-reduction canonicalizer).
    pub(crate) fn from_objects(objects: Vec<ObjectState>) -> SharedMemory {
        SharedMemory { objects }
    }

    /// The number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the memory holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether every object is implementable from read/write registers
    /// (plain registers and snapshot objects).
    ///
    /// The reduction of the paper's Theorem 1 must produce a protocol
    /// using only read/write memory; its driver asserts this.
    pub fn is_read_write_only(&self) -> bool {
        self.objects.iter().all(ObjectState::is_read_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::ObjectInit;

    #[test]
    fn unknown_object_rejected() {
        let mut mem = SharedMemory::new(&Layout::new());
        assert!(mem.is_empty());
        let err = mem.apply(0, &Op::read(ObjectId(0))).unwrap_err();
        assert!(matches!(err, ObjectError::UnknownObject(_)));
    }

    #[test]
    fn read_write_only_classification() {
        let mut layout = Layout::new();
        layout.push(ObjectInit::Register(Value::Nil));
        layout.push(ObjectInit::Snapshot { slots: 2 });
        let mem = SharedMemory::new(&layout);
        assert!(mem.is_read_write_only());

        let mut layout = Layout::new();
        layout.push(ObjectInit::Register(Value::Nil));
        layout.push(ObjectInit::CasK { k: 3 });
        let mem = SharedMemory::new(&layout);
        assert!(!mem.is_read_write_only());
    }

    #[test]
    fn memory_states_hash_and_compare() {
        use std::collections::HashSet;
        let mut layout = Layout::new();
        let r = layout.push(ObjectInit::Register(Value::Nil));
        let mut a = SharedMemory::new(&layout);
        let b = a.clone();
        assert_eq!(a, b);
        a.apply(0, &Op::write(r, Value::Int(1))).unwrap();
        assert_ne!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }
}
