//! Deterministic 64-bit hashing for the exploration engine.
//!
//! The standard library's default hasher is seeded per-`HashMap`
//! instance, so two runs (or two shards) hash the same state to
//! different values. The explorer needs *stable* fingerprints: the
//! same global state must map to the same 64-bit code in every worker,
//! every shard, and every run, so that the fingerprint-keyed visited
//! table and the replayable lowest-schedule tie-breaks are
//! reproducible. This module provides an FxHash-style multiply-rotate
//! hasher with a fixed seed.
//!
//! FxHash is not collision-resistant against adversarial inputs, but
//! explorer states are not adversarial; what matters here is speed
//! (states are hashed once per generated successor) and determinism.
//! The collision *probability* caveat for fingerprint-keyed
//! deduplication is discussed in `DESIGN.md` §3.2.

use std::hash::{BuildHasher, Hash, Hasher};

/// The multiplier used by Firefox's FxHash (a 64-bit cousin of the
/// golden-ratio constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic 64-bit hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A fresh hasher with the fixed zero seed.
    pub fn new() -> FxHasher {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "" ≠ "a" + "b".
            self.add(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s; usable as the `S` parameter
/// of `HashMap`/`HashSet` for deterministic, fast hashing.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::new()
    }
}

/// The deterministic 64-bit fingerprint of any hashable value.
///
/// Equal values always fingerprint equally; distinct values collide
/// with probability ≈ 2⁻⁶⁴ per pair (for non-adversarial data).
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The salted hash of one *component* of a composite state, for
/// Zobrist-style incremental fingerprinting.
///
/// A state's fingerprint is the XOR of its components' hashes, each
/// salted with the component's index — so replacing one component
/// updates the fingerprint in O(1) (XOR the old component hash out,
/// the new one in) instead of re-walking the whole state. XOR makes
/// the combination order-independent; the index salt keeps equal
/// values at different positions from cancelling.
pub fn component_hash<T: Hash + ?Sized>(idx: usize, value: &T) -> u64 {
    let mut h = FxHasher::new();
    h.write_usize(idx);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let a = fingerprint(&("state", 42u64, vec![1u8, 2, 3]));
        let b = fingerprint(&("state", 42u64, vec![1u8, 2, 3]));
        assert_eq!(a, b);
        assert_ne!(a, fingerprint(&("state", 43u64, vec![1u8, 2, 3])));
    }

    #[test]
    fn tail_bytes_are_length_salted() {
        // Without tail-length salting these would collide.
        let mut h1 = FxHasher::new();
        h1.write(&[1, 0, 0]);
        let mut h2 = FxHasher::new();
        h2.write(&[1, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<u64, usize, FxBuildHasher> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i as usize);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn component_hashes_are_position_salted() {
        assert_ne!(component_hash(0, &7u64), component_hash(1, &7u64));
        // Equal components at different positions must not cancel
        // under the XOR combination.
        assert_ne!(component_hash(0, &7u64) ^ component_hash(1, &7u64), 0);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Shard selection uses the high bits; sequential inputs must not
        // land in one shard.
        use std::collections::HashSet;
        let shards: HashSet<u64> = (0..1024u64).map(|i| fingerprint(&i) >> 58).collect();
        assert!(shards.len() > 32, "only {} of 64 shards hit", shards.len());
    }
}
