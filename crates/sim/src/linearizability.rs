//! A Wing–Gong style linearizability checker.
//!
//! Validates a recorded concurrent history (see [`crate::record`])
//! against the sequential object specifications of `bso-objects`.
//! Linearizability is *local* (Herlihy & Wing): a history is
//! linearizable iff its per-object projections are, so
//! [`check_history`] splits the log by object and checks each
//! projection independently.
//!
//! The per-object check is the classical branch-and-bound search: pick
//! any operation that is minimal in the real-time precedence order,
//! apply it to the sequential specification, and accept it if the
//! specification produces the recorded response; backtrack otherwise.
//! Worst-case exponential, practical for the short, contended windows
//! our stress tests record.

use std::collections::BTreeMap;
use std::fmt;

use bso_objects::spec::ObjectState;
use bso_objects::{Layout, ObjectId, OpKind};

use crate::record::RecordedOp;

/// Why a history failed the check.
#[derive(Clone, Debug)]
pub struct NotLinearizable {
    /// The object whose projection has no valid linearization.
    pub obj: ObjectId,
    /// Number of operations in the failing projection.
    pub ops: usize,
    /// The failing projection itself, in the order it was checked —
    /// every recorded operation on [`Self::obj`] with its pid, kind,
    /// response, and invocation/response ticks, so a violation seen
    /// e.g. on the wire server is actionable without a re-run.
    pub log: Vec<RecordedOp>,
}

/// How many operations [`NotLinearizable`]'s `Display` prints before
/// eliding the rest (the full projection stays in the `log` field).
const DISPLAY_OPS: usize = 12;

impl fmt::Display for NotLinearizable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no linearization of the {} operations on {} matches the sequential spec",
            self.ops, self.obj
        )?;
        for r in self.log.iter().take(DISPLAY_OPS) {
            write!(
                f,
                "\n  p{} {}.{:?} -> {} @[{},{}]",
                r.pid, r.op.obj, r.op.kind, r.resp, r.invoked_at, r.responded_at
            )?;
        }
        if self.log.len() > DISPLAY_OPS {
            write!(f, "\n  … {} more", self.log.len() - DISPLAY_OPS)?;
        }
        Ok(())
    }
}

impl std::error::Error for NotLinearizable {}

/// Checks one object's history against its sequential specification.
///
/// Returns a witness linearization (indices into `history` in
/// linearization order) on success.
///
/// # Errors
///
/// [`NotLinearizable`] if no linearization explains the responses.
pub fn check_object_history(
    obj: ObjectId,
    initial: &ObjectState,
    history: &[RecordedOp],
) -> Result<Vec<usize>, NotLinearizable> {
    let n = history.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    if search(initial.clone(), history, &mut used, &mut order) {
        Ok(order)
    } else {
        Err(NotLinearizable {
            obj,
            ops: n,
            log: history.to_vec(),
        })
    }
}

fn search(
    spec: ObjectState,
    history: &[RecordedOp],
    used: &mut [bool],
    order: &mut Vec<usize>,
) -> bool {
    if order.len() == history.len() {
        return true;
    }
    // Candidates: unused ops minimal in the precedence order, i.e. no
    // other unused op responded before they were invoked.
    'cand: for i in 0..history.len() {
        if used[i] {
            continue;
        }
        for j in 0..history.len() {
            if !used[j] && j != i && history[j].precedes(&history[i]) {
                continue 'cand;
            }
        }
        let mut next = spec.clone();
        match next.apply(history[i].pid, &history[i].op.kind) {
            Ok(resp) if resp == history[i].resp => {}
            _ => continue,
        }
        used[i] = true;
        order.push(i);
        if search(next, history, used, order) {
            return true;
        }
        order.pop();
        used[i] = false;
    }
    false
}

/// Checks a multi-object history by locality: splits by object and
/// checks each projection.
///
/// # Errors
///
/// The first non-linearizable per-object projection.
///
/// # Panics
///
/// Panics if the log references an object that is not in `layout`.
pub fn check_history(layout: &Layout, log: &[RecordedOp]) -> Result<(), NotLinearizable> {
    let mut by_obj: BTreeMap<ObjectId, Vec<RecordedOp>> = BTreeMap::new();
    for r in log {
        by_obj.entry(r.op.obj).or_default().push(r.clone());
    }
    for (obj, ops) in by_obj {
        let init = layout
            .objects()
            .get(obj.0)
            .unwrap_or_else(|| panic!("log references unknown object {obj}"));
        check_object_history(obj, &ObjectState::from_init(init), &ops)?;
    }
    Ok(())
}

/// Why a per-process operation family has no legal serialization.
#[derive(Clone, Debug)]
pub struct NotSerializable {
    /// Number of operations in the failing instance.
    pub ops: usize,
}

impl fmt::Display for NotSerializable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no interleaving of the {} per-process operation sequences matches the \
             sequential specs",
            self.ops
        )
    }
}

impl std::error::Error for NotSerializable {}

/// Checks **run legality without real-time constraints**: is there a
/// single total order of all operations — across *all* objects,
/// consistent with each process's program order — in which every
/// recorded response matches the sequential specifications?
///
/// This is the legality notion of a *run* in the asynchronous model
/// (and of the paper's Lemma 1.2): the emulation constructs runs by
/// placing suspended processes' operations at earlier points than the
/// emulation's wall clock, so [`check_history`]'s real-time order
/// would be too strict. Unlike linearizability, this criterion is
/// **not** local — all objects are replayed jointly.
///
/// `ops_by_proc[p]` is process `p`'s operation/response sequence in
/// program order. Returns a witness interleaving as `(process, index)`
/// pairs.
///
/// # Errors
///
/// [`NotSerializable`] if no interleaving works.
///
/// # Panics
///
/// Panics if an operation references an object outside `layout`.
pub fn check_run_legality(
    layout: &Layout,
    ops_by_proc: &[Vec<(usize, bso_objects::Op, bso_objects::Value)>],
) -> Result<Vec<(usize, usize)>, NotSerializable> {
    let objects: Vec<ObjectState> = layout
        .objects()
        .iter()
        .map(ObjectState::from_init)
        .collect();
    let mut pos = vec![0usize; ops_by_proc.len()];
    let mut order = Vec::new();
    let total: usize = ops_by_proc.iter().map(Vec::len).sum();
    let mut memo = std::collections::HashSet::new();
    if serialize(&objects, ops_by_proc, &mut pos, &mut order, &mut memo) {
        Ok(order)
    } else {
        Err(NotSerializable { ops: total })
    }
}

fn serialize(
    objects: &[ObjectState],
    ops: &[Vec<(usize, bso_objects::Op, bso_objects::Value)>],
    pos: &mut [usize],
    order: &mut Vec<(usize, usize)>,
    memo: &mut std::collections::HashSet<(Vec<usize>, Vec<ObjectState>)>,
) -> bool {
    if pos.iter().enumerate().all(|(p, &i)| i == ops[p].len()) {
        return true;
    }
    // Dead-end memoization: the reachable continuations depend only on
    // the queue positions and current object states.
    let key = (pos.to_vec(), objects.to_vec());
    if memo.contains(&key) {
        return false;
    }
    'cand: for p in 0..ops.len() {
        let i = pos[p];
        if i >= ops[p].len() {
            continue;
        }
        // Symmetry reduction: processes with identical remaining
        // operation/response suffixes are interchangeable — exploring
        // the first of each equivalence class is complete. (Emulated
        // workloads are highly symmetric; without this the search is
        // factorial in the number of identical v-processes.) Only
        // pid-insensitive operations qualify: a `SnapshotUpdate`'s
        // effect depends on who performs it.
        let pid_insensitive = |o: &[(usize, bso_objects::Op, bso_objects::Value)]| {
            o.iter()
                .all(|(_, op, _)| !matches!(op.kind, OpKind::SnapshotUpdate(_)))
        };
        if pid_insensitive(&ops[p][i..]) {
            for q in 0..p {
                if pid_insensitive(&ops[q][pos[q]..])
                    && ops[q][pos[q]..]
                        .iter()
                        .map(|(_, op, r)| (op, r))
                        .eq(ops[p][i..].iter().map(|(_, op, r)| (op, r)))
                {
                    continue 'cand;
                }
            }
        }
        let (pid, op, resp) = &ops[p][i];
        let mut next_objects = objects.to_vec();
        let obj = next_objects
            .get_mut(op.obj.0)
            .unwrap_or_else(|| panic!("operation references unknown object {}", op.obj));
        match obj.apply(*pid, &op.kind) {
            Ok(r) if r == *resp => {}
            _ => continue,
        }
        pos[p] += 1;
        order.push((p, i));
        if serialize(&next_objects, ops, pos, order, memo) {
            return true;
        }
        order.pop();
        pos[p] -= 1;
    }
    memo.insert(key);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{ObjectInit, Op, OpKind, Value};

    fn rec(pid: usize, op: Op, resp: Value, at: (u64, u64)) -> RecordedOp {
        RecordedOp {
            pid,
            op,
            resp,
            invoked_at: at.0,
            responded_at: at.1,
        }
    }

    #[test]
    fn sequential_history_linearizes_in_order() {
        let obj = ObjectId(0);
        let init = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        let h = vec![
            rec(0, Op::write(obj, Value::Int(1)), Value::Nil, (0, 1)),
            rec(1, Op::read(obj), Value::Int(1), (2, 3)),
        ];
        assert_eq!(check_object_history(obj, &init, &h).unwrap(), vec![0, 1]);
    }

    #[test]
    fn concurrent_reads_may_reorder() {
        let obj = ObjectId(0);
        let init = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        // Write of 1 concurrent with a read of Nil: the read must be
        // linearized before the write even though it *responded* later.
        let h = vec![
            rec(0, Op::write(obj, Value::Int(1)), Value::Nil, (0, 3)),
            rec(1, Op::read(obj), Value::Nil, (1, 4)),
        ];
        let order = check_object_history(obj, &init, &h).unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn stale_read_after_completed_write_is_rejected() {
        let obj = ObjectId(0);
        let init = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        // The write finished (tick 1) before the read began (tick 2),
        // yet the read returned the old value: not linearizable.
        let h = vec![
            rec(0, Op::write(obj, Value::Int(1)), Value::Nil, (0, 1)),
            rec(1, Op::read(obj), Value::Nil, (2, 3)),
        ];
        let err = check_object_history(obj, &init, &h).unwrap_err();
        // The error carries the failing projection itself …
        assert_eq!(err.ops, 2);
        assert_eq!(err.log.len(), 2);
        assert_eq!(err.log[1].pid, 1);
        // … and its display names each op with pid, kind, response
        // and ticks, so the violation is actionable from the message
        // alone.
        let msg = err.to_string();
        assert!(
            msg.starts_with("no linearization of the 2 operations on o0"),
            "unexpected headline: {msg}"
        );
        assert!(msg.contains("p0 o0.Write(1) -> "), "{msg}");
        assert!(msg.contains("p1 o0.Read -> "), "{msg}");
        assert!(msg.contains("@[0,1]") && msg.contains("@[2,3]"), "{msg}");
        assert!(!msg.contains("more"), "nothing should be elided: {msg}");
    }

    #[test]
    fn long_failing_projections_are_elided_in_display() {
        let obj = ObjectId(0);
        let init = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        // 15 sequential reads that all claim to have seen a value
        // nobody wrote: hopeless, and longer than the display cap.
        let h: Vec<RecordedOp> = (0..15)
            .map(|i| {
                rec(
                    i % 2,
                    Op::read(obj),
                    Value::Int(7),
                    (2 * i as u64, 2 * i as u64 + 1),
                )
            })
            .collect();
        let err = check_object_history(obj, &init, &h).unwrap_err();
        assert_eq!(err.log.len(), 15, "the log field holds everything");
        let msg = err.to_string();
        assert!(msg.contains("… 3 more"), "expected elision note: {msg}");
    }

    #[test]
    fn two_cas_winners_on_same_expect_are_rejected() {
        use bso_objects::Sym;
        let obj = ObjectId(0);
        let init = ObjectState::from_init(&ObjectInit::CasK { k: 3 });
        // Two *successful* c&s(⊥ → ·) responses: impossible.
        let h = vec![
            rec(
                0,
                Op::cas(obj, Sym::BOTTOM.into(), Sym::new(0).into()),
                Value::Sym(Sym::BOTTOM),
                (0, 3),
            ),
            rec(
                1,
                Op::cas(obj, Sym::BOTTOM.into(), Sym::new(1).into()),
                Value::Sym(Sym::BOTTOM),
                (1, 4),
            ),
        ];
        assert!(check_object_history(obj, &init, &h).is_err());
        // The legal variant: the second sees the first's value.
        let h = vec![
            rec(
                0,
                Op::cas(obj, Sym::BOTTOM.into(), Sym::new(0).into()),
                Value::Sym(Sym::BOTTOM),
                (0, 3),
            ),
            rec(
                1,
                Op::cas(obj, Sym::BOTTOM.into(), Sym::new(1).into()),
                Value::Sym(Sym::new(0)),
                (1, 4),
            ),
        ];
        assert!(check_object_history(obj, &init, &h).is_ok());
    }

    #[test]
    fn run_legality_reorders_across_real_time() {
        use bso_objects::Sym;
        // p0's successful c&s(⊥→0) "happened" before p1's failing
        // c&s(⊥→1) that saw 0 — even if the emulation published them in
        // the other order, the legality check finds the interleaving.
        let mut layout = Layout::new();
        let cas = layout.push(ObjectInit::CasK { k: 3 });
        let ops = vec![
            // p0: one successful c&s
            vec![(
                0usize,
                Op::cas(cas, Sym::BOTTOM.into(), Sym::new(0).into()),
                Value::Sym(Sym::BOTTOM),
            )],
            // p1: a failing c&s that observed 0
            vec![(
                1usize,
                Op::cas(cas, Sym::BOTTOM.into(), Sym::new(1).into()),
                Value::Sym(Sym::new(0)),
            )],
        ];
        let order = check_run_legality(&layout, &ops).unwrap();
        assert_eq!(order, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn run_legality_rejects_two_winners() {
        use bso_objects::Sym;
        let mut layout = Layout::new();
        let cas = layout.push(ObjectInit::CasK { k: 3 });
        let ops = vec![
            vec![(
                0usize,
                Op::cas(cas, Sym::BOTTOM.into(), Sym::new(0).into()),
                Value::Sym(Sym::BOTTOM),
            )],
            vec![(
                1usize,
                Op::cas(cas, Sym::BOTTOM.into(), Sym::new(1).into()),
                Value::Sym(Sym::BOTTOM),
            )],
        ];
        assert!(check_run_legality(&layout, &ops).is_err());
    }

    #[test]
    fn run_legality_respects_program_order() {
        // p0 writes 1 then 2; p1 reads 2 then 1: impossible in any
        // interleaving respecting p0's program order... actually
        // reading 2 then 1 IS impossible since writes are ordered.
        let mut layout = Layout::new();
        let r = layout.push(ObjectInit::Register(Value::Nil));
        let ops = vec![
            vec![
                (0usize, Op::write(r, Value::Int(1)), Value::Nil),
                (0usize, Op::write(r, Value::Int(2)), Value::Nil),
            ],
            vec![
                (1usize, Op::read(r), Value::Int(2)),
                (1usize, Op::read(r), Value::Int(1)),
            ],
        ];
        assert!(check_run_legality(&layout, &ops).is_err());
        // The legal variant: reads in write order.
        let ops = vec![
            ops[0].clone(),
            vec![
                (1usize, Op::read(r), Value::Int(1)),
                (1usize, Op::read(r), Value::Int(2)),
            ],
        ];
        assert!(check_run_legality(&layout, &ops).is_ok());
    }

    #[test]
    fn run_legality_spans_objects_jointly() {
        // Cross-object constraint: p0 writes a then b; p1 sees b's
        // write but then a's old value — inconsistent with any single
        // total order... p1 reads objB=1 (after p0's second write)
        // then objA=Nil (before p0's first): impossible.
        let mut layout = Layout::new();
        let a = layout.push(ObjectInit::Register(Value::Nil));
        let b = layout.push(ObjectInit::Register(Value::Nil));
        let ops = vec![
            vec![
                (0usize, Op::write(a, Value::Int(1)), Value::Nil),
                (0usize, Op::write(b, Value::Int(1)), Value::Nil),
            ],
            vec![
                (1usize, Op::read(b), Value::Int(1)),
                (1usize, Op::read(a), Value::Nil),
            ],
        ];
        assert!(check_run_legality(&layout, &ops).is_err());
    }

    #[test]
    fn multi_object_locality() {
        let mut layout = Layout::new();
        let a = layout.push(ObjectInit::Register(Value::Nil));
        let b = layout.push(ObjectInit::FetchAdd(0));
        let log = vec![
            rec(0, Op::write(a, Value::Int(9)), Value::Nil, (0, 1)),
            rec(1, Op::new(b, OpKind::FetchAdd(1)), Value::Int(0), (0, 2)),
            rec(0, Op::read(a), Value::Int(9), (2, 3)),
            rec(1, Op::new(b, OpKind::FetchAdd(1)), Value::Int(1), (3, 4)),
        ];
        assert!(check_history(&layout, &log).is_ok());
    }
}
