//! Runs the *same* protocol state machines on real OS threads against
//! the hardware-atomic backend of `bso-objects`.
//!
//! The simulator establishes correctness under adversarial schedules;
//! this runner establishes that nothing in a protocol depends on the
//! model — the state machine is executed in direct style, one shared
//! operation at a time, against real `compare&swap` instructions.

use std::time::Instant;

use bso_objects::atomic::{AtomicMemory, Memory};
use bso_objects::{ObjectError, OpKind, Value};
use bso_telemetry::{Counter, Histogram, Registry, TraceArg, TraceSink};

use crate::record::{RecordedOp, RecordingMemory};
use crate::{Action, Pid, Protocol};

/// Telemetry handles for the thread runner (the `thread.*` namespace).
///
/// All handles are created up front so every metric appears in a
/// snapshot (at zero) even for runs that never fail a `c&s`.
struct ThreadTel {
    enabled: bool,
    runs: Counter,
    steps: Counter,
    decisions: Counter,
    cas_attempts: Counter,
    cas_failures: Counter,
    tas_losses: Counter,
    step_ns: Histogram,
    steps_per_proc: Histogram,
}

impl ThreadTel {
    fn new(registry: &Registry) -> ThreadTel {
        ThreadTel {
            enabled: registry.is_enabled(),
            runs: registry.counter("thread.runs"),
            steps: registry.counter("thread.steps"),
            decisions: registry.counter("thread.decisions"),
            cas_attempts: registry.counter("thread.cas.attempts"),
            cas_failures: registry.counter("thread.cas.failures"),
            tas_losses: registry.counter("thread.tas.losses"),
            step_ns: registry.histogram("thread.step_ns"),
            steps_per_proc: registry.histogram("thread.steps_per_proc"),
        }
    }

    /// Classifies one shared-memory step: `c&s` succeeded iff the
    /// response (always the previous contents) equals `expect`;
    /// test&set lost iff the previous bit was already set.
    fn record_step(&self, op_kind: &OpKind, resp: &Value, elapsed_ns: u64) {
        self.steps.inc();
        self.step_ns.record(elapsed_ns);
        match op_kind {
            OpKind::Cas { expect, .. } => {
                self.cas_attempts.inc();
                if resp != expect {
                    self.cas_failures.inc();
                }
            }
            OpKind::TestAndSet if *resp == Value::Bool(true) => {
                self.tas_losses.inc();
            }
            _ => {}
        }
    }
}

/// Drives one process's state machine to its decision against any
/// [`Memory`], recording per-step telemetry into `registry`.
///
/// # Errors
///
/// Propagates illegal-operation errors from the memory.
pub fn run_process_with<P: Protocol, M: Memory + ?Sized>(
    proto: &P,
    mem: &M,
    pid: Pid,
    input: &Value,
    registry: &Registry,
) -> Result<Value, ObjectError> {
    let tel = ThreadTel::new(registry);
    run_process_tel(proto, mem, pid, input, &tel)
}

fn run_process_tel<P: Protocol, M: Memory + ?Sized>(
    proto: &P,
    mem: &M,
    pid: Pid,
    input: &Value,
    tel: &ThreadTel,
) -> Result<Value, ObjectError> {
    let mut state = proto.init(pid, input);
    let mut steps: u64 = 0;
    loop {
        match proto.next_action(&state) {
            Action::Invoke(op) => {
                if tel.enabled {
                    let started = Instant::now();
                    let resp = mem.apply(pid, &op)?;
                    let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    tel.record_step(&op.kind, &resp, elapsed);
                    steps += 1;
                    proto.on_response(&mut state, resp);
                } else {
                    let resp = mem.apply(pid, &op)?;
                    proto.on_response(&mut state, resp);
                }
            }
            Action::Decide(v) => {
                if tel.enabled {
                    tel.decisions.inc();
                    tel.steps_per_proc.record(steps);
                }
                return Ok(v);
            }
        }
    }
}

/// Drives one process's state machine to its decision against any
/// [`Memory`].
///
/// Telemetry goes to the global registry (enabled only when the
/// `BSO_TELEMETRY` environment variable is set).
///
/// # Errors
///
/// Propagates illegal-operation errors from the memory.
pub fn run_process<P: Protocol, M: Memory + ?Sized>(
    proto: &P,
    mem: &M,
    pid: Pid,
    input: &Value,
) -> Result<Value, ObjectError> {
    run_process_with(proto, mem, pid, input, &Registry::default())
}

/// Runs all processes concurrently on OS threads and returns their
/// decisions.
///
/// Telemetry goes to the global registry (enabled only when the
/// `BSO_TELEMETRY` environment variable is set).
///
/// # Errors
///
/// The first illegal-operation error of any process.
///
/// # Panics
///
/// Panics if a worker thread itself panics, or if
/// `inputs.len() != proto.processes()`.
pub fn run_on_threads<P>(proto: &P, inputs: &[Value]) -> Result<Vec<Value>, ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
{
    run_on_threads_with(proto, inputs, &Registry::default())
}

/// Like [`run_on_threads`], but records per-step telemetry into the
/// given `registry` instead of the global one.
///
/// # Errors
///
/// The first illegal-operation error of any process.
///
/// # Panics
///
/// Panics if a worker thread itself panics, or if
/// `inputs.len() != proto.processes()`.
pub fn run_on_threads_with<P>(
    proto: &P,
    inputs: &[Value],
    registry: &Registry,
) -> Result<Vec<Value>, ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
{
    let n = proto.processes();
    assert_eq!(inputs.len(), n, "need one input per process");
    let mem = AtomicMemory::new(&proto.layout());
    collect_decisions(proto, &mem, inputs, registry)
}

/// Like [`run_on_threads`], but records the full concurrent history
/// for the linearizability checker.
///
/// # Errors
///
/// The first illegal-operation error of any process.
///
/// # Panics
///
/// Panics if a worker thread itself panics, or if
/// `inputs.len() != proto.processes()`.
pub fn run_on_threads_recorded<P>(
    proto: &P,
    inputs: &[Value],
) -> Result<(Vec<Value>, Vec<RecordedOp>), ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
{
    let mem = AtomicMemory::new(&proto.layout());
    let rec = RecordingMemory::new(&mem);
    let decisions = collect_decisions(proto, &rec, inputs, &Registry::default())?;
    let log = rec.into_log();
    trace_recorded_ops(&TraceSink::default(), &log);
    Ok((decisions, log))
}

/// Emits one trace span per recorded operation, on a per-process
/// trace track labeled `proc-p{pid}`.
///
/// The logical clock ticks of the [`RecordedOp`] log become the
/// timeline: one tick is rendered as one microsecond, so the
/// invocation/response intervals of concurrent operations visibly
/// overlap in a trace viewer exactly as they did in the history.
/// Does nothing when `sink` is disabled.
pub fn trace_recorded_ops(sink: &TraceSink, log: &[RecordedOp]) {
    if !sink.is_enabled() || log.is_empty() {
        return;
    }
    let procs = log.iter().map(|r| r.pid).max().unwrap_or(0) + 1;
    let workers: Vec<_> = (0..procs)
        .map(|p| sink.worker(format!("proc-p{p}")))
        .collect();
    for r in log {
        let dur_ticks = r.responded_at.saturating_sub(r.invoked_at).max(1);
        workers[r.pid].event_at(
            r.invoked_at * 1000,
            Some(dur_ticks * 1000),
            &r.op.to_string(),
            [
                ("obj", TraceArg::from(r.op.obj.0)),
                ("resp", TraceArg::from(r.resp.to_string())),
            ],
        );
    }
}

fn collect_decisions<P, M>(
    proto: &P,
    mem: &M,
    inputs: &[Value],
    registry: &Registry,
) -> Result<Vec<Value>, ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
    M: Memory + ?Sized,
{
    let tel = ThreadTel::new(registry);
    if tel.enabled {
        tel.runs.inc();
    }
    let tel = &tel;
    let results: Vec<Result<Value, ObjectError>> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(pid, input)| s.spawn(move || run_process_tel(proto, mem, pid, input, tel)))
            .collect();
        // Join *every* worker before reacting to a panic, so a
        // panicking protocol cannot leave peers running against freed
        // shared memory; then re-raise with the payload and the
        // offending pid instead of an opaque double panic.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined
            .into_iter()
            .enumerate()
            .map(|(pid, r)| {
                r.unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!("process {pid} panicked on the hardware runner: {msg}")
                })
            })
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Every process fetch&adds once and decides its rank.
    struct Ranker {
        n: usize,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(i64),
    }

    impl Protocol for Ranker {
        type State = St;
        fn processes(&self) -> usize {
            self.n
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::FetchAdd(0));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> St {
            St::Start
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Start => Action::Invoke(Op::new(ObjectId(0), OpKind::FetchAdd(1))),
                St::Done(r) => Action::Decide(Value::Int(*r)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = St::Done(resp.as_int().unwrap());
        }
    }

    #[test]
    fn threads_produce_distinct_ranks() {
        let proto = Ranker { n: 8 };
        let mut ranks: Vec<i64> = run_on_threads(&proto, &vec![Value::Nil; 8])
            .unwrap()
            .into_iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..8).collect::<Vec<i64>>());
    }

    #[test]
    fn telemetry_counts_thread_steps() {
        let reg = Registry::enabled();
        let proto = Ranker { n: 4 };
        run_on_threads_with(&proto, &vec![Value::Nil; 4], &reg).unwrap();
        assert_eq!(reg.counter("thread.runs").get(), 1);
        assert_eq!(reg.counter("thread.steps").get(), 4); // one f&a each
        assert_eq!(reg.counter("thread.decisions").get(), 4);
        assert_eq!(reg.histogram("thread.steps_per_proc").count(), 4);
        assert_eq!(reg.histogram("thread.step_ns").count(), 4);
        // No c&s or test&set in this protocol, but the handles exist.
        assert_eq!(reg.counter("thread.cas.attempts").get(), 0);
        assert_eq!(reg.counter("thread.tas.losses").get(), 0);
        assert!(reg.snapshot().len() >= 8);
    }

    #[test]
    fn recorded_ops_become_trace_events() {
        let proto = Ranker { n: 3 };
        let mem = AtomicMemory::new(&proto.layout());
        let rec = RecordingMemory::new(&mem);
        collect_decisions(&proto, &rec, &vec![Value::Nil; 3], &Registry::disabled()).unwrap();
        let log = rec.into_log();
        let sink = TraceSink::enabled();
        trace_recorded_ops(&sink, &log);
        assert_eq!(sink.events_len(), log.len());
        let json = sink.export_string();
        assert!(json.contains("proc-p0"));
        assert!(json.contains("f&a(1)"));
        // A disabled sink records nothing and never panics.
        trace_recorded_ops(&TraceSink::disabled(), &log);
    }

    #[test]
    fn a_panicking_process_is_reported_with_pid_and_payload() {
        /// p1 panics on its first action; everyone else behaves.
        struct Grenade;
        impl Protocol for Grenade {
            type State = St;
            fn processes(&self) -> usize {
                3
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::FetchAdd(0));
                l
            }
            fn init(&self, _pid: Pid, _input: &Value) -> St {
                St::Start
            }
            fn next_action(&self, st: &St) -> Action {
                match st {
                    St::Start => Action::Invoke(Op::new(ObjectId(0), OpKind::FetchAdd(1))),
                    St::Done(r) => {
                        if *r == 1 {
                            panic!("grenade went off");
                        }
                        Action::Decide(Value::Int(*r))
                    }
                }
            }
            fn on_response(&self, st: &mut St, resp: Value) {
                *st = St::Done(resp.as_int().unwrap());
            }
        }

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = std::panic::catch_unwind(|| run_on_threads(&Grenade, &vec![Value::Nil; 3]));
        std::panic::set_hook(hook);
        let payload = outcome.expect_err("the panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("diagnosed panics carry a String payload");
        assert!(
            msg.contains("panicked on the hardware runner") && msg.contains("grenade went off"),
            "payload should name the runner and quote the cause: {msg}"
        );
    }

    #[test]
    fn recorded_history_is_linearizable() {
        let proto = Ranker { n: 4 };
        let (decisions, log) = run_on_threads_recorded(&proto, &vec![Value::Nil; 4]).unwrap();
        assert_eq!(decisions.len(), 4);
        assert_eq!(log.len(), 4); // one f&a per process
        crate::linearizability::check_history(&proto.layout(), &log).unwrap();
    }
}
