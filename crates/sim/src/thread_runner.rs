//! Runs the *same* protocol state machines on real OS threads against
//! the hardware-atomic backend of `bso-objects`.
//!
//! The simulator establishes correctness under adversarial schedules;
//! this runner establishes that nothing in a protocol depends on the
//! model — the state machine is executed in direct style, one shared
//! operation at a time, against real `compare&swap` instructions.

use bso_objects::atomic::{AtomicMemory, Memory};
use bso_objects::{ObjectError, Value};

use crate::record::{RecordedOp, RecordingMemory};
use crate::{Action, Pid, Protocol};

/// Drives one process's state machine to its decision against any
/// [`Memory`].
///
/// # Errors
///
/// Propagates illegal-operation errors from the memory.
pub fn run_process<P: Protocol, M: Memory + ?Sized>(
    proto: &P,
    mem: &M,
    pid: Pid,
    input: &Value,
) -> Result<Value, ObjectError> {
    let mut state = proto.init(pid, input);
    loop {
        match proto.next_action(&state) {
            Action::Invoke(op) => {
                let resp = mem.apply(pid, &op)?;
                proto.on_response(&mut state, resp);
            }
            Action::Decide(v) => return Ok(v),
        }
    }
}

/// Runs all processes concurrently on OS threads and returns their
/// decisions.
///
/// # Errors
///
/// The first illegal-operation error of any process.
///
/// # Panics
///
/// Panics if a worker thread itself panics, or if
/// `inputs.len() != proto.processes()`.
pub fn run_on_threads<P>(proto: &P, inputs: &[Value]) -> Result<Vec<Value>, ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
{
    let n = proto.processes();
    assert_eq!(inputs.len(), n, "need one input per process");
    let mem = AtomicMemory::new(&proto.layout());
    collect_decisions(proto, &mem, inputs)
}

/// Like [`run_on_threads`], but records the full concurrent history
/// for the linearizability checker.
///
/// # Errors
///
/// The first illegal-operation error of any process.
///
/// # Panics
///
/// Panics if a worker thread itself panics, or if
/// `inputs.len() != proto.processes()`.
pub fn run_on_threads_recorded<P>(
    proto: &P,
    inputs: &[Value],
) -> Result<(Vec<Value>, Vec<RecordedOp>), ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
{
    let mem = AtomicMemory::new(&proto.layout());
    let rec = RecordingMemory::new(&mem);
    let decisions = collect_decisions(proto, &rec, inputs)?;
    Ok((decisions, rec.into_log()))
}

fn collect_decisions<P, M>(proto: &P, mem: &M, inputs: &[Value]) -> Result<Vec<Value>, ObjectError>
where
    P: Protocol + Sync,
    P::State: Send,
    M: Memory + ?Sized,
{
    let results: Vec<Result<Value, ObjectError>> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(pid, input)| s.spawn(move || run_process(proto, mem, pid, input)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};

    /// Every process fetch&adds once and decides its rank.
    struct Ranker {
        n: usize,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(i64),
    }

    impl Protocol for Ranker {
        type State = St;
        fn processes(&self) -> usize {
            self.n
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::FetchAdd(0));
            l
        }
        fn init(&self, _pid: Pid, _input: &Value) -> St {
            St::Start
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                St::Start => Action::Invoke(Op::new(ObjectId(0), OpKind::FetchAdd(1))),
                St::Done(r) => Action::Decide(Value::Int(*r)),
            }
        }
        fn on_response(&self, st: &mut St, resp: Value) {
            *st = St::Done(resp.as_int().unwrap());
        }
    }

    #[test]
    fn threads_produce_distinct_ranks() {
        let proto = Ranker { n: 8 };
        let mut ranks: Vec<i64> = run_on_threads(&proto, &vec![Value::Nil; 8])
            .unwrap()
            .into_iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..8).collect::<Vec<i64>>());
    }

    #[test]
    fn recorded_history_is_linearizable() {
        let proto = Ranker { n: 4 };
        let (decisions, log) = run_on_threads_recorded(&proto, &vec![Value::Nil; 4]).unwrap();
        assert_eq!(decisions.len(), 4);
        assert_eq!(log.len(), 4); // one f&a per process
        crate::linearizability::check_history(&proto.layout(), &log).unwrap();
    }
}
