use bso_objects::{Layout, ObjectId, Op, Value};

/// A process identifier, `0 .. Protocol::processes()`.
pub type Pid = usize;

/// What a protocol can promise about the decision values a process may
/// produce from some local state onward. Part of a [`Footprint`].
///
/// Two future decisions are *independent* (for partial-order
/// reduction) only when they provably cannot disagree — i.e. both are
/// [`DecideHint::Exactly`] the same value — or when at least one side
/// is [`DecideHint::Never`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum DecideHint {
    /// The process will never decide from here on (it runs forever or
    /// the protocol guarantees it halts without a decision — which the
    /// model does not allow, so in practice: it runs forever).
    Never,
    /// The process may decide, and the value is not pinned down.
    #[default]
    Unknown,
    /// Every decision the process can make from here on equals this
    /// value, in every protocol-reachable future.
    Exactly(Value),
}

/// An over-approximation of the shared-memory accesses and decisions a
/// process may perform from a given local state *onward*.
///
/// Returned by [`Protocol::footprint`] and consumed by the explorer's
/// dynamic partial-order reduction ([`crate::Explorer::dpor`]): two
/// processes whose footprints do not conflict are guaranteed to
/// commute, so the explorer may postpone one of them without losing
/// reachable states or verdicts.
///
/// **Contract.** The footprint must cover *every* operation the
/// process can issue and every decision it can make starting from the
/// queried local state, under *any* shared memory reachable from the
/// queried memory by steps of this protocol. When in doubt return
/// [`Footprint::top`] — it is always sound and merely disables
/// reduction for this process at this state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// Everything conflicts with this footprint.
    pub(crate) top: bool,
    /// Bitmask of object ids the process may read (bit `i` ⇒
    /// `ObjectId(i)`).
    pub(crate) reads: u64,
    /// Bitmask of object ids the process may mutate.
    pub(crate) writes: u64,
    /// What the process may decide.
    pub(crate) decide: DecideHint,
}

impl Footprint {
    /// The universal footprint: conflicts with everything. Always
    /// sound.
    pub fn top() -> Footprint {
        Footprint {
            top: true,
            reads: 0,
            writes: 0,
            decide: DecideHint::Unknown,
        }
    }

    /// The empty footprint: no shared accesses, no decision
    /// ([`DecideHint::Never`]). Extend with the builder methods.
    pub fn empty() -> Footprint {
        Footprint {
            top: false,
            reads: 0,
            writes: 0,
            decide: DecideHint::Never,
        }
    }

    /// Adds `obj` to the read set.
    ///
    /// Object ids ≥ 64 do not fit the bitmask; they widen the
    /// footprint to [`Footprint::top`] (sound, no reduction).
    #[must_use]
    pub fn read(mut self, obj: ObjectId) -> Footprint {
        if obj.0 >= 64 {
            self.top = true;
        } else {
            self.reads |= 1 << obj.0;
        }
        self
    }

    /// Adds `obj` to the write (mutation) set.
    ///
    /// Object ids ≥ 64 widen the footprint to [`Footprint::top`].
    #[must_use]
    pub fn write(mut self, obj: ObjectId) -> Footprint {
        if obj.0 >= 64 {
            self.top = true;
        } else {
            self.writes |= 1 << obj.0;
        }
        self
    }

    /// Sets the decision hint.
    #[must_use]
    pub fn decide(mut self, hint: DecideHint) -> Footprint {
        self.decide = hint;
        self
    }
}

/// What a process wants to do next: perform one shared-memory operation
/// or decide and halt.
///
/// `next_action` must be a *pure* function of the local state, so the
/// scheduler (and the exhaustive explorer) can inspect the pending
/// operation without executing it — exactly the ability the paper's
/// emulators need when they examine the next step of their virtual
/// processes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Perform this operation; the response will be delivered through
    /// [`Protocol::on_response`].
    Invoke(Op),
    /// Decide this value and halt. Deciding is irrevocable.
    Decide(Value),
}

impl Action {
    /// The pending operation, if this is an `Invoke`.
    pub fn op(&self) -> Option<&Op> {
        match self {
            Action::Invoke(op) => Some(op),
            Action::Decide(_) => None,
        }
    }

    /// The decision value, if this is a `Decide`.
    pub fn decision(&self) -> Option<&Value> {
        match self {
            Action::Decide(v) => Some(v),
            Action::Invoke(_) => None,
        }
    }
}

/// A wait-free shared-memory protocol as an explicit state machine.
///
/// Each process is a deterministic automaton over local states
/// [`Protocol::State`]. A *step* of process `p` consists of: reading
/// `next_action(state_p)`; if it is [`Action::Invoke`], applying the
/// operation atomically to shared memory and feeding the response to
/// [`Protocol::on_response`]; if it is [`Action::Decide`], recording
/// the decision and halting `p`. Because each step contains exactly one
/// shared-memory operation, any interleaving of steps is a legal run of
/// the asynchronous model of the paper (Section 2, the model of
/// Herlihy \[10\]).
///
/// Determinism matters: the exhaustive explorer assumes that a step of
/// `p` from a given global state has a unique successor.
///
/// The same state machine can be executed by the [`crate::Simulation`]
/// (model objects) and by [`crate::thread_runner`] (hardware atomics).
pub trait Protocol {
    /// The local state of one process.
    type State: Clone + std::fmt::Debug;

    /// Number of processes `n` this instance is configured for.
    fn processes(&self) -> usize;

    /// The shared-memory layout the protocol runs on.
    ///
    /// Called once per execution; object ids used in
    /// [`Protocol::next_action`] must refer to this layout.
    fn layout(&self) -> Layout;

    /// The initial local state of process `pid` with the given input.
    fn init(&self, pid: Pid, input: &Value) -> Self::State;

    /// The next action of a process in the given local state.
    ///
    /// Must be pure (no interior mutability observable across calls):
    /// callers may invoke it repeatedly, e.g. to *peek* at a pending
    /// operation.
    fn next_action(&self, state: &Self::State) -> Action;

    /// Advances the local state with the response of the operation
    /// previously returned by [`Protocol::next_action`].
    fn on_response(&self, state: &mut Self::State, resp: Value);

    /// An over-approximation of every shared-memory access and
    /// decision this process may perform from `state` onward, under
    /// any memory reachable from `mem` by steps of this protocol.
    ///
    /// Consumed by the explorer's dynamic partial-order reduction:
    /// see [`Footprint`] for the exact contract. The default is
    /// always sound: a process about to decide `v` touches no more
    /// shared memory and decides exactly `v` (deciding is terminal),
    /// while a process about to invoke an operation gets the
    /// universal footprint. Protocols override this to unlock real
    /// reduction — e.g. a process that will only ever read one
    /// monotone register and echo its value.
    fn footprint(&self, state: &Self::State, mem: &crate::SharedMemory) -> Footprint {
        let _ = mem;
        match self.next_action(state) {
            Action::Decide(v) => Footprint::empty().decide(DecideHint::Exactly(v)),
            Action::Invoke(_) => Footprint::top(),
        }
    }
}

/// Convenience extensions available on every [`Protocol`].
pub trait ProtocolExt: Protocol {
    /// The canonical election inputs: process `i` proposes its own
    /// identity `Value::Pid(i)` (the leader-election problem gives each
    /// process its own name as input).
    fn pid_inputs(&self) -> Vec<Value> {
        (0..self.processes()).map(Value::Pid).collect()
    }
}

impl<P: Protocol + ?Sized> ProtocolExt for P {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let d = Action::Decide(Value::Int(3));
        assert_eq!(d.decision(), Some(&Value::Int(3)));
        assert!(d.op().is_none());
        let i = Action::Invoke(Op::read(bso_objects::ObjectId(0)));
        assert!(i.op().is_some());
        assert!(i.decision().is_none());
    }

    #[test]
    fn footprint_builders() {
        let fp = Footprint::empty()
            .read(ObjectId(1))
            .write(ObjectId(3))
            .decide(DecideHint::Unknown);
        assert!(!fp.top);
        assert_eq!(fp.reads, 0b10);
        assert_eq!(fp.writes, 0b1000);
        assert_eq!(fp.decide, DecideHint::Unknown);
        // Ids past the bitmask degrade soundly to ⊤.
        assert!(Footprint::empty().read(ObjectId(64)).top);
        assert!(Footprint::empty().write(ObjectId(200)).top);
        assert!(Footprint::top().top);
        assert_eq!(Footprint::empty().decide, DecideHint::Never);
    }
}
