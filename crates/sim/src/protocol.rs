use bso_objects::{Layout, Op, Value};

/// A process identifier, `0 .. Protocol::processes()`.
pub type Pid = usize;

/// What a process wants to do next: perform one shared-memory operation
/// or decide and halt.
///
/// `next_action` must be a *pure* function of the local state, so the
/// scheduler (and the exhaustive explorer) can inspect the pending
/// operation without executing it — exactly the ability the paper's
/// emulators need when they examine the next step of their virtual
/// processes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Perform this operation; the response will be delivered through
    /// [`Protocol::on_response`].
    Invoke(Op),
    /// Decide this value and halt. Deciding is irrevocable.
    Decide(Value),
}

impl Action {
    /// The pending operation, if this is an `Invoke`.
    pub fn op(&self) -> Option<&Op> {
        match self {
            Action::Invoke(op) => Some(op),
            Action::Decide(_) => None,
        }
    }

    /// The decision value, if this is a `Decide`.
    pub fn decision(&self) -> Option<&Value> {
        match self {
            Action::Decide(v) => Some(v),
            Action::Invoke(_) => None,
        }
    }
}

/// A wait-free shared-memory protocol as an explicit state machine.
///
/// Each process is a deterministic automaton over local states
/// [`Protocol::State`]. A *step* of process `p` consists of: reading
/// `next_action(state_p)`; if it is [`Action::Invoke`], applying the
/// operation atomically to shared memory and feeding the response to
/// [`Protocol::on_response`]; if it is [`Action::Decide`], recording
/// the decision and halting `p`. Because each step contains exactly one
/// shared-memory operation, any interleaving of steps is a legal run of
/// the asynchronous model of the paper (Section 2, the model of
/// Herlihy \[10\]).
///
/// Determinism matters: the exhaustive explorer assumes that a step of
/// `p` from a given global state has a unique successor.
///
/// The same state machine can be executed by the [`crate::Simulation`]
/// (model objects) and by [`crate::thread_runner`] (hardware atomics).
pub trait Protocol {
    /// The local state of one process.
    type State: Clone + std::fmt::Debug;

    /// Number of processes `n` this instance is configured for.
    fn processes(&self) -> usize;

    /// The shared-memory layout the protocol runs on.
    ///
    /// Called once per execution; object ids used in
    /// [`Protocol::next_action`] must refer to this layout.
    fn layout(&self) -> Layout;

    /// The initial local state of process `pid` with the given input.
    fn init(&self, pid: Pid, input: &Value) -> Self::State;

    /// The next action of a process in the given local state.
    ///
    /// Must be pure (no interior mutability observable across calls):
    /// callers may invoke it repeatedly, e.g. to *peek* at a pending
    /// operation.
    fn next_action(&self, state: &Self::State) -> Action;

    /// Advances the local state with the response of the operation
    /// previously returned by [`Protocol::next_action`].
    fn on_response(&self, state: &mut Self::State, resp: Value);
}

/// Convenience extensions available on every [`Protocol`].
pub trait ProtocolExt: Protocol {
    /// The canonical election inputs: process `i` proposes its own
    /// identity `Value::Pid(i)` (the leader-election problem gives each
    /// process its own name as input).
    fn pid_inputs(&self) -> Vec<Value> {
        (0..self.processes()).map(Value::Pid).collect()
    }
}

impl<P: Protocol + ?Sized> ProtocolExt for P {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let d = Action::Decide(Value::Int(3));
        assert_eq!(d.decision(), Some(&Value::Int(3)));
        assert!(d.op().is_none());
        let i = Action::Invoke(Op::read(bso_objects::ObjectId(0)));
        assert!(i.op().is_some());
        assert!(i.decision().is_none());
    }
}
