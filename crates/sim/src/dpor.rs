//! Step-independence machinery for dynamic partial-order reduction.
//!
//! The engine's DPOR mode ([`crate::Explorer::dpor`]) prunes
//! interleavings of *commuting* steps. Everything it needs to decide
//! commutation lives here:
//!
//! * [`StepFp`] — a step (or step-sequence) footprint over the shared
//!   objects **plus two pseudo-objects** that make the specification
//!   checks part of the independence relation: the per-process
//!   `stepped` bits (a decision's validity reads the participant set;
//!   a process's first step writes its own bit) and the decision
//!   values themselves (summarized as a [`DecideHint`], since two
//!   decisions conflict exactly when they could disagree).
//! * [`immediate_fp`] — the *exact* footprint of the single pending
//!   step at a concrete state, used for sleep sets (one-shot
//!   commutation at this state needs no stability under memory
//!   evolution). Read/write classification is dynamic:
//!   [`would_mutate`] evaluates the operation against the current
//!   object state, so a CAS that cannot succeed is a read.
//! * [`future_fp`] — the protocol-asserted over-approximation of
//!   *everything* the process may do from here on
//!   ([`crate::Protocol::footprint`]), used for persistent sets, which
//!   must stay valid along runs that defer the process arbitrarily.
//! * [`smallest_persistent_set`] — a set `D` of enabled processes is
//!   persistent iff no conflict edge crosses its boundary (every
//!   transition is always enabled in this model, and a process's
//!   pending action is fixed while it does not step, so
//!   future-footprint disjointness implies the classical persistency
//!   condition). The valid minimal choices are exactly the connected
//!   components of the conflict graph over enabled processes; the
//!   smallest one is returned.
//!
//! All sets are `u64` bitmasks over pids — the explorer already caps
//! `n ≤ 64`. See `DESIGN.md` §3.11 for the soundness argument and how
//! this composes with Zobrist dedup, symmetry, crashes, and
//! checkpoint/resume.

use bso_objects::spec::ObjectState;
use bso_objects::{OpKind, Value};

use crate::explore::{StateKey, TaskSpec};
use crate::protocol::{Action, DecideHint};
use crate::{Pid, Protocol};

/// The all-ones mask over `n` pids.
pub(crate) fn ones(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

/// Moves bit `p` to bit `map[p]` for every set bit.
pub(crate) fn permute_mask(mask: u64, map: &[Pid]) -> u64 {
    let mut out = 0u64;
    let mut m = mask;
    while m != 0 {
        let p = m.trailing_zeros() as usize;
        m &= m - 1;
        out |= 1 << map[p];
    }
    out
}

/// Inverse of [`permute_mask`]: bit `map[p]` moves to bit `p`.
pub(crate) fn permute_mask_inv(mask: u64, map: &[Pid]) -> u64 {
    let mut out = 0u64;
    for (p, &q) in map.iter().enumerate() {
        if mask >> q & 1 == 1 {
            out |= 1 << p;
        }
    }
    out
}

/// A footprint of one step (immediate) or of a process's whole future
/// (from [`crate::Protocol::footprint`]), in conflict-checkable form.
#[derive(Clone, Debug)]
pub(crate) struct StepFp {
    /// Conflicts with everything.
    pub(crate) top: bool,
    /// Objects read (bit `i` ⇒ `ObjectId(i)`).
    pub(crate) reads: u64,
    /// Objects mutated.
    pub(crate) writes: u64,
    /// `stepped`-mask pseudo-object bits read (a decision's validity
    /// check reads the participant bits named here).
    pub(crate) step_reads: u64,
    /// `stepped`-mask pseudo-object bits written (a process's first
    /// step sets its own bit).
    pub(crate) step_writes: u64,
    /// What may be decided.
    pub(crate) decide: DecideHint,
}

impl StepFp {
    /// The footprint of a process that does nothing (disabled slots).
    pub(crate) fn inert() -> StepFp {
        StepFp {
            top: false,
            reads: 0,
            writes: 0,
            step_reads: 0,
            step_writes: 0,
            decide: DecideHint::Never,
        }
    }
}

/// Whether applying `kind` (by `pid`) to `obj` changes the object's
/// state. Exact for every well-typed in-domain operation; errors
/// (which surface as deterministic `IllegalOperation` violations
/// regardless of interleaving) are conservatively "mutations".
pub(crate) fn would_mutate(obj: &ObjectState, pid: Pid, kind: &OpKind) -> bool {
    match (obj, kind) {
        (ObjectState::Register { .. }, OpKind::Read) => false,
        (ObjectState::Register { val }, OpKind::Write(v) | OpKind::Swap(v)) => val != v,
        (ObjectState::CasK { .. }, OpKind::Read) => false,
        (ObjectState::CasK { val, k }, OpKind::Cas { expect, new }) => {
            match (expect.as_sym(), new.as_sym()) {
                (Some(e), Some(nw)) if e.in_domain(*k) && nw.in_domain(*k) => e == *val && e != nw,
                _ => true, // domain violation: deterministic error
            }
        }
        (ObjectState::CasReg { .. }, OpKind::Read) => false,
        (ObjectState::CasReg { val }, OpKind::Cas { expect, new }) => {
            val == expect && expect != new
        }
        (ObjectState::TestAndSet { .. }, OpKind::Read) => false,
        (ObjectState::TestAndSet { set }, OpKind::TestAndSet) => !*set,
        (ObjectState::TestAndSet { set }, OpKind::Reset) => *set,
        (ObjectState::FetchAdd { .. }, OpKind::Read) => false,
        (ObjectState::FetchAdd { .. }, OpKind::FetchAdd(d)) => *d != 0,
        (ObjectState::Snapshot { .. }, OpKind::SnapshotScan | OpKind::Read) => false,
        (ObjectState::Snapshot { slots }, OpKind::SnapshotUpdate(v)) => slots.get(pid) != Some(v),
        (ObjectState::Sticky { .. }, OpKind::Read) => false,
        (ObjectState::Sticky { val }, OpKind::StickyWrite(v)) => val.is_nil() && !v.is_nil(),
        (ObjectState::Queue { .. }, OpKind::Read) => false,
        (ObjectState::Queue { .. }, OpKind::Enqueue(_)) => true,
        (ObjectState::Queue { items }, OpKind::Dequeue) => !items.is_empty(),
        (ObjectState::RmwK { .. }, OpKind::Read) => false,
        (ObjectState::RmwK { val, functions, .. }, OpKind::Rmw { func }) => functions
            .get(*func)
            .and_then(|t| t.get(val.code() as usize))
            .is_none_or(|&next| next != val.code()),
        _ => true, // type mismatch: deterministic error
    }
}

/// The `stepped`-mask bits a decision of `v` reads: the not-yet-
/// stepped pids whose later first step could flip the decision's
/// validity verdict. `stepped` must already include the decider's own
/// bit. Bits that are already stepped — and decisions that are
/// invalid no matter who else steps — read nothing that any
/// interleaving can change, so they contribute no conflict.
pub(crate) fn spec_relevant_unstepped(spec: &TaskSpec, v: &Value, stepped: u64, n: usize) -> u64 {
    match spec {
        TaskSpec::None => 0,
        TaskSpec::Election => match v.as_pid() {
            Some(w) if w < n && stepped >> w & 1 == 0 => 1 << w,
            // A stepped winner is valid in every order; a non-pid or
            // out-of-range value is invalid in every order.
            _ => 0,
        },
        TaskSpec::Consensus(inputs) | TaskSpec::SetConsensus(inputs, _) => {
            if (0..n).any(|p| stepped >> p & 1 == 1 && inputs.get(p) == Some(v)) {
                return 0; // valid in every order
            }
            (0..n)
                .filter(|&p| stepped >> p & 1 == 0 && inputs.get(p) == Some(v))
                .fold(0, |m, p| m | 1 << p)
        }
    }
}

/// The exact footprint of `pid`'s single pending step at `state`.
pub(crate) fn immediate_fp<P: Protocol>(
    proto: &P,
    state: &StateKey<P::State>,
    spec: &TaskSpec,
    pid: Pid,
) -> StepFp {
    let n = state.states.len();
    let first_step = if state.stepped >> pid & 1 == 0 {
        1u64 << pid
    } else {
        0
    };
    match proto.next_action(&state.states[pid]) {
        Action::Invoke(op) => {
            let mut fp = StepFp::inert();
            fp.step_writes = first_step;
            if op.obj.0 >= 64 {
                fp.top = true; // can't name the object in the bitmask
                return fp;
            }
            fp.reads = 1 << op.obj.0;
            match state.mem.object(op.obj) {
                Some(obj) => {
                    if would_mutate(obj, pid, &op.kind) {
                        fp.writes = fp.reads;
                    }
                }
                None => fp.top = true, // unknown object: be conservative
            }
            fp
        }
        Action::Decide(v) => {
            let step_reads = spec_relevant_unstepped(spec, &v, state.stepped | 1 << pid, n);
            StepFp {
                top: false,
                reads: 0,
                writes: 0,
                step_reads,
                step_writes: first_step,
                decide: DecideHint::Exactly(v),
            }
        }
    }
}

/// The protocol-asserted footprint of everything `pid` may do from
/// `state` onward (see [`crate::Protocol::footprint`]), widened with
/// the pseudo-object accesses the engine knows about: the first-step
/// write of `pid`'s own `stepped` bit and the participant bits a
/// future decision may read.
pub(crate) fn future_fp<P: Protocol>(
    proto: &P,
    state: &StateKey<P::State>,
    spec: &TaskSpec,
    pid: Pid,
) -> StepFp {
    let n = state.states.len();
    let fp = proto.footprint(&state.states[pid], &state.mem);
    let first_step = if state.stepped >> pid & 1 == 0 {
        1u64 << pid
    } else {
        0
    };
    let step_reads = match &fp.decide {
        DecideHint::Never => 0,
        // The decision value is unknown, so any unstepped peer's first
        // step could matter (its own bit is set by the time it decides).
        DecideHint::Unknown => ones(n) & !(state.stepped | 1 << pid),
        DecideHint::Exactly(v) => spec_relevant_unstepped(spec, v, state.stepped | 1 << pid, n),
    };
    StepFp {
        top: fp.top,
        reads: fp.reads,
        writes: fp.writes,
        step_reads,
        step_writes: first_step,
        decide: fp.decide,
    }
}

/// Whether two footprints conflict (fail to commute).
pub(crate) fn conflict(a: &StepFp, b: &StepFp) -> bool {
    if a.top || b.top {
        return true;
    }
    if a.writes & (b.reads | b.writes) != 0 || b.writes & (a.reads | a.writes) != 0 {
        return true;
    }
    if a.step_writes & b.step_reads != 0 || b.step_writes & a.step_reads != 0 {
        return true;
    }
    // Two possible decisions conflict unless they provably agree (the
    // agreement check of one reads the other's decision slot); a side
    // that never decides neither reads nor writes any decision slot.
    match (&a.decide, &b.decide) {
        (DecideHint::Never, _) | (_, DecideHint::Never) => false,
        (DecideHint::Exactly(x), DecideHint::Exactly(y)) => x != y,
        _ => true,
    }
}

/// The smallest persistent set of `enabled` pids, given each pid's
/// *future* footprint in `futs[pid]` (slots of disabled pids are
/// ignored).
///
/// A set `D ⊆ enabled` is persistent here iff no conflict edge leaves
/// it, so the inclusion-minimal candidates are exactly the connected
/// components of the conflict graph; ties between equally small
/// components resolve to the one containing the smallest pid.
pub(crate) fn smallest_persistent_set(enabled: u64, futs: &[StepFp]) -> u64 {
    if enabled == 0 {
        return 0;
    }
    let pids: Vec<usize> = (0..futs.len()).filter(|&p| enabled >> p & 1 == 1).collect();
    let mut adj = vec![0u64; futs.len()];
    for (i, &p) in pids.iter().enumerate() {
        for &q in &pids[i + 1..] {
            if conflict(&futs[p], &futs[q]) {
                adj[p] |= 1 << q;
                adj[q] |= 1 << p;
            }
        }
    }
    let mut best = 0u64;
    let mut seen = 0u64;
    for &p in &pids {
        if seen >> p & 1 == 1 {
            continue;
        }
        let mut comp = 1u64 << p;
        let mut frontier = comp;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let q = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= adj[q];
            }
            frontier = next & !comp;
            comp |= next;
        }
        seen |= comp;
        if best == 0 || comp.count_ones() < best.count_ones() {
            best = comp;
        }
        if best.count_ones() == 1 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Sym, Value};

    fn reg(v: i64) -> ObjectState {
        ObjectState::Register { val: Value::Int(v) }
    }

    #[test]
    fn would_mutate_is_exact_per_object() {
        // Registers: reads never, writes iff the value changes.
        assert!(!would_mutate(&reg(1), 0, &OpKind::Read));
        assert!(would_mutate(&reg(1), 0, &OpKind::Write(Value::Int(2))));
        assert!(!would_mutate(&reg(1), 0, &OpKind::Write(Value::Int(1))));
        assert!(!would_mutate(&reg(1), 0, &OpKind::Swap(Value::Int(1))));
        // compare&swap-(k): succeeds-and-changes only from the expected
        // value; a failing or no-op CAS is a read.
        let cas = ObjectState::CasK {
            val: Sym::BOTTOM,
            k: 4,
        };
        let hit = OpKind::Cas {
            expect: Value::Sym(Sym::BOTTOM),
            new: Value::Sym(Sym::new(1)),
        };
        let miss = OpKind::Cas {
            expect: Value::Sym(Sym::new(2)),
            new: Value::Sym(Sym::new(1)),
        };
        assert!(would_mutate(&cas, 0, &hit));
        assert!(!would_mutate(&cas, 0, &miss));
        // Out-of-domain operands error deterministically: conservative.
        let bad = OpKind::Cas {
            expect: Value::Int(7),
            new: Value::Sym(Sym::new(1)),
        };
        assert!(would_mutate(&cas, 0, &bad));
        // test&set only flips an unset bit; Reset only a set one.
        let unset = ObjectState::TestAndSet { set: false };
        let set = ObjectState::TestAndSet { set: true };
        assert!(would_mutate(&unset, 0, &OpKind::TestAndSet));
        assert!(!would_mutate(&set, 0, &OpKind::TestAndSet));
        assert!(!would_mutate(&unset, 0, &OpKind::Reset));
        // fetch&add of 0 is a read.
        let fa = ObjectState::FetchAdd { val: 3 };
        assert!(!would_mutate(&fa, 0, &OpKind::FetchAdd(0)));
        assert!(would_mutate(&fa, 0, &OpKind::FetchAdd(1)));
        // Snapshot updates mutate only when the slot changes; scans never.
        let snap = ObjectState::Snapshot {
            slots: vec![Value::Nil, Value::Int(5)],
        };
        assert!(!would_mutate(&snap, 0, &OpKind::SnapshotScan));
        assert!(!would_mutate(
            &snap,
            1,
            &OpKind::SnapshotUpdate(Value::Int(5))
        ));
        assert!(would_mutate(
            &snap,
            1,
            &OpKind::SnapshotUpdate(Value::Int(6))
        ));
        // An out-of-range slot errors: conservative.
        assert!(would_mutate(
            &snap,
            9,
            &OpKind::SnapshotUpdate(Value::Int(5))
        ));
        // Sticky writes only land once.
        let sticky_unset = ObjectState::Sticky { val: Value::Nil };
        let sticky_set = ObjectState::Sticky { val: Value::Int(1) };
        assert!(would_mutate(
            &sticky_unset,
            0,
            &OpKind::StickyWrite(Value::Int(2))
        ));
        assert!(!would_mutate(
            &sticky_set,
            0,
            &OpKind::StickyWrite(Value::Int(2))
        ));
        // Queue: enqueue always, dequeue only when nonempty.
        let empty = ObjectState::Queue { items: vec![] };
        let full = ObjectState::Queue {
            items: vec![Value::Int(1)],
        };
        assert!(would_mutate(&empty, 0, &OpKind::Enqueue(Value::Int(1))));
        assert!(!would_mutate(&empty, 0, &OpKind::Dequeue));
        assert!(would_mutate(&full, 0, &OpKind::Dequeue));
        // Type mismatch: conservative.
        assert!(would_mutate(&reg(1), 0, &OpKind::TestAndSet));
    }

    fn fp(reads: u64, writes: u64) -> StepFp {
        StepFp {
            reads,
            writes,
            ..StepFp::inert()
        }
    }

    #[test]
    fn conflict_rules() {
        // Read/read commutes; write against anything on the same
        // object conflicts.
        assert!(!conflict(&fp(0b1, 0), &fp(0b1, 0)));
        assert!(conflict(&fp(0b1, 0), &fp(0b1, 0b1)));
        assert!(conflict(&fp(0b1, 0b1), &fp(0b1, 0b1)));
        assert!(!conflict(&fp(0b1, 0b1), &fp(0b10, 0b10)));
        // ⊤ conflicts with everything, even the inert footprint.
        let top = StepFp {
            top: true,
            ..StepFp::inert()
        };
        assert!(conflict(&top, &StepFp::inert()));
        // Stepped-mask pseudo-object: a first step writes bit p, a
        // decision validity check reads it.
        let first_step = StepFp {
            step_writes: 0b10,
            ..StepFp::inert()
        };
        let decide_needs_p1 = StepFp {
            step_reads: 0b10,
            decide: DecideHint::Exactly(Value::Pid(1)),
            ..StepFp::inert()
        };
        assert!(conflict(&first_step, &decide_needs_p1));
        // Two equal pinned decisions commute; differing or unknown
        // ones do not.
        let d = |v: i64| StepFp {
            decide: DecideHint::Exactly(Value::Int(v)),
            ..StepFp::inert()
        };
        assert!(!conflict(&d(1), &d(1)));
        assert!(conflict(&d(1), &d(2)));
        let unk = StepFp {
            decide: DecideHint::Unknown,
            ..StepFp::inert()
        };
        assert!(conflict(&d(1), &unk));
        assert!(!conflict(&d(1), &StepFp::inert()));
    }

    #[test]
    fn spec_reads_are_minimal() {
        // Election: only the elected pid's bit, only while unstepped.
        let v = Value::Pid(2);
        assert_eq!(
            spec_relevant_unstepped(&TaskSpec::Election, &v, 0b001, 3),
            0b100
        );
        assert_eq!(
            spec_relevant_unstepped(&TaskSpec::Election, &v, 0b101, 3),
            0
        );
        // Invalid in every order: no reads.
        assert_eq!(
            spec_relevant_unstepped(&TaskSpec::Election, &Value::Int(9), 0b001, 3),
            0
        );
        assert_eq!(
            spec_relevant_unstepped(&TaskSpec::Election, &Value::Pid(7), 0b001, 3),
            0
        );
        // Consensus: once any stepped process proposed v, validity is
        // settled; otherwise every unstepped proposer of v matters.
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(1)];
        let spec = TaskSpec::Consensus(inputs);
        assert_eq!(spec_relevant_unstepped(&spec, &Value::Int(1), 0b001, 3), 0);
        assert_eq!(
            spec_relevant_unstepped(&spec, &Value::Int(1), 0b010, 3),
            0b101
        );
        assert_eq!(spec_relevant_unstepped(&spec, &Value::Int(9), 0b010, 3), 0);
    }

    #[test]
    fn persistent_set_is_smallest_conflict_component() {
        // p0 ↔ p1 conflict on object 0; p2, p3 each read distinct
        // objects: three components {0,1}, {2}, {3} — the smallest
        // with the lowest pid wins.
        let futs = vec![fp(0b1, 0b1), fp(0b1, 0b1), fp(0b10, 0), fp(0b100, 0)];
        assert_eq!(smallest_persistent_set(0b1111, &futs), 0b100);
        // With only the conflicting pair enabled, the component is both.
        assert_eq!(smallest_persistent_set(0b0011, &futs), 0b0011);
        // Disabled pids don't join components.
        assert_eq!(smallest_persistent_set(0b0001, &futs), 0b0001);
        assert_eq!(smallest_persistent_set(0, &futs), 0);
        // A chain 0-1-2 (0w1r on obj0, 1w obj1, 2r obj1) is one
        // component even though 0 and 2 are pairwise independent.
        let chain = vec![fp(0b1, 0b1), fp(0b11, 0b10), fp(0b10, 0)];
        assert_eq!(smallest_persistent_set(0b111, &chain), 0b111);
    }

    #[test]
    fn mask_permutation_roundtrips() {
        let map = vec![2usize, 0, 1];
        assert_eq!(permute_mask(0b011, &map), 0b101);
        assert_eq!(permute_mask_inv(0b101, &map), 0b011);
        for mask in 0..8u64 {
            assert_eq!(permute_mask_inv(permute_mask(mask, &map), &map), mask);
        }
        assert_eq!(ones(3), 0b111);
        assert_eq!(ones(64), !0);
    }
}
