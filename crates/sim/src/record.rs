//! Recording of concurrent histories from the hardware backend.
//!
//! A [`RecordingMemory`] wraps any [`Memory`] and timestamps every
//! operation's invocation and response with a global atomic clock. The
//! resulting log is a *concurrent history* in the sense of Herlihy &
//! Wing: operation `A` really-precedes `B` iff `A.responded_at <
//! B.invoked_at`. The [`crate::linearizability`] checker validates such
//! logs against the sequential object specifications.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bso_objects::atomic::Memory;
use bso_objects::{ObjectError, Op, Value};

use crate::Pid;

/// One completed operation with real-time interval endpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordedOp {
    /// The invoking process.
    pub pid: Pid,
    /// The operation.
    pub op: Op,
    /// The response it received.
    pub resp: Value,
    /// Clock tick taken just before the operation was applied.
    pub invoked_at: u64,
    /// Clock tick taken just after the response was obtained.
    pub responded_at: u64,
}

impl RecordedOp {
    /// Whether this operation completed strictly before `other`
    /// started (the real-time precedence a linearization must
    /// respect).
    pub fn precedes(&self, other: &RecordedOp) -> bool {
        self.responded_at < other.invoked_at
    }
}

/// A [`Memory`] adapter that records every operation.
///
/// The clock tick and the operation are not a single atomic action, so
/// recorded intervals strictly *contain* each linearization point —
/// which is exactly what makes the recorded precedence order sound
/// (never ordering two ops that were in fact concurrent the wrong way,
/// only possibly treating sequential ops as concurrent, which weakens
/// but never unsoundly strengthens the checker's obligations... and a
/// weaker obligation can only let through histories that are still
/// linearizable against some real-time order consistent with
/// observation).
pub struct RecordingMemory<'m, M: Memory + ?Sized> {
    inner: &'m M,
    clock: AtomicU64,
    log: Mutex<Vec<RecordedOp>>,
}

impl<'m, M: Memory + ?Sized> RecordingMemory<'m, M> {
    /// Wraps `inner`, starting the clock at zero.
    pub fn new(inner: &'m M) -> RecordingMemory<'m, M> {
        RecordingMemory {
            inner,
            clock: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Consumes the recorder and returns the log, sorted by response
    /// time.
    pub fn into_log(self) -> Vec<RecordedOp> {
        let mut log = self.log.into_inner().unwrap();
        log.sort_by_key(|r| r.responded_at);
        log
    }

    /// The number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.log.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M: Memory + ?Sized> Memory for RecordingMemory<'_, M> {
    fn apply(&self, pid: usize, op: &Op) -> Result<Value, ObjectError> {
        let invoked_at = self.clock.fetch_add(1, Ordering::SeqCst);
        let resp = self.inner.apply(pid, op)?;
        let responded_at = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push(RecordedOp {
            pid,
            op: op.clone(),
            resp: resp.clone(),
            invoked_at,
            responded_at,
        });
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::atomic::AtomicMemory;
    use bso_objects::{Layout, ObjectInit};

    #[test]
    fn records_intervals_and_responses() {
        let mut layout = Layout::new();
        let r = layout.push(ObjectInit::Register(Value::Nil));
        let mem = AtomicMemory::new(&layout);
        let rec = RecordingMemory::new(&mem);
        rec.apply(0, &Op::write(r, Value::Int(1))).unwrap();
        let v = rec.apply(1, &Op::read(r)).unwrap();
        assert_eq!(v, Value::Int(1));
        assert_eq!(rec.len(), 2);
        let log = rec.into_log();
        assert!(log[0].precedes(&log[1]));
        assert_eq!(log[1].resp, Value::Int(1));
        assert!(log[0].invoked_at < log[0].responded_at);
    }

    #[test]
    fn errors_are_not_recorded() {
        let mut layout = Layout::new();
        let r = layout.push(ObjectInit::Register(Value::Nil));
        let mem = AtomicMemory::new(&layout);
        let rec = RecordingMemory::new(&mem);
        assert!(rec
            .apply(0, &Op::new(r, bso_objects::OpKind::TestAndSet))
            .is_err());
        assert!(rec.is_empty());
    }
}
