use std::fmt;

use bso_objects::{Op, Value};

use crate::Pid;

/// What happened in one simulation step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// The process applied `op` and received `resp`.
    Applied {
        /// The operation performed.
        op: Op,
        /// The (linearized) response.
        resp: Value,
    },
    /// The process decided this value and halted.
    Decided(Value),
    /// The process was crashed by the adversary (takes no further
    /// steps).
    Crashed,
}

/// One step of a run: which process moved and what it did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global sequence number (position in the run).
    pub seq: usize,
    /// The process that moved.
    pub pid: Pid,
    /// What it did.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Applied { op, resp } => {
                write!(f, "#{:<4} p{}: {} ⇒ {}", self.seq, self.pid, op, resp)
            }
            EventKind::Decided(v) => write!(f, "#{:<4} p{}: decide {}", self.seq, self.pid, v),
            EventKind::Crashed => write!(f, "#{:<4} p{}: ✗ crash", self.seq, self.pid),
        }
    }
}

/// A recorded run: the totally ordered sequence of steps.
///
/// Because the model applies one shared operation per step, the trace
/// *is* a linearization of the run's concurrent history.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event, assigning the next sequence number.
    pub fn push(&mut self, pid: Pid, kind: EventKind) {
        let seq = self.events.len();
        self.events.push(Event { seq, pid, kind });
    }

    /// The recorded events, in run order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The events of a single process, in run order.
    pub fn by_pid(&self, pid: Pid) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// The number of *steps* (shared ops + decision) process `pid`
    /// took.
    pub fn steps_of(&self, pid: Pid) -> usize {
        self.by_pid(pid).count()
    }

    /// The set of processes that took at least one step — the
    /// *participants* of the run. Validity properties quantify over
    /// these.
    pub fn participants(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self.events.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// The scheduling script of this trace (pid per step), which can be
    /// replayed with [`crate::scheduler::Scripted`].
    pub fn schedule(&self) -> Vec<Pid> {
        self.events.iter().map(|e| e.pid).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::ObjectId;

    #[test]
    fn sequence_numbers_and_projections() {
        let mut t = Trace::new();
        t.push(
            1,
            EventKind::Applied {
                op: Op::read(ObjectId(0)),
                resp: Value::Nil,
            },
        );
        t.push(0, EventKind::Decided(Value::Pid(0)));
        t.push(1, EventKind::Decided(Value::Pid(0)));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[2].seq, 2);
        assert_eq!(t.steps_of(1), 2);
        assert_eq!(t.participants(), vec![0, 1]);
        assert_eq!(t.schedule(), vec![1, 0, 1]);
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trace::new();
        t.push(
            0,
            EventKind::Applied {
                op: Op::read(ObjectId(2)),
                resp: Value::Int(5),
            },
        );
        t.push(0, EventKind::Crashed);
        let s = t.to_string();
        assert!(s.contains("p0: o2.read ⇒ 5"), "got: {s}");
        assert!(s.contains("✗ crash"));
    }
}
