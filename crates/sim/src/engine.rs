//! The parallel sharded state-space exploration engine.
//!
//! This module is the machinery behind [`crate::explore`] and its
//! parallel/symmetric variants; the public API and the semantics of a
//! verdict live in [`crate::explore`]. The engine replaces the seed's
//! recursive DFS with a *dataflow* formulation that parallelizes and
//! never recurses:
//!
//! * Every distinct (canonicalized) global state becomes a [`Node`] in
//!   a sharded visited table. Workers pull *expand* jobs from
//!   work-stealing deques: expanding a node generates its successors,
//!   deduplicates them against the table, and either combines an
//!   already-finished child's step bounds immediately or registers a
//!   *waiter* on the child.
//! * The longest-path DP (`max_steps_per_proc`) flows **backwards**:
//!   when a node's last obligation resolves (its own expansion plus
//!   one per awaited child), it fires its waiters, which may complete
//!   their parents in turn — a chain processed iteratively, so stack
//!   depth never grows with state-graph depth.
//! * **Cycle detection by quiescence**: in an acyclic graph every node
//!   eventually completes. If all queues drain with no violation, no
//!   budget exhaustion, and the root still incomplete, every
//!   incomplete node is waiting on an incomplete child — so the wait
//!   digraph has minimum out-degree 1 and therefore contains a cycle,
//!   which is exactly a schedule on which some process runs forever:
//!   the protocol is not wait-free. Conversely a cycle keeps its nodes
//!   incomplete forever, so quiescence-with-incomplete-root occurs
//!   *iff* the graph is cyclic — the check is sound and complete.
//! * Counterexample schedules come from first-discovery parent links:
//!   each node remembers the concrete edge that created it, so the
//!   path to any node is a genuine executable schedule even under
//!   fingerprinting (a fingerprint collision can merge states and skip
//!   work, but never fabricates an edge) and under symmetry reduction
//!   (nodes expand a concrete *representative* of their orbit, never
//!   an abstract canonical form).
//!
//! # Crash faults, resource guards, panic isolation
//!
//! * With [`ExploreConfig::faults`] `> 0` each enabled process also
//!   gets a **crash successor**: an edge that only sets the process's
//!   crashed bit (memory, locals, and decisions are untouched).
//!   Crashed processes are disabled forever, so the adversary explores
//!   every placement of up to `f` crashes. Crash edges contribute no
//!   steps to the DP and cannot create cycles (the crashed mask grows
//!   strictly along them), so a `Verified`/`NotWaitFree` verdict is
//!   never *caused* by a crash — but [`ViolationKind::StepBound`]
//!   counterexamples may require one (a process spinning on a crashed
//!   peer), and a node's path records its crash edges so the schedule
//!   replays deterministically.
//! * A wall-clock **deadline** or approximate **memory budget**
//!   interrupts the run: the queues are drained into a *frontier* of
//!   unexpanded states, each identified by the schedule (and crashes)
//!   reaching it, from which a later run can resume. Before declaring
//!   the run merely interrupted, a least-fixpoint pass checks whether
//!   some already-complete region proves a cycle *now* (see
//!   [`Shared::cycle_violation`]).
//! * Worker expansion runs under `catch_unwind`: a panicking protocol
//!   implementation surfaces as a [`ViolationKind::Panic`] violation
//!   carrying the panic message and the schedule to the state whose
//!   expansion panicked, instead of poisoning the pool or aborting the
//!   process. All engine locks tolerate poisoning (the engine holds no
//!   lock across protocol calls, so a panic cannot leave a guarded
//!   invariant broken).
//!
//! Under symmetry reduction a node's identity is its orbit-minimal
//! canonical form while its expansion uses the first concrete member
//! discovered (the *representative*). The DP vector of a node is kept
//! in representative coordinates; each dedup edge therefore carries a
//! pid-coordinate translation composed from the two permutations
//! involved, applied when the child's bounds are combined upward.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::{Duration, Instant};

use bso_objects::spec::ObjectState;
use bso_telemetry::{Counter, Gauge, Histogram, TraceArg, TraceWorker};

use crate::dpor::{self, StepFp};
use crate::explore::{
    check_decision, CrashEvent, DedupMode, ExploreConfig, ExploreOutcome, ExploreStats,
    FrontierEntry, InterruptReason, Report, Seeds, StateKey, Violation, ViolationKind,
};
use crate::fingerprint::{component_hash, FxBuildHasher};
use crate::symmetry::Canonicalizer;
use crate::{Action, Pid, Protocol};

/// Number of visited-table shards (a power of two; selected by the top
/// bits of the key fingerprint).
const SHARDS: usize = 64;

/// How long an idle worker sleeps before re-polling, as a backstop
/// against any lost wakeup.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Locks a mutex, tolerating poisoning: engine invariants never span a
/// protocol call while a lock is held, so a guard abandoned by a
/// panicking worker protects data that is still consistent.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a generated state is keyed in the visited table.
///
/// Every shard map is keyed by the state's 64-bit fingerprint, which
/// is computed exactly once per generated successor (it also selects
/// the shard) — the map itself only ever re-hashes one word. The two
/// modes differ in what a map *entry* holds: exact mode keeps the full
/// states alongside their nodes and resolves fingerprint collisions by
/// equality, fingerprint mode trusts the fingerprint and stores the
/// node alone.
pub(crate) trait KeyMode<S: Hash> {
    /// Everything stored under one fingerprint.
    type Entry;
    /// Finds `state` within an entry.
    fn find<'a>(entry: &'a Self::Entry, state: &StateKey<S>) -> Option<&'a Arc<Node>>;
    /// Records `state → node` under `fp`.
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        state: &StateKey<S>,
        node: Arc<Node>,
    );
    /// Visits every node in an entry.
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>));
}

/// Full-state keys: exact deduplication, no collisions possible.
pub(crate) struct ExactKeys;

impl<S: Hash + Eq + Clone> KeyMode<S> for ExactKeys {
    /// Almost always a single element; colliding states chain.
    type Entry = Vec<(StateKey<S>, Arc<Node>)>;
    fn find<'a>(entry: &'a Self::Entry, state: &StateKey<S>) -> Option<&'a Arc<Node>> {
        entry
            .iter()
            .find_map(|(k, node)| (k == state).then_some(node))
    }
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        state: &StateKey<S>,
        node: Arc<Node>,
    ) {
        map.entry(fp).or_default().push((state.clone(), node));
    }
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>)) {
        for (_, node) in entry {
            f(node);
        }
    }
}

/// 64-bit fingerprint keys: no per-state clone is retained, at the
/// price of a ≈ `states²/2⁶⁵` probability of a collision silently
/// merging two distinct states (see `DESIGN.md` §3.2).
pub(crate) struct FingerprintKeys;

impl<S: Hash> KeyMode<S> for FingerprintKeys {
    type Entry = Arc<Node>;
    fn find<'a>(entry: &'a Self::Entry, _state: &StateKey<S>) -> Option<&'a Arc<Node>> {
        Some(entry)
    }
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        _state: &StateKey<S>,
        node: Arc<Node>,
    ) {
        map.insert(fp, node);
    }
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>)) {
        f(entry);
    }
}

/// The concrete edge that discovered a node.
#[derive(Clone, Copy)]
enum Edge {
    /// The parent stepped `pid`.
    Step(Pid),
    /// `pid` crashed (no step taken; only the crashed mask changed).
    Crash(Pid),
}

/// What `record_successor` found in the visited table.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Recorded {
    /// A fresh state: node created and enqueued.
    New,
    /// Dedup hit on a completed node.
    HitDone,
    /// Dedup hit on a node whose subtree is still in progress — a
    /// back/cross edge into open work, relevant to the cycle proviso.
    HitIncomplete,
}

/// One distinct (canonicalized) global state.
pub(crate) struct Node {
    /// Steps from the initial state along the first-discovery path
    /// (including a resume prefix, excluding crash edges).
    depth: u32,
    /// The edge that discovered this node from the parent's
    /// representative. `None` for a root.
    parent: Option<(Arc<Node>, Edge)>,
    /// For roots seeded from a resumed checkpoint: the already-
    /// executed path from the true initial state to this seed.
    prefix: Option<Arc<FrontierEntry>>,
    /// Under symmetry reduction: the permutation mapping this node's
    /// representative coordinates to canonical coordinates (`None` =
    /// identity, always so without reduction).
    rep_perm: Option<Box<[Pid]>>,
    /// DPOR sleep set, in this node's representative coordinates: pids
    /// whose step from here is already covered by an explored sibling
    /// order. Shrinks monotonically (by intersection) as further edges
    /// reach this node; a strict shrink re-enqueues a supplementary
    /// expansion for the woken pids. Always 0 outside DPOR mode.
    sleep: AtomicU64,
    /// Context switches along the discovery path (meaningful only
    /// under a context bound).
    switches: u32,
    /// The last process stepped along the discovery path.
    last_pid: Option<Pid>,
    /// Outstanding obligations before this node's DP value is final:
    /// 1 for the node's own expansion plus 1 per awaited child.
    pending: AtomicU32,
    inner: Mutex<NodeInner>,
}

struct NodeInner {
    /// DP accumulator: max further steps per process, in this node's
    /// *representative* coordinates.
    best: Vec<u32>,
    /// Parents awaiting this node's completion.
    waiters: Vec<Waiter>,
    /// Whether `best` is final.
    done: bool,
}

/// A parent's registration on an in-progress child.
struct Waiter {
    parent: Arc<Node>,
    /// The pid the parent stepped to reach the child; `None` for a
    /// crash edge (which contributes no step to the DP).
    step_pid: Option<Pid>,
    /// Coordinate translation: the parent-side bound of process `p`
    /// is the child's bound of process `map[p]` (`None` = identity).
    map: Option<Box<[Pid]>>,
}

/// The hash of the bookkeeping ("meta") component of a state: the
/// stepped mask, the crashed mask, and the per-process step counters.
/// These always change together with at most one other component, so
/// folding them into a single Zobrist component keeps the incremental
/// fingerprint update O(1).
fn meta_hash<S>(state: &StateKey<S>) -> u64 {
    component_hash(0, &(state.stepped, state.crashed, &state.steps))
}

/// The Zobrist fingerprint of a full state: the XOR of per-component
/// salted hashes (see [`component_hash`]). Component indices: 0 is
/// the meta component ([`meta_hash`]), `1..=n` the local states,
/// `n+1..=2n` the decisions, `2n+1..` the objects. One process step
/// changes at most three components, so [`Shared::apply_step`]
/// maintains the fingerprint in O(1) instead of re-walking the state
/// per generated successor.
fn zobrist<S: Hash>(state: &StateKey<S>) -> u64 {
    let n = state.states.len();
    let mut fp = meta_hash(state);
    for (i, s) in state.states.iter().enumerate() {
        fp ^= component_hash(1 + i, s);
    }
    for (i, d) in state.decisions.iter().enumerate() {
        fp ^= component_hash(1 + n + i, d);
    }
    for (j, o) in state.mem.objects().iter().enumerate() {
        fp ^= component_hash(1 + 2 * n + j, o);
    }
    fp
}

/// Live telemetry handles for the hot loop, resolved once per run
/// from [`ExploreConfig::telemetry`]. `enabled` gates the clock reads
/// (and the histogram branches) so a disabled registry costs one
/// predictable branch per expansion.
struct EngineTel {
    enabled: bool,
    /// Depth (steps from the root) of each expanded node.
    frontier_depth: Histogram,
    /// Nanoseconds an empty-handed worker spent until a successful
    /// steal.
    steal_wait_ns: Histogram,
    /// Monotone state count, updated as states are discovered (the
    /// `explore.live.*` namespace feeds the progress reporter while a
    /// run is still going; the aggregate `explore.*` metrics land only
    /// in the final report).
    live_states: Counter,
    /// Monotone dedup-hit count, updated live.
    live_dedup_hits: Counter,
    /// Current frontier size (jobs queued, unexpanded).
    live_frontier: Gauge,
    /// Deepest level reached so far.
    live_deepest: Gauge,
    /// Milliseconds left until the deadline (absent without one).
    budget_remaining_ms: Gauge,
    /// Worker panics converted into [`ViolationKind::Panic`].
    fault_panics: Counter,
    /// Deadline expirations observed (at most 1 per run).
    budget_deadline_hits: Counter,
    /// Resource-guard interrupts (deadline or memory budget).
    budget_interrupts: Counter,
    /// Per-worker deque length, `explore.live.queue_len.w{i}`.
    queue_len: Vec<Gauge>,
    /// Size of each computed persistent set (DPOR mode only).
    dpor_set_size: Histogram,
    /// Steps pruned because the pid slept, updated live.
    live_sleep_prunes: Counter,
    /// Sleep-shrink re-expansions plus proviso escalations, live.
    live_backtracks: Counter,
}

impl EngineTel {
    fn new(config: &ExploreConfig, workers: usize) -> EngineTel {
        let reg = &config.telemetry;
        EngineTel {
            enabled: reg.is_enabled(),
            frontier_depth: reg.histogram("explore.frontier_depth"),
            steal_wait_ns: reg.histogram("explore.steal_wait_ns"),
            live_states: reg.counter("explore.live.states"),
            live_dedup_hits: reg.counter("explore.live.dedup_hits"),
            live_frontier: reg.gauge("explore.live.frontier"),
            live_deepest: reg.gauge("explore.live.deepest"),
            // Registered only under a deadline: progress heartbeats
            // omit the field entirely when there is no budget, and a
            // pre-registered gauge would surface as a misleading 0.
            budget_remaining_ms: if config.deadline.is_some() {
                reg.gauge("explore.live.budget_remaining_ms")
            } else {
                bso_telemetry::Registry::disabled().gauge("explore.live.budget_remaining_ms")
            },
            fault_panics: reg.counter("explore.fault.panics"),
            budget_deadline_hits: reg.counter("explore.budget.deadline_hits"),
            budget_interrupts: reg.counter("explore.budget.interrupts"),
            queue_len: (0..workers)
                .map(|i| reg.gauge(&format!("explore.live.queue_len.w{i}")))
                .collect(),
            // Registered only in DPOR mode, for the same reason as the
            // budget gauge: heartbeats and reports should omit the
            // dpor fields entirely when the mode is off.
            dpor_set_size: if config.dpor {
                reg.histogram("explore.dpor.persistent_set_size")
            } else {
                bso_telemetry::Registry::disabled().histogram("explore.dpor.persistent_set_size")
            },
            live_sleep_prunes: if config.dpor {
                reg.counter("explore.live.dpor.sleep_prunes")
            } else {
                bso_telemetry::Registry::disabled().counter("explore.live.dpor.sleep_prunes")
            },
            live_backtracks: if config.dpor {
                reg.counter("explore.live.dpor.backtrack_points")
            } else {
                bso_telemetry::Registry::disabled().counter("explore.live.dpor.backtrack_points")
            },
        }
    }
}

/// A unit of work: expand `node`, whose representative state is
/// `state` with Zobrist fingerprint `fp`.
struct Job<S> {
    state: StateKey<S>,
    fp: u64,
    node: Arc<Node>,
    /// `Some(mask)`: a *supplementary* DPOR re-expansion of an
    /// already-visited node whose sleep set strictly shrank, using
    /// `mask` as the sleep set (in `state`'s coordinates).
    /// Supplementary jobs only discover edges the first expansion
    /// slept through: they skip terminal counting, the DP best-merge,
    /// and the final pending-token decrement.
    sleep_override: Option<u64>,
}

/// What one in-place step changed, for exact reversal.
struct Undo<S> {
    pid: Pid,
    /// The stepping process's prior local state (`None` for a decide,
    /// which leaves the local state untouched).
    old_local: Option<S>,
    /// The targeted object's prior state (layout index, state).
    old_object: Option<(usize, ObjectState)>,
    old_stepped: u64,
    old_fp: u64,
    /// Whether the step incremented `steps[pid]` (step counters are
    /// tracked only under a step bound).
    counted_step: bool,
    /// Whether the step filled `decisions[pid]`.
    decided: bool,
}

impl<S> Undo<S> {
    /// Restores `state` (and its fingerprint) to exactly the pre-step
    /// values.
    fn revert(self, state: &mut StateKey<S>, fp: &mut u64) {
        *fp = self.old_fp;
        state.stepped = self.old_stepped;
        if self.counted_step {
            state.steps[self.pid] -= 1;
        }
        if let Some(local) = self.old_local {
            state.states[self.pid] = local;
        }
        if let Some((idx, object)) = self.old_object {
            *state.mem.object_state_mut(idx) = object;
        }
        if self.decided {
            state.decisions[self.pid] = None;
        }
    }
}

/// Everything shared between workers.
struct Shared<'p, P: Protocol, C, KM: KeyMode<P::State>>
where
    P::State: Hash,
{
    proto: &'p P,
    config: &'p ExploreConfig,
    canon: C,
    n: usize,
    /// Crash budget, clamped to `n − 1` (crashing everyone leaves
    /// nothing to check).
    faults: usize,
    /// Dynamic partial-order reduction with sleep sets.
    dpor: bool,
    /// Skip step successors whose discovery path would exceed this
    /// many context switches (an under-approximation).
    context_bound: Option<usize>,
    /// Effective state cap: `max_states`, possibly lowered by the
    /// memory budget.
    state_cap: usize,
    /// Whether hitting `state_cap` means the *memory budget* (a
    /// resumable interrupt) rather than `max_states` (exhaustion).
    cap_is_memory: bool,
    /// Absolute deadline, resolved at construction.
    deadline: Option<Instant>,
    shards: Vec<Mutex<HashMap<u64, KM::Entry, FxBuildHasher>>>,
    /// Per-worker deques: the owner pushes/pops at the back (LIFO, so
    /// a lone worker performs plain DFS); thieves steal from the
    /// front, taking the shallowest — largest — subproblems.
    queues: Vec<Mutex<VecDeque<Job<P::State>>>>,
    /// Overflow/start queue any worker may pull from.
    injector: Mutex<VecDeque<Job<P::State>>>,
    park: Mutex<()>,
    wakeup: Condvar,
    /// Jobs pushed but not yet fully processed; 0 means quiescent.
    outstanding: AtomicUsize,
    stop: AtomicBool,
    exhausted: AtomicBool,
    /// Which resource guard fired, if any.
    interrupted: Mutex<Option<InterruptReason>>,
    /// Nodes whose expansion was cut short by a stop signal; they are
    /// still unexpanded for checkpoint purposes.
    aborted: Mutex<Vec<Arc<Node>>>,
    /// Frontier entries that never became nodes because the budget ran
    /// out during seeding.
    unseeded: Mutex<Vec<FrontierEntry>>,
    states: AtomicUsize,
    terminals: AtomicUsize,
    deepest: AtomicUsize,
    dedup_hits: AtomicUsize,
    steals: AtomicUsize,
    contention: AtomicUsize,
    crash_branches: AtomicUsize,
    sleep_prunes: AtomicUsize,
    backtrack_points: AtomicUsize,
    frontier: AtomicUsize,
    peak_frontier: AtomicUsize,
    violation: Mutex<Option<Violation>>,
    tel: EngineTel,
}

impl<'p, P, C, KM> Shared<'p, P, C, KM>
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
    KM: KeyMode<P::State>,
{
    fn new(proto: &'p P, config: &'p ExploreConfig, canon: C, workers: usize) -> Self {
        let n = proto.processes();
        // Per-state footprint estimate for the memory budget: the key
        // clone (exact mode's dominant cost), the node, and amortized
        // map/queue overhead. Deliberately rough — the budget is a
        // guard rail, not an allocator.
        let state_bytes = std::mem::size_of::<StateKey<P::State>>()
            + std::mem::size_of::<Node>()
            + std::mem::size_of::<NodeInner>()
            + n * (std::mem::size_of::<P::State>()
                + std::mem::size_of::<Option<bso_objects::Value>>()
                + 6)
            + 48;
        let mem_cap = config
            .memory_budget
            .map(|bytes| (bytes / state_bytes).max(1));
        let state_cap = config.max_states.min(mem_cap.unwrap_or(usize::MAX));
        Shared {
            proto,
            config,
            canon,
            n,
            faults: config.faults.min(n.saturating_sub(1)),
            dpor: config.dpor,
            context_bound: config.context_bound,
            state_cap,
            cap_is_memory: mem_cap.is_some_and(|m| m < config.max_states),
            deadline: config.deadline.map(|d| Instant::now() + d),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Mutex::new(()),
            wakeup: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            exhausted: AtomicBool::new(false),
            interrupted: Mutex::new(None),
            aborted: Mutex::new(Vec::new()),
            unseeded: Mutex::new(Vec::new()),
            states: AtomicUsize::new(0),
            terminals: AtomicUsize::new(0),
            deepest: AtomicUsize::new(0),
            dedup_hits: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            contention: AtomicUsize::new(0),
            crash_branches: AtomicUsize::new(0),
            sleep_prunes: AtomicUsize::new(0),
            backtrack_points: AtomicUsize::new(0),
            frontier: AtomicUsize::new(0),
            peak_frontier: AtomicUsize::new(0),
            violation: Mutex::new(None),
            tel: EngineTel::new(config, workers),
        }
    }

    /// The trace lane for worker `idx` (disabled unless the run's
    /// [`TraceSink`](bso_telemetry::TraceSink) is live).
    fn trace_worker(&self, idx: usize) -> TraceWorker {
        if self.config.trace.is_enabled() {
            self.config.trace.worker(format!("explore-w{idx}"))
        } else {
            TraceWorker::disabled()
        }
    }

    /// Locks a shard, counting contended acquisitions.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, HashMap<u64, KM::Entry, FxBuildHasher>> {
        match self.shards[idx].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                plock(&self.shards[idx])
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Records a violation, keeping the lexicographically smallest
    /// schedule (then crash list) if several workers report one, and
    /// halts exploration.
    fn record_violation(&self, v: Violation) {
        let mut slot = plock(&self.violation);
        let replace = match slot.as_ref() {
            None => true,
            Some(cur) => (&v.schedule, &v.crashes) < (&cur.schedule, &cur.crashes),
        };
        if replace {
            *slot = Some(v);
        }
        drop(slot);
        self.stop.store(true, Ordering::Relaxed);
        self.wakeup.notify_all();
    }

    /// Records a resource-guard interrupt (first reason wins) and
    /// halts exploration.
    fn interrupt(&self, reason: InterruptReason) {
        {
            let mut slot = plock(&self.interrupted);
            if slot.is_none() {
                *slot = Some(reason);
                if self.tel.enabled {
                    self.tel.budget_interrupts.inc();
                    if reason == InterruptReason::Deadline {
                        self.tel.budget_deadline_hits.inc();
                    }
                }
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        self.wakeup.notify_all();
    }

    /// Parks `node` as still-unexpanded for checkpoint collection
    /// (called when a stop signal cuts its expansion short).
    fn abort_job(&self, node: &Arc<Node>) {
        plock(&self.aborted).push(node.clone());
    }

    /// The concrete schedule reaching `node`'s representative — pids
    /// stepped plus crash events, including any resume prefix — with
    /// an optional extra step appended.
    fn schedule_of(&self, node: &Arc<Node>, extra: Option<Pid>) -> (Vec<Pid>, Vec<CrashEvent>) {
        let mut edges = Vec::with_capacity(node.depth as usize + 1);
        let mut cur = node.clone();
        let prefix = loop {
            match &cur.parent {
                Some((parent, edge)) => {
                    edges.push(*edge);
                    let parent = parent.clone();
                    cur = parent;
                }
                None => break cur.prefix.clone(),
            }
        };
        edges.reverse();
        let (mut sched, mut crashes) = match prefix {
            Some(p) => (p.schedule.clone(), p.crashes.clone()),
            None => (Vec::new(), Vec::new()),
        };
        for edge in edges {
            match edge {
                Edge::Step(pid) => sched.push(pid),
                Edge::Crash(pid) => crashes.push(CrashEvent {
                    at: sched.len(),
                    pid,
                }),
            }
        }
        sched.extend(extra);
        (sched, crashes)
    }

    fn push_job(&self, worker: usize, job: Job<P::State>) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let len = self.frontier.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_frontier.fetch_max(len, Ordering::Relaxed);
        {
            let mut q = plock(&self.queues[worker]);
            q.push_back(job);
            if self.tel.enabled {
                self.tel.queue_len[worker].set(q.len() as u64);
            }
        }
        if self.tel.enabled {
            self.tel.live_frontier.set(len as u64);
        }
        if self.queues.len() > 1 {
            self.wakeup.notify_one();
        }
    }

    fn pop_job(&self, worker: usize, tw: &TraceWorker) -> Option<Job<P::State>> {
        {
            let mut q = plock(&self.queues[worker]);
            if let Some(job) = q.pop_back() {
                if self.tel.enabled {
                    self.tel.queue_len[worker].set(q.len() as u64);
                }
                drop(q);
                let len = self.frontier.fetch_sub(1, Ordering::Relaxed) - 1;
                if self.tel.enabled {
                    self.tel.live_frontier.set(len as u64);
                }
                return Some(job);
            }
        }
        if let Some(job) = plock(&self.injector).pop_front() {
            self.frontier.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        // Steal half of some victim's queue (from the front: the
        // shallowest, largest subproblems).
        let steal_started = self.tel.enabled.then(Instant::now);
        let workers = self.queues.len();
        for offset in 1..workers {
            let victim = (worker + offset) % workers;
            let mut stolen: VecDeque<Job<P::State>> = {
                let mut q = plock(&self.queues[victim]);
                let take = q.len().div_ceil(2);
                let stolen: VecDeque<Job<P::State>> = q.drain(..take).collect();
                if self.tel.enabled && take > 0 {
                    self.tel.queue_len[victim].set(q.len() as u64);
                }
                stolen
            };
            if let Some(job) = stolen.pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.frontier.fetch_sub(1, Ordering::Relaxed);
                let kept = stolen.len();
                if !stolen.is_empty() {
                    let mut q = plock(&self.queues[worker]);
                    q.extend(stolen);
                    if self.tel.enabled {
                        self.tel.queue_len[worker].set(q.len() as u64);
                    }
                }
                if let Some(started) = steal_started {
                    self.tel
                        .steal_wait_ns
                        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                if tw.is_enabled() {
                    tw.instant_with(
                        "steal",
                        [
                            ("victim", TraceArg::U64(victim as u64)),
                            ("jobs", TraceArg::U64(kept as u64 + 1)),
                        ],
                    );
                }
                return Some(job);
            }
        }
        None
    }

    /// Checks the wall-clock deadline; returns `true` if it fired.
    fn check_deadline(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        let now = Instant::now();
        if now >= deadline {
            self.interrupt(InterruptReason::Deadline);
            return true;
        }
        if self.tel.enabled {
            self.tel
                .budget_remaining_ms
                .set(u64::try_from((deadline - now).as_millis()).unwrap_or(u64::MAX));
        }
        false
    }

    /// Converts a worker panic during `expand` into a structured
    /// violation carrying the panic message and the schedule of the
    /// state whose expansion panicked.
    fn record_panic(&self, node: &Arc<Node>, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        if self.tel.enabled {
            self.tel.fault_panics.inc();
        }
        let (schedule, crashes) = self.schedule_of(node, None);
        self.record_violation(Violation {
            kind: ViolationKind::Panic,
            description: format!("protocol panicked while the explorer expanded a state: {msg}"),
            schedule,
            crashes,
        });
    }

    /// The worker main loop: pull, expand, repeat; park when idle.
    /// Expansion runs under `catch_unwind` so a panicking protocol
    /// surfaces as a [`ViolationKind::Panic`] violation and the pool
    /// drains cleanly.
    fn worker(&self, idx: usize) {
        let tw = self.trace_worker(idx);
        let mut scratch = vec![0u32; self.n];
        loop {
            self.check_deadline();
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            match self.pop_job(idx, &tw) {
                Some(job) => {
                    let node = job.node.clone();
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        self.expand(idx, job, &mut scratch, &tw)
                    }));
                    if let Err(payload) = result {
                        self.record_panic(&node, payload);
                    }
                    if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                        self.wakeup.notify_all();
                    }
                }
                None => {
                    if self.outstanding.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    let guard = plock(&self.park);
                    if self.outstanding.load(Ordering::SeqCst) == 0
                        || self.stop.load(Ordering::Relaxed)
                    {
                        return;
                    }
                    let _ = self
                        .wakeup
                        .wait_timeout(guard, PARK_TIMEOUT)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// One step of `pid` applied to `state` **in place**; checks the
    /// specification (and the step bound) and records any violation
    /// (returning `Err`).
    ///
    /// States are only cloned when a genuinely new one enters the
    /// visited table — the dominant dedup-hit case costs one local
    /// state (and at most one object) clone instead of a full global
    /// state. The Zobrist fingerprint `fp` is updated in O(1): only
    /// the changed components are XORed out and back in. The returned
    /// [`Undo`] restores `state` and `fp` exactly.
    fn apply_step(
        &self,
        node: &Arc<Node>,
        state: &mut StateKey<P::State>,
        fp: &mut u64,
        pid: Pid,
    ) -> Result<Undo<P::State>, ()> {
        let old_stepped = state.stepped;
        let old_fp = *fp;
        let track_steps = !state.steps.is_empty();
        if let Some(bound) = self.config.step_bound {
            let taken = state.steps[pid] as usize + 1;
            if taken > bound {
                let (schedule, crashes) = self.schedule_of(node, Some(pid));
                self.record_violation(Violation {
                    kind: ViolationKind::StepBound,
                    description: format!(
                        "p{pid} takes its step #{taken} without deciding, exceeding the \
                         wait-freedom bound of {bound} steps per process"
                    ),
                    schedule,
                    crashes,
                });
                return Err(());
            }
        }
        // The meta component (stepped/crashed/steps) changes iff the
        // stepped bit flips or step counters are tracked; hash it
        // before mutating in either case.
        let meta_changes = track_steps || old_stepped >> pid & 1 == 0;
        let old_meta = meta_changes.then(|| meta_hash(state));
        let bump_meta = |state: &mut StateKey<P::State>, fp: &mut u64| {
            state.stepped |= 1 << pid;
            if track_steps {
                state.steps[pid] += 1;
            }
            if let Some(old) = old_meta {
                *fp ^= old ^ meta_hash(state);
            }
        };
        match self.proto.next_action(&state.states[pid]) {
            Action::Invoke(op) => {
                let obj_idx = op.obj.0;
                let old_object = state.mem.object(op.obj).cloned().map(|o| (obj_idx, o));
                match state.mem.apply(pid, &op) {
                    Ok(resp) => {
                        let old_local = state.states[pid].clone();
                        self.proto.on_response(&mut state.states[pid], resp);
                        *fp ^= component_hash(1 + pid, &old_local)
                            ^ component_hash(1 + pid, &state.states[pid]);
                        if let Some((idx, old)) = &old_object {
                            let c = 1 + 2 * self.n + idx;
                            *fp ^= component_hash(c, old)
                                ^ component_hash(c, &state.mem.objects()[*idx]);
                        }
                        bump_meta(state, fp);
                        Ok(Undo {
                            pid,
                            old_local: Some(old_local),
                            old_object,
                            old_stepped,
                            old_fp,
                            counted_step: track_steps,
                            decided: false,
                        })
                    }
                    Err(err) => {
                        let (schedule, crashes) = self.schedule_of(node, Some(pid));
                        self.record_violation(Violation {
                            kind: ViolationKind::IllegalOperation,
                            description: format!("p{pid} applied {op}: {err}"),
                            schedule,
                            crashes,
                        });
                        Err(())
                    }
                }
            }
            Action::Decide(v) => {
                // `check_decision` sees `stepped` including the decider.
                if let Err((kind, description)) = check_decision(
                    &self.config.spec,
                    &state.decisions,
                    state.stepped | 1 << pid,
                    pid,
                    &v,
                ) {
                    let (schedule, crashes) = self.schedule_of(node, Some(pid));
                    self.record_violation(Violation {
                        kind,
                        description,
                        schedule,
                        crashes,
                    });
                    return Err(());
                }
                let c = 1 + self.n + pid;
                *fp ^= component_hash(c, &state.decisions[pid]);
                state.decisions[pid] = Some(v);
                *fp ^= component_hash(c, &state.decisions[pid]);
                bump_meta(state, fp);
                Ok(Undo {
                    pid,
                    old_local: None,
                    old_object: None,
                    old_stepped,
                    old_fp,
                    counted_step: track_steps,
                    decided: true,
                })
            }
        }
    }

    /// Deduplicates the successor currently materialized in `state`
    /// against the visited table: a hit attaches the child to `node`,
    /// a miss creates, registers, and enqueues a new child node.
    /// Returns `Err` when the state budget is exceeded (exploration
    /// halts).
    ///
    /// `child_sleep` is the DPOR sleep set the child inherits along
    /// this edge, in `state`'s coordinates (0 outside DPOR mode, for
    /// crash edges, and during escalations). On a dedup hit the
    /// stored sleep set is intersected with it; pids the stored set
    /// slept on but this edge does not are *woken*: a supplementary
    /// re-expansion of the child is enqueued so the newly required
    /// orders get explored (the state-caching fix for sleep sets).
    #[allow(clippy::too_many_arguments)]
    fn record_successor(
        &self,
        worker: usize,
        node: &Arc<Node>,
        edge: Edge,
        state: &StateKey<P::State>,
        fp: u64,
        child_sleep: u64,
        local_best: &mut [u32],
        tw: &TraceWorker,
    ) -> Result<Recorded, ()> {
        debug_assert_eq!(fp, zobrist(state), "incremental fingerprint diverged");
        let step_pid = match edge {
            Edge::Step(pid) => Some(pid),
            Edge::Crash(_) => None,
        };
        let canonical = self.canon.canonicalize(state);
        let (canon_state, succ_perm, canon_fp) = match &canonical {
            Some((c, perm)) => (c, Some(&**perm), zobrist(c)),
            None => (state, None, fp),
        };
        let shard_idx = (canon_fp >> 58) as usize % SHARDS;
        let mut shard = self.lock_shard(shard_idx);
        let hit = shard
            .get(&canon_fp)
            .and_then(|e| KM::find(e, canon_state))
            .cloned();
        if let Some(child) = hit {
            drop(shard);
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            if self.tel.enabled {
                self.tel.live_dedup_hits.inc();
            }
            if tw.is_enabled() {
                if let Some(pid) = step_pid {
                    tw.instant_with(
                        "dedup_hit",
                        [
                            ("pid", TraceArg::U64(pid as u64)),
                            ("depth", TraceArg::U64(u64::from(node.depth) + 1)),
                        ],
                    );
                }
                if succ_perm.is_some() {
                    tw.instant_with("symmetry_hit", []);
                }
            }
            if self.dpor {
                // Translate the arriving sleep set into the child's
                // representative coordinates, shrink the stored set,
                // and re-expand for any pids this wakes.
                let map = rep_map(child.rep_perm.as_deref(), succ_perm, self.n);
                let translated = match map.as_deref() {
                    Some(m) => dpor::permute_mask(child_sleep, m),
                    None => child_sleep,
                };
                let prev = child.sleep.fetch_and(translated, Ordering::SeqCst);
                if prev & !translated != 0 {
                    self.backtrack_points.fetch_add(1, Ordering::Relaxed);
                    if self.tel.enabled {
                        self.tel.live_backtracks.inc();
                    }
                    let woken = match map.as_deref() {
                        Some(m) => dpor::permute_mask_inv(prev, m),
                        None => prev,
                    } & child_sleep;
                    self.push_job(
                        worker,
                        Job {
                            state: state.clone(),
                            fp,
                            node: child.clone(),
                            sleep_override: Some(woken),
                        },
                    );
                }
            }
            let done = self.attach_child(node, step_pid, &child, succ_perm, local_best);
            return Ok(if done {
                Recorded::HitDone
            } else {
                Recorded::HitIncomplete
            });
        }
        let count = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if count > self.state_cap {
            drop(shard);
            if self.cap_is_memory {
                self.interrupt(InterruptReason::MemoryBudget);
            } else {
                self.exhausted.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                self.wakeup.notify_all();
            }
            return Err(());
        }
        node.pending.fetch_add(1, Ordering::SeqCst);
        // A crash edge takes no step: the child sits at the same depth
        // (and at the same context-switch count).
        let depth = node.depth + u32::from(step_pid.is_some());
        let (switches, last_pid) = match step_pid {
            Some(pid) => (
                node.switches + u32::from(node.last_pid.is_some_and(|lp| lp != pid)),
                Some(pid),
            ),
            None => (node.switches, node.last_pid),
        };
        let child = Arc::new(Node {
            depth,
            parent: Some((node.clone(), edge)),
            prefix: None,
            rep_perm: succ_perm.map(Box::from),
            sleep: AtomicU64::new(child_sleep),
            switches,
            last_pid,
            pending: AtomicU32::new(1),
            inner: Mutex::new(NodeInner {
                best: vec![0; self.n],
                // The discovery edge's waiter, registered at
                // construction (the node is not yet visible to
                // any other worker). The child's representative
                // is the *uncanonical* successor, whose
                // coordinates already match the parent's — no
                // translation needed.
                waiters: vec![Waiter {
                    parent: node.clone(),
                    step_pid,
                    map: None,
                }],
                done: false,
            }),
        });
        KM::insert(&mut shard, canon_fp, canon_state, child.clone());
        drop(shard);
        self.deepest.fetch_max(depth as usize, Ordering::Relaxed);
        if self.tel.enabled {
            self.tel.live_states.inc();
            self.tel.live_deepest.max(u64::from(depth));
        }
        self.push_job(
            worker,
            Job {
                state: state.clone(),
                fp,
                node: child,
                sleep_override: None,
            },
        );
        Ok(Recorded::New)
    }

    /// Looks the successor materialized in `state` up in the visited
    /// table **without inserting**, and reports whether it is a known
    /// but not-yet-completed node — the signal that a DPOR-pruned edge
    /// might close a cycle through work still in progress (the cycle
    /// proviso; see `expand`).
    fn peek_incomplete(&self, state: &StateKey<P::State>, fp: u64) -> bool {
        let canonical = self.canon.canonicalize(state);
        let (canon_state, canon_fp) = match &canonical {
            Some((c, _)) => (c, zobrist(c)),
            None => (state, fp),
        };
        let shard_idx = (canon_fp >> 58) as usize % SHARDS;
        let hit = {
            let shard = self.lock_shard(shard_idx);
            shard
                .get(&canon_fp)
                .and_then(|e| KM::find(e, canon_state))
                .cloned()
        };
        hit.is_some_and(|node| !plock(&node.inner).done)
    }

    /// Expands `job.node` by generating every enabled successor of its
    /// representative state — one step per non-decided, non-crashed
    /// process, plus (under a crash budget) one crash successor each.
    ///
    /// In DPOR mode only a subset of the enabled processes gets a step
    /// successor: the smallest persistent set (computed from future
    /// footprints) minus the sleep set. Pruned processes still get
    /// crash successors (the fault adversary is orthogonal to step
    /// commutation), and their step successors are *peeked*: if a
    /// pruned step would land on a node whose subtree is still in
    /// progress, the pruned order might be the only one closing a
    /// cycle, so the node escalates to a full expansion (the cycle
    /// proviso). A supplementary job (`sleep_override`) re-expands a
    /// previously visited node with a smaller sleep set and skips the
    /// terminal/DP bookkeeping its first expansion already did.
    fn expand(&self, worker: usize, job: Job<P::State>, local_best: &mut [u32], tw: &TraceWorker) {
        let Job {
            mut state,
            mut fp,
            node,
            sleep_override,
        } = job;
        let supplementary = sleep_override.is_some();
        if self.tel.enabled {
            self.tel.frontier_depth.record(u64::from(node.depth));
        }
        let mut span = tw.begin("expand");
        span.arg("depth", u64::from(node.depth));
        let n = self.n;
        local_best.fill(0);
        let crash_budget = self.faults > state.crashed.count_ones() as usize;
        let mut enabled = 0u64;
        for pid in 0..n {
            if state.decisions[pid].is_none() && state.crashed >> pid & 1 == 0 {
                enabled |= 1 << pid;
            }
        }
        // The DPOR plan: which enabled pids get step successors, and
        // the exact one-step footprints for sleep-set propagation.
        // Sleep is re-read at expansion time (it may have shrunk since
        // the job was pushed — expanding more than planned is sound
        // and subsumes the pending supplementary job's work).
        let plan = if self.dpor && enabled != 0 {
            let sleep = sleep_override.unwrap_or_else(|| node.sleep.load(Ordering::SeqCst));
            let futs: Vec<StepFp> = (0..n)
                .map(|pid| {
                    if enabled >> pid & 1 == 1 {
                        dpor::future_fp(self.proto, &state, &self.config.spec, pid)
                    } else {
                        StepFp::inert()
                    }
                })
                .collect();
            let dset = dpor::smallest_persistent_set(enabled, &futs);
            if self.tel.enabled {
                self.tel.dpor_set_size.record(u64::from(dset.count_ones()));
            }
            let now: Vec<StepFp> = (0..n)
                .map(|pid| {
                    if enabled >> pid & 1 == 1 {
                        dpor::immediate_fp(self.proto, &state, &self.config.spec, pid)
                    } else {
                        StepFp::inert()
                    }
                })
                .collect();
            Some((dset & !sleep, sleep, now))
        } else {
            None
        };
        let mut expanded = 0u64;
        let mut proviso = false;
        // Reverse pid order: the owner pops its deque LIFO, so pushing
        // high pids first makes a lone worker explore pid 0 first —
        // keeping serial violation discovery in lowest-schedule order.
        // (The sleep-set construction below relies on the *logical*
        // ascending order matching this discovery order.) Within one
        // pid the crash successor is pushed last (= popped first), so
        // crashy branches are probed before fault-free ones and the
        // first step-bound counterexample found serially exhibits an
        // actual crash whenever one suffices.
        for pid in (0..n).rev() {
            if enabled >> pid & 1 == 0 {
                continue;
            }
            if self.stop.load(Ordering::Relaxed) {
                self.abort_job(&node);
                return;
            }
            // A step successor whose discovery path would exceed the
            // context bound is skipped outright (an under-approximation
            // — the final report says `Exhausted`, never `Verified`).
            let ctx_ok = self.context_bound.is_none_or(|b| {
                let switches = node.switches + u32::from(node.last_pid.is_some_and(|lp| lp != pid));
                switches as usize <= b
            });
            if ctx_ok {
                let step_planned = match &plan {
                    Some((expand_set, _, _)) => expand_set >> pid & 1 == 1,
                    None => true,
                };
                if step_planned {
                    // The child's sleep set: pids explored before `pid`
                    // in logical (ascending) order — or inherited
                    // asleep — whose pending step commutes with
                    // `pid`'s, minus `pid` itself.
                    let child_sleep = match &plan {
                        Some((expand_set, sleep, now)) => {
                            let before =
                                (sleep | (expand_set & ((1u64 << pid) - 1))) & !(1u64 << pid);
                            let mut cs = 0u64;
                            let mut m = before;
                            while m != 0 {
                                let q = m.trailing_zeros() as usize;
                                m &= m - 1;
                                if !dpor::conflict(&now[q], &now[pid]) {
                                    cs |= 1 << q;
                                }
                            }
                            cs
                        }
                        None => 0,
                    };
                    let Ok(undo) = self.apply_step(&node, &mut state, &mut fp, pid) else {
                        self.abort_job(&node);
                        return;
                    };
                    let stepped = self.record_successor(
                        worker,
                        &node,
                        Edge::Step(pid),
                        &state,
                        fp,
                        child_sleep,
                        local_best,
                        tw,
                    );
                    undo.revert(&mut state, &mut fp);
                    match stepped {
                        Ok(Recorded::HitIncomplete) => proviso = true,
                        Ok(_) => {}
                        Err(()) => {
                            self.abort_job(&node);
                            return;
                        }
                    }
                    expanded |= 1 << pid;
                } else {
                    // Pruned: the step is covered by a commuting order
                    // — unless it closes a cycle through open work,
                    // which a peek (lookup without insert) detects.
                    self.sleep_prunes.fetch_add(1, Ordering::Relaxed);
                    if self.tel.enabled {
                        self.tel.live_sleep_prunes.inc();
                    }
                    let Ok(undo) = self.apply_step(&node, &mut state, &mut fp, pid) else {
                        self.abort_job(&node);
                        return;
                    };
                    if self.peek_incomplete(&state, fp) {
                        proviso = true;
                    }
                    undo.revert(&mut state, &mut fp);
                }
            }
            // Crash successors are generated for *every* enabled pid,
            // pruned or not: a crash is independent of everything but
            // its own process's steps, so the fault adversary's
            // placements stay complete under reduction. Supplementary
            // jobs skip them — the first expansion already did this.
            if crash_budget && !supplementary {
                self.crash_branches.fetch_add(1, Ordering::Relaxed);
                let old_meta = meta_hash(&state);
                let old_fp = fp;
                state.crashed |= 1 << pid;
                fp ^= old_meta ^ meta_hash(&state);
                let crashed = self.record_successor(
                    worker,
                    &node,
                    Edge::Crash(pid),
                    &state,
                    fp,
                    0,
                    local_best,
                    tw,
                );
                state.crashed &= !(1 << pid);
                fp = old_fp;
                if crashed.is_err() {
                    self.abort_job(&node);
                    return;
                }
            }
        }
        // Cycle proviso escalation: some skipped order may be the only
        // one closing a cycle through in-progress work, so expand every
        // remaining enabled pid (with empty child sleep). The woken
        // edges land on already-visited nodes in the common case.
        if self.dpor && proviso && expanded != enabled {
            self.backtrack_points.fetch_add(1, Ordering::Relaxed);
            if self.tel.enabled {
                self.tel.live_backtracks.inc();
            }
            for pid in (0..n).rev() {
                if enabled >> pid & 1 == 0 || expanded >> pid & 1 == 1 {
                    continue;
                }
                if self.stop.load(Ordering::Relaxed) {
                    self.abort_job(&node);
                    return;
                }
                let ctx_ok = self.context_bound.is_none_or(|b| {
                    let switches =
                        node.switches + u32::from(node.last_pid.is_some_and(|lp| lp != pid));
                    switches as usize <= b
                });
                if !ctx_ok {
                    continue;
                }
                let Ok(undo) = self.apply_step(&node, &mut state, &mut fp, pid) else {
                    self.abort_job(&node);
                    return;
                };
                let stepped = self.record_successor(
                    worker,
                    &node,
                    Edge::Step(pid),
                    &state,
                    fp,
                    0,
                    local_best,
                    tw,
                );
                undo.revert(&mut state, &mut fp);
                if stepped.is_err() {
                    self.abort_job(&node);
                    return;
                }
            }
        }
        if supplementary {
            // The node's first expansion already counted the terminal,
            // merged its DP contribution, and dropped its pending
            // token; a supplementary pass only adds the woken edges.
            return;
        }
        if enabled == 0 {
            self.terminals.fetch_add(1, Ordering::Relaxed);
        } else {
            let mut inner = plock(&node.inner);
            for (b, l) in inner.best.iter_mut().zip(local_best.iter()) {
                *b = (*b).max(*l);
            }
        }
        // Drop the expansion's own obligation token.
        if node.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finish(node);
        }
    }

    /// Handles a dedup hit: combine a finished child's bounds now, or
    /// register a waiter on an in-progress child. Returns whether the
    /// child was already done.
    fn attach_child(
        &self,
        parent: &Arc<Node>,
        step_pid: Option<Pid>,
        child: &Arc<Node>,
        succ_perm: Option<&[Pid]>,
        local_best: &mut [u32],
    ) -> bool {
        let map = rep_map(child.rep_perm.as_deref(), succ_perm, self.n);
        // Combining under the child's lock avoids cloning its bounds on
        // the (dominant) already-finished path; `local_best` is
        // worker-local and no other lock is held, so this cannot
        // deadlock.
        let mut inner = plock(&child.inner);
        if inner.done {
            combine(local_best, &inner.best, map_ref(&map), step_pid);
            true
        } else {
            parent.pending.fetch_add(1, Ordering::SeqCst);
            inner.waiters.push(Waiter {
                parent: parent.clone(),
                step_pid,
                map,
            });
            false
        }
    }

    /// Marks `node` done and fires its waiters, iteratively completing
    /// any parents whose last obligation this resolves. Idempotent: a
    /// DPOR supplementary expansion can register fresh obligations on
    /// an already-done node, whose resolution re-fires `finish` (the
    /// second pass finds no waiters and the DP garbage is harmless —
    /// step bounds are not reported in DPOR mode).
    fn finish(&self, node: Arc<Node>) {
        let mut worklist = vec![node];
        while let Some(nd) = worklist.pop() {
            let (bounds, waiters) = {
                let mut inner = plock(&nd.inner);
                if inner.done {
                    debug_assert!(self.dpor, "node finished twice outside DPOR mode");
                    continue;
                }
                inner.done = true;
                (inner.best.clone(), std::mem::take(&mut inner.waiters))
            };
            for w in waiters {
                {
                    let mut inner = plock(&w.parent.inner);
                    combine(&mut inner.best, &bounds, map_ref(&w.map), w.step_pid);
                }
                if w.parent.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    worklist.push(w.parent);
                }
            }
        }
    }

    /// Every generated-but-unexpanded node: the queued jobs plus any
    /// whose expansion a stop signal cut short. Drains the queues.
    fn frontier_nodes(&self) -> Vec<Arc<Node>> {
        let mut nodes: Vec<Arc<Node>> = Vec::new();
        for q in &self.queues {
            nodes.extend(plock(q).drain(..).map(|j| j.node));
        }
        nodes.extend(plock(&self.injector).drain(..).map(|j| j.node));
        nodes.append(&mut plock(&self.aborted));
        let mut seen = HashSet::new();
        nodes.retain(|nd| seen.insert(Arc::as_ptr(nd) as usize));
        nodes
    }

    /// Decides, after the workers have stopped, whether the incomplete
    /// region proves a cycle **now** — and if so exhibits one.
    ///
    /// `frontier` holds the unexpanded nodes, whose subtrees are
    /// unknown; treat them *optimistically* as able to complete. A
    /// non-frontier incomplete node can then complete iff **all** its
    /// awaited (incomplete) children can: compute the least fixpoint
    /// of that rule by counting, per parent, awaited children not yet
    /// known completable, seeded with the frontier. Any incomplete
    /// node left outside the fixpoint — *stuck* — waits (transitively)
    /// on no frontier node, so no future work can complete it: each
    /// stuck node awaits a stuck child, and following those edges must
    /// revisit a node, exhibiting a genuine cycle. At quiescence the
    /// frontier is empty, so this degenerates to the classical
    /// incomplete-root-implies-cycle argument of the module docs; at a
    /// resource interrupt it keeps cycles that are already fully
    /// explored from being deferred (or lost) across a resume.
    fn cycle_violation(
        &self,
        preferred_start: Option<&Arc<Node>>,
        frontier: &[Arc<Node>],
    ) -> Option<Violation> {
        let ptr_of = |nd: &Arc<Node>| Arc::as_ptr(nd) as usize;
        let mut incomplete: Vec<Arc<Node>> = Vec::new();
        for shard in &self.shards {
            for entry in plock(shard).values() {
                KM::for_each_node(entry, &mut |node| {
                    if !plock(&node.inner).done {
                        incomplete.push(node.clone());
                    }
                });
            }
        }
        let mut completable: HashSet<usize> = frontier.iter().map(&ptr_of).collect();
        // Reverse wait edges (child → awaiting parents) and per-parent
        // counts of awaited children not yet known completable.
        let mut parents_of: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut pending_cnt: HashMap<usize, usize> = HashMap::new();
        for child in &incomplete {
            let c = ptr_of(child);
            let child_completable = completable.contains(&c);
            for w in plock(&child.inner).waiters.iter() {
                let p = ptr_of(&w.parent);
                parents_of.entry(c).or_default().push(p);
                if !child_completable {
                    *pending_cnt.entry(p).or_insert(0) += 1;
                }
            }
        }
        let mut work: Vec<usize> = incomplete
            .iter()
            .map(&ptr_of)
            .filter(|p| !completable.contains(p) && pending_cnt.get(p).is_none_or(|&c| c == 0))
            .collect();
        while let Some(u) = work.pop() {
            if !completable.insert(u) {
                continue;
            }
            for &p in parents_of.get(&u).into_iter().flatten() {
                if let Some(cnt) = pending_cnt.get_mut(&p) {
                    *cnt -= 1;
                    if *cnt == 0 && !completable.contains(&p) {
                        work.push(p);
                    }
                }
            }
        }
        let stuck: HashSet<usize> = incomplete
            .iter()
            .map(&ptr_of)
            .filter(|p| !completable.contains(p))
            .collect();
        if stuck.is_empty() {
            return None;
        }
        // One outgoing wait edge per stuck parent, into a stuck child.
        let mut waits_on: HashMap<usize, Arc<Node>> = HashMap::new();
        for child in &incomplete {
            if !stuck.contains(&ptr_of(child)) {
                continue;
            }
            for w in plock(&child.inner).waiters.iter() {
                if stuck.contains(&ptr_of(&w.parent)) {
                    waits_on.insert(ptr_of(&w.parent), child.clone());
                }
            }
        }
        let start = match preferred_start {
            Some(root) if stuck.contains(&ptr_of(root)) => root.clone(),
            _ => incomplete
                .iter()
                .find(|nd| stuck.contains(&ptr_of(nd)))
                .expect("stuck set is nonempty")
                .clone(),
        };
        let mut seen = HashSet::new();
        let mut cur = start;
        while seen.insert(ptr_of(&cur)) {
            cur = waits_on
                .get(&ptr_of(&cur))
                .expect("a stuck node awaits a stuck child")
                .clone();
        }
        let (schedule, crashes) = self.schedule_of(&cur, None);
        Some(Violation {
            kind: ViolationKind::NotWaitFree,
            description: "state graph cycle: a schedule exists on which a process \
                          takes unboundedly many steps without deciding"
                .into(),
            schedule,
            crashes,
        })
    }

    /// Creates and enqueues the root nodes, one per seed (deduplicating
    /// seeds that canonicalize to the same state). Budget overruns stop
    /// seeding; with a memory budget the unseeded tail is preserved for
    /// the checkpoint.
    fn seed(&self, seeds: Seeds<P::State>) -> Vec<Arc<Node>> {
        let mut roots = Vec::new();
        let mut pending = seeds.into_iter();
        while let Some((init, prefix)) = pending.next() {
            let init_fp = zobrist(&init);
            let canonical = self.canon.canonicalize(&init);
            let (canon_state, canon_fp) = match canonical.as_ref() {
                Some((c, _)) => (c, zobrist(c)),
                None => (&init, init_fp),
            };
            let shard_idx = (canon_fp >> 58) as usize % SHARDS;
            {
                let shard = plock(&self.shards[shard_idx]);
                if shard
                    .get(&canon_fp)
                    .and_then(|e| KM::find(e, canon_state))
                    .is_some()
                {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let count = self.states.fetch_add(1, Ordering::Relaxed) + 1;
            if count > self.state_cap {
                if self.cap_is_memory {
                    self.interrupt(InterruptReason::MemoryBudget);
                    let mut unseeded = plock(&self.unseeded);
                    unseeded.push(prefix);
                    unseeded.extend(pending.map(|(_, p)| p));
                } else {
                    self.exhausted.store(true, Ordering::Relaxed);
                    self.stop.store(true, Ordering::Relaxed);
                }
                break;
            }
            let depth = u32::try_from(prefix.schedule.len()).unwrap_or(u32::MAX);
            let root = Arc::new(Node {
                depth,
                parent: None,
                prefix: (!prefix.schedule.is_empty() || !prefix.crashes.is_empty())
                    .then(|| Arc::new(prefix)),
                rep_perm: canonical.as_ref().map(|(_, perm)| perm.clone()),
                // Roots sleep on nothing and (conservatively, for a
                // resumed mid-schedule seed) start at zero switches.
                sleep: AtomicU64::new(0),
                switches: 0,
                last_pid: None,
                pending: AtomicU32::new(1),
                inner: Mutex::new(NodeInner {
                    best: vec![0; self.n],
                    waiters: Vec::new(),
                    done: false,
                }),
            });
            {
                let mut shard = plock(&self.shards[shard_idx]);
                KM::insert(&mut shard, canon_fp, canon_state, root.clone());
            }
            self.deepest.fetch_max(depth as usize, Ordering::Relaxed);
            self.outstanding.fetch_add(1, Ordering::SeqCst);
            let len = self.frontier.fetch_add(1, Ordering::Relaxed) + 1;
            self.peak_frontier.fetch_max(len, Ordering::Relaxed);
            plock(&self.injector).push_back(Job {
                state: init,
                fp: init_fp,
                node: root.clone(),
                sleep_override: None,
            });
            roots.push(root);
        }
        roots
    }

    /// Assembles the final report once all workers have returned.
    fn report(&self, roots: &[Arc<Node>], started: Instant, workers: usize) -> Report {
        let duration = started.elapsed();
        let states = self.states.load(Ordering::Relaxed).min(self.state_cap);
        let stats = ExploreStats {
            workers,
            duration,
            states_per_sec: states as f64 / duration.as_secs_f64().max(1e-9),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            peak_frontier: self.peak_frontier.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            shard_contention: self.contention.load(Ordering::Relaxed),
            crash_branches: self.crash_branches.load(Ordering::Relaxed),
            dpor_sleep_prunes: self.sleep_prunes.load(Ordering::Relaxed),
            dpor_backtrack_points: self.backtrack_points.load(Ordering::Relaxed),
        };
        let terminals = self.terminals.load(Ordering::Relaxed);
        let deepest = self.deepest.load(Ordering::Relaxed);
        let violation = plock(&self.violation).take();
        let interrupted = *plock(&self.interrupted);
        let (outcome, bounds) = if let Some(v) = violation {
            (ExploreOutcome::Violated(v), Vec::new())
        } else if !roots.is_empty() && roots.iter().all(|r| plock(&r.inner).done) {
            if self.context_bound.is_some() {
                // A context-bounded pass skips schedules: completing it
                // proves nothing about the full space, so report the
                // under-approximation honestly.
                (ExploreOutcome::Exhausted { states, deepest }, Vec::new())
            } else {
                // Exact step bounds are only meaningful for a run
                // rooted at the true initial state, and not under DPOR
                // (a pruned order can realize a higher per-process
                // count than any explored one; supplementary passes
                // can also leave partial DP contributions behind).
                let bounds = match roots {
                    [root] if root.prefix.is_none() && !self.dpor => plock(&root.inner)
                        .best
                        .iter()
                        .map(|&b| b as usize)
                        .collect(),
                    _ => Vec::new(),
                };
                (ExploreOutcome::Verified, bounds)
            }
        } else if let Some(reason) = interrupted {
            let frontier_nodes = self.frontier_nodes();
            match self.cycle_violation(roots.first(), &frontier_nodes) {
                Some(v) => (ExploreOutcome::Violated(v), Vec::new()),
                None => {
                    let mut frontier: Vec<FrontierEntry> = frontier_nodes
                        .iter()
                        .map(|nd| {
                            let (schedule, crashes) = self.schedule_of(nd, None);
                            FrontierEntry { schedule, crashes }
                        })
                        .collect();
                    frontier.append(&mut plock(&self.unseeded));
                    (
                        ExploreOutcome::Interrupted {
                            reason,
                            states,
                            deepest,
                            frontier,
                        },
                        Vec::new(),
                    )
                }
            }
        } else if self.exhausted.load(Ordering::Relaxed) || roots.is_empty() {
            (ExploreOutcome::Exhausted { states, deepest }, Vec::new())
        } else {
            let start = roots.iter().find(|r| !plock(&r.inner).done);
            let v = self
                .cycle_violation(start, &[])
                .expect("quiescence with an incomplete root implies a cycle");
            (ExploreOutcome::Violated(v), Vec::new())
        };
        let report = Report {
            outcome,
            states,
            terminals,
            max_steps_per_proc: bounds,
            stats,
        };
        report.record_to(&self.config.telemetry);
        report
    }
}

/// Runs the engine single-threaded on the calling thread (no `Send`
/// or `Sync` requirements; with one LIFO deque this is a plain DFS).
pub(crate) fn run_serial<P, C, KM>(
    proto: &P,
    seeds: Seeds<P::State>,
    config: &ExploreConfig,
    canon: C,
) -> Report
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
    KM: KeyMode<P::State>,
{
    let started = Instant::now();
    let shared: Shared<'_, P, C, KM> = Shared::new(proto, config, canon, 1);
    let roots = shared.seed(seeds);
    if !roots.is_empty() && !shared.stop.load(Ordering::Relaxed) {
        shared.worker(0);
    }
    shared.report(&roots, started, 1)
}

/// Runs the engine on `workers` scoped threads with work stealing.
pub(crate) fn run_parallel<P, C, KM>(
    proto: &P,
    seeds: Seeds<P::State>,
    config: &ExploreConfig,
    canon: C,
    workers: usize,
) -> Report
where
    P: Protocol + Sync,
    P::State: Clone + Hash + Eq + Send,
    C: Canonicalizer<P> + Sync,
    KM: KeyMode<P::State>,
    KM::Entry: Send,
{
    debug_assert!(workers >= 2);
    let started = Instant::now();
    let shared: Shared<'_, P, C, KM> = Shared::new(proto, config, canon, workers);
    let roots = shared.seed(seeds);
    if !roots.is_empty() && !shared.stop.load(Ordering::Relaxed) {
        std::thread::scope(|s| {
            for idx in 0..workers {
                let shared = &shared;
                s.spawn(move || shared.worker(idx));
            }
        });
    }
    shared.report(&roots, started, workers)
}

/// Dispatches on [`DedupMode`] for the serial engine.
pub(crate) fn dispatch_serial<P, C>(
    proto: &P,
    seeds: Seeds<P::State>,
    config: &ExploreConfig,
    canon: C,
) -> Report
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
{
    match config.dedup {
        DedupMode::Exact => run_serial::<P, C, ExactKeys>(proto, seeds, config, canon),
        DedupMode::Fingerprint => run_serial::<P, C, FingerprintKeys>(proto, seeds, config, canon),
    }
}

/// Dispatches on [`DedupMode`] for the parallel engine.
pub(crate) fn dispatch_parallel<P, C>(
    proto: &P,
    seeds: Seeds<P::State>,
    config: &ExploreConfig,
    canon: C,
    workers: usize,
) -> Report
where
    P: Protocol + Sync,
    P::State: Clone + Hash + Eq + Send,
    C: Canonicalizer<P> + Sync,
{
    match config.dedup {
        DedupMode::Exact => run_parallel::<P, C, ExactKeys>(proto, seeds, config, canon, workers),
        DedupMode::Fingerprint => {
            run_parallel::<P, C, FingerprintKeys>(proto, seeds, config, canon, workers)
        }
    }
}

fn map_ref(map: &Option<Box<[Pid]>>) -> Option<&[Pid]> {
    map.as_deref()
}

/// `parent_best[p] = max(parent_best[p], child_best[map(p)] + (p == step_pid))`
/// — `step_pid` is `None` for crash edges, which contribute no step.
fn combine(
    parent_best: &mut [u32],
    child_best: &[u32],
    map: Option<&[Pid]>,
    step_pid: Option<Pid>,
) {
    for (p, b) in parent_best.iter_mut().enumerate() {
        let idx = map.map_or(p, |m| m[p]);
        let total = child_best[idx] + u32::from(step_pid == Some(p));
        if total > *b {
            *b = total;
        }
    }
}

/// Composes the coordinate translation for a dedup edge.
///
/// `child_perm` maps the child's representative coordinates to
/// canonical coordinates; `succ_perm` maps the generated successor's
/// coordinates (= the parent side) to the same canonical coordinates.
/// The parent-side bound of process `p` is the child's bound of
/// process `child_perm⁻¹(succ_perm(p))`. Returns `None` for the
/// identity.
fn rep_map(child_perm: Option<&[Pid]>, succ_perm: Option<&[Pid]>, n: usize) -> Option<Box<[Pid]>> {
    if child_perm.is_none() && succ_perm.is_none() {
        return None;
    }
    let mut inv: Vec<Pid> = (0..n).collect();
    if let Some(cp) = child_perm {
        for (p, &q) in cp.iter().enumerate() {
            inv[q] = p;
        }
    }
    let map: Vec<Pid> = (0..n)
        .map(|p| inv[succ_perm.map_or(p, |sp| sp[p])])
        .collect();
    if map.iter().enumerate().all(|(i, &v)| i == v) {
        None
    } else {
        Some(map.into_boxed_slice())
    }
}
