//! The parallel sharded state-space exploration engine.
//!
//! This module is the machinery behind [`crate::explore`] and its
//! parallel/symmetric variants; the public API and the semantics of a
//! verdict live in [`crate::explore`]. The engine replaces the seed's
//! recursive DFS with a *dataflow* formulation that parallelizes and
//! never recurses:
//!
//! * Every distinct (canonicalized) global state becomes a [`Node`] in
//!   a sharded visited table. Workers pull *expand* jobs from
//!   work-stealing deques: expanding a node generates its successors,
//!   deduplicates them against the table, and either combines an
//!   already-finished child's step bounds immediately or registers a
//!   *waiter* on the child.
//! * The longest-path DP (`max_steps_per_proc`) flows **backwards**:
//!   when a node's last obligation resolves (its own expansion plus
//!   one per awaited child), it fires its waiters, which may complete
//!   their parents in turn — a chain processed iteratively, so stack
//!   depth never grows with state-graph depth.
//! * **Cycle detection by quiescence**: in an acyclic graph every node
//!   eventually completes. If all queues drain with no violation, no
//!   budget exhaustion, and the root still incomplete, every
//!   incomplete node is waiting on an incomplete child — so the wait
//!   digraph has minimum out-degree 1 and therefore contains a cycle,
//!   which is exactly a schedule on which some process runs forever:
//!   the protocol is not wait-free. Conversely a cycle keeps its nodes
//!   incomplete forever, so quiescence-with-incomplete-root occurs
//!   *iff* the graph is cyclic — the check is sound and complete.
//! * Counterexample schedules come from first-discovery parent links:
//!   each node remembers the concrete edge that created it, so the
//!   path to any node is a genuine executable schedule even under
//!   fingerprinting (a fingerprint collision can merge states and skip
//!   work, but never fabricates an edge) and under symmetry reduction
//!   (nodes expand a concrete *representative* of their orbit, never
//!   an abstract canonical form).
//!
//! Under symmetry reduction a node's identity is its orbit-minimal
//! canonical form while its expansion uses the first concrete member
//! discovered (the *representative*). The DP vector of a node is kept
//! in representative coordinates; each dedup edge therefore carries a
//! pid-coordinate translation composed from the two permutations
//! involved, applied when the child's bounds are combined upward.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::{Duration, Instant};

use bso_objects::spec::ObjectState;
use bso_telemetry::{Counter, Gauge, Histogram, TraceArg, TraceWorker};

use crate::explore::{
    check_decision, DedupMode, ExploreConfig, ExploreOutcome, ExploreStats, Report, StateKey,
    Violation, ViolationKind,
};
use crate::fingerprint::{component_hash, FxBuildHasher};
use crate::symmetry::Canonicalizer;
use crate::{Action, Pid, Protocol};

/// Number of visited-table shards (a power of two; selected by the top
/// bits of the key fingerprint).
const SHARDS: usize = 64;

/// How long an idle worker sleeps before re-polling, as a backstop
/// against any lost wakeup.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// How a generated state is keyed in the visited table.
///
/// Every shard map is keyed by the state's 64-bit fingerprint, which
/// is computed exactly once per generated successor (it also selects
/// the shard) — the map itself only ever re-hashes one word. The two
/// modes differ in what a map *entry* holds: exact mode keeps the full
/// states alongside their nodes and resolves fingerprint collisions by
/// equality, fingerprint mode trusts the fingerprint and stores the
/// node alone.
pub(crate) trait KeyMode<S: Hash> {
    /// Everything stored under one fingerprint.
    type Entry;
    /// Finds `state` within an entry.
    fn find<'a>(entry: &'a Self::Entry, state: &StateKey<S>) -> Option<&'a Arc<Node>>;
    /// Records `state → node` under `fp`.
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        state: &StateKey<S>,
        node: Arc<Node>,
    );
    /// Visits every node in an entry.
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>));
}

/// Full-state keys: exact deduplication, no collisions possible.
pub(crate) struct ExactKeys;

impl<S: Hash + Eq + Clone> KeyMode<S> for ExactKeys {
    /// Almost always a single element; colliding states chain.
    type Entry = Vec<(StateKey<S>, Arc<Node>)>;
    fn find<'a>(entry: &'a Self::Entry, state: &StateKey<S>) -> Option<&'a Arc<Node>> {
        entry
            .iter()
            .find_map(|(k, node)| (k == state).then_some(node))
    }
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        state: &StateKey<S>,
        node: Arc<Node>,
    ) {
        map.entry(fp).or_default().push((state.clone(), node));
    }
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>)) {
        for (_, node) in entry {
            f(node);
        }
    }
}

/// 64-bit fingerprint keys: no per-state clone is retained, at the
/// price of a ≈ `states²/2⁶⁵` probability of a collision silently
/// merging two distinct states (see `DESIGN.md` §3.2).
pub(crate) struct FingerprintKeys;

impl<S: Hash> KeyMode<S> for FingerprintKeys {
    type Entry = Arc<Node>;
    fn find<'a>(entry: &'a Self::Entry, _state: &StateKey<S>) -> Option<&'a Arc<Node>> {
        Some(entry)
    }
    fn insert(
        map: &mut HashMap<u64, Self::Entry, FxBuildHasher>,
        fp: u64,
        _state: &StateKey<S>,
        node: Arc<Node>,
    ) {
        map.insert(fp, node);
    }
    fn for_each_node(entry: &Self::Entry, f: &mut dyn FnMut(&Arc<Node>)) {
        f(entry);
    }
}

/// One distinct (canonicalized) global state.
pub(crate) struct Node {
    /// Steps from the root along the first-discovery path.
    depth: u32,
    /// The concrete edge that discovered this node: stepping `pid`
    /// from the parent's representative. `None` for the root.
    parent: Option<(Arc<Node>, Pid)>,
    /// Under symmetry reduction: the permutation mapping this node's
    /// representative coordinates to canonical coordinates (`None` =
    /// identity, always so without reduction).
    rep_perm: Option<Box<[Pid]>>,
    /// Outstanding obligations before this node's DP value is final:
    /// 1 for the node's own expansion plus 1 per awaited child.
    pending: AtomicU32,
    inner: Mutex<NodeInner>,
}

struct NodeInner {
    /// DP accumulator: max further steps per process, in this node's
    /// *representative* coordinates.
    best: Vec<u32>,
    /// Parents awaiting this node's completion.
    waiters: Vec<Waiter>,
    /// Whether `best` is final.
    done: bool,
}

/// A parent's registration on an in-progress child.
struct Waiter {
    parent: Arc<Node>,
    /// The pid the parent stepped to reach the child.
    step_pid: Pid,
    /// Coordinate translation: the parent-side bound of process `p`
    /// is the child's bound of process `map[p]` (`None` = identity).
    map: Option<Box<[Pid]>>,
}

/// The Zobrist fingerprint of a full state: the XOR of per-component
/// salted hashes (see [`component_hash`]). Component indices: 0 is
/// `stepped`, `1..=n` the local states, `n+1..=2n` the decisions,
/// `2n+1..` the objects. One process step changes at most three
/// components, so [`Shared::apply_step`] maintains the fingerprint in
/// O(1) instead of re-walking the state per generated successor.
fn zobrist<S: Hash>(state: &StateKey<S>) -> u64 {
    let n = state.states.len();
    let mut fp = component_hash(0, &state.stepped);
    for (i, s) in state.states.iter().enumerate() {
        fp ^= component_hash(1 + i, s);
    }
    for (i, d) in state.decisions.iter().enumerate() {
        fp ^= component_hash(1 + n + i, d);
    }
    for (j, o) in state.mem.objects().iter().enumerate() {
        fp ^= component_hash(1 + 2 * n + j, o);
    }
    fp
}

/// Live telemetry handles for the hot loop, resolved once per run
/// from [`ExploreConfig::telemetry`]. `enabled` gates the clock reads
/// (and the histogram branches) so a disabled registry costs one
/// predictable branch per expansion.
struct EngineTel {
    enabled: bool,
    /// Depth (steps from the root) of each expanded node.
    frontier_depth: Histogram,
    /// Nanoseconds an empty-handed worker spent until a successful
    /// steal.
    steal_wait_ns: Histogram,
    /// Monotone state count, updated as states are discovered (the
    /// `explore.live.*` namespace feeds the progress reporter while a
    /// run is still going; the aggregate `explore.*` metrics land only
    /// in the final report).
    live_states: Counter,
    /// Monotone dedup-hit count, updated live.
    live_dedup_hits: Counter,
    /// Current frontier size (jobs queued, unexpanded).
    live_frontier: Gauge,
    /// Deepest level reached so far.
    live_deepest: Gauge,
    /// Per-worker deque length, `explore.live.queue_len.w{i}`.
    queue_len: Vec<Gauge>,
}

impl EngineTel {
    fn new(config: &ExploreConfig, workers: usize) -> EngineTel {
        let reg = &config.telemetry;
        EngineTel {
            enabled: reg.is_enabled(),
            frontier_depth: reg.histogram("explore.frontier_depth"),
            steal_wait_ns: reg.histogram("explore.steal_wait_ns"),
            live_states: reg.counter("explore.live.states"),
            live_dedup_hits: reg.counter("explore.live.dedup_hits"),
            live_frontier: reg.gauge("explore.live.frontier"),
            live_deepest: reg.gauge("explore.live.deepest"),
            queue_len: (0..workers)
                .map(|i| reg.gauge(&format!("explore.live.queue_len.w{i}")))
                .collect(),
        }
    }
}

/// A unit of work: expand `node`, whose representative state is
/// `state` with Zobrist fingerprint `fp`.
struct Job<S> {
    state: StateKey<S>,
    fp: u64,
    node: Arc<Node>,
}

/// What one in-place step changed, for exact reversal.
struct Undo<S> {
    pid: Pid,
    /// The stepping process's prior local state (`None` for a decide,
    /// which leaves the local state untouched).
    old_local: Option<S>,
    /// The targeted object's prior state (layout index, state).
    old_object: Option<(usize, ObjectState)>,
    old_stepped: u64,
    old_fp: u64,
    /// Whether the step filled `decisions[pid]`.
    decided: bool,
}

impl<S> Undo<S> {
    /// Restores `state` (and its fingerprint) to exactly the pre-step
    /// values.
    fn revert(self, state: &mut StateKey<S>, fp: &mut u64) {
        *fp = self.old_fp;
        state.stepped = self.old_stepped;
        if let Some(local) = self.old_local {
            state.states[self.pid] = local;
        }
        if let Some((idx, object)) = self.old_object {
            *state.mem.object_state_mut(idx) = object;
        }
        if self.decided {
            state.decisions[self.pid] = None;
        }
    }
}

/// Everything shared between workers.
struct Shared<'p, P: Protocol, C, KM: KeyMode<P::State>>
where
    P::State: Hash,
{
    proto: &'p P,
    config: &'p ExploreConfig,
    canon: C,
    n: usize,
    shards: Vec<Mutex<HashMap<u64, KM::Entry, FxBuildHasher>>>,
    /// Per-worker deques: the owner pushes/pops at the back (LIFO, so
    /// a lone worker performs plain DFS); thieves steal from the
    /// front, taking the shallowest — largest — subproblems.
    queues: Vec<Mutex<VecDeque<Job<P::State>>>>,
    /// Overflow/start queue any worker may pull from.
    injector: Mutex<VecDeque<Job<P::State>>>,
    park: Mutex<()>,
    wakeup: Condvar,
    /// Jobs pushed but not yet fully processed; 0 means quiescent.
    outstanding: AtomicUsize,
    stop: AtomicBool,
    exhausted: AtomicBool,
    states: AtomicUsize,
    terminals: AtomicUsize,
    deepest: AtomicUsize,
    dedup_hits: AtomicUsize,
    steals: AtomicUsize,
    contention: AtomicUsize,
    frontier: AtomicUsize,
    peak_frontier: AtomicUsize,
    violation: Mutex<Option<Violation>>,
    tel: EngineTel,
}

impl<'p, P, C, KM> Shared<'p, P, C, KM>
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
    KM: KeyMode<P::State>,
{
    fn new(proto: &'p P, config: &'p ExploreConfig, canon: C, workers: usize) -> Self {
        Shared {
            proto,
            config,
            canon,
            n: proto.processes(),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Mutex::new(()),
            wakeup: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            exhausted: AtomicBool::new(false),
            states: AtomicUsize::new(0),
            terminals: AtomicUsize::new(0),
            deepest: AtomicUsize::new(0),
            dedup_hits: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            contention: AtomicUsize::new(0),
            frontier: AtomicUsize::new(0),
            peak_frontier: AtomicUsize::new(0),
            violation: Mutex::new(None),
            tel: EngineTel::new(config, workers),
        }
    }

    /// The trace lane for worker `idx` (disabled unless the run's
    /// [`TraceSink`](bso_telemetry::TraceSink) is live).
    fn trace_worker(&self, idx: usize) -> TraceWorker {
        if self.config.trace.is_enabled() {
            self.config.trace.worker(format!("explore-w{idx}"))
        } else {
            TraceWorker::disabled()
        }
    }

    /// Locks a shard, counting contended acquisitions.
    fn lock_shard(
        &self,
        idx: usize,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, KM::Entry, FxBuildHasher>> {
        match self.shards[idx].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].lock().unwrap()
            }
            Err(TryLockError::Poisoned(e)) => panic!("poisoned shard: {e}"),
        }
    }

    /// Records a violation, keeping the lexicographically smallest
    /// schedule if several workers report one, and halts exploration.
    fn record_violation(&self, v: Violation) {
        let mut slot = self.violation.lock().unwrap();
        let replace = match slot.as_ref() {
            None => true,
            Some(cur) => v.schedule < cur.schedule,
        };
        if replace {
            *slot = Some(v);
        }
        drop(slot);
        self.stop.store(true, Ordering::Relaxed);
        self.wakeup.notify_all();
    }

    /// The concrete schedule reaching `node`'s representative, plus an
    /// optional extra step.
    fn schedule_of(&self, node: &Arc<Node>, extra: Option<Pid>) -> Vec<Pid> {
        let mut sched = Vec::with_capacity(node.depth as usize + 1);
        let mut cur = node.clone();
        while let Some((parent, pid)) = &cur.parent {
            sched.push(*pid);
            cur = parent.clone();
        }
        sched.reverse();
        sched.extend(extra);
        sched
    }

    fn push_job(&self, worker: usize, job: Job<P::State>) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let len = self.frontier.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_frontier.fetch_max(len, Ordering::Relaxed);
        {
            let mut q = self.queues[worker].lock().unwrap();
            q.push_back(job);
            if self.tel.enabled {
                self.tel.queue_len[worker].set(q.len() as u64);
            }
        }
        if self.tel.enabled {
            self.tel.live_frontier.set(len as u64);
        }
        if self.queues.len() > 1 {
            self.wakeup.notify_one();
        }
    }

    fn pop_job(&self, worker: usize, tw: &TraceWorker) -> Option<Job<P::State>> {
        {
            let mut q = self.queues[worker].lock().unwrap();
            if let Some(job) = q.pop_back() {
                if self.tel.enabled {
                    self.tel.queue_len[worker].set(q.len() as u64);
                }
                drop(q);
                let len = self.frontier.fetch_sub(1, Ordering::Relaxed) - 1;
                if self.tel.enabled {
                    self.tel.live_frontier.set(len as u64);
                }
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.frontier.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        // Steal half of some victim's queue (from the front: the
        // shallowest, largest subproblems).
        let steal_started = self.tel.enabled.then(Instant::now);
        let workers = self.queues.len();
        for offset in 1..workers {
            let victim = (worker + offset) % workers;
            let mut stolen: VecDeque<Job<P::State>> = {
                let mut q = self.queues[victim].lock().unwrap();
                let take = q.len().div_ceil(2);
                let stolen: VecDeque<Job<P::State>> = q.drain(..take).collect();
                if self.tel.enabled && take > 0 {
                    self.tel.queue_len[victim].set(q.len() as u64);
                }
                stolen
            };
            if let Some(job) = stolen.pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.frontier.fetch_sub(1, Ordering::Relaxed);
                let kept = stolen.len();
                if !stolen.is_empty() {
                    let mut q = self.queues[worker].lock().unwrap();
                    q.extend(stolen);
                    if self.tel.enabled {
                        self.tel.queue_len[worker].set(q.len() as u64);
                    }
                }
                if let Some(started) = steal_started {
                    self.tel
                        .steal_wait_ns
                        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                if tw.is_enabled() {
                    tw.instant_with(
                        "steal",
                        [
                            ("victim", TraceArg::U64(victim as u64)),
                            ("jobs", TraceArg::U64(kept as u64 + 1)),
                        ],
                    );
                }
                return Some(job);
            }
        }
        None
    }

    /// The worker main loop: pull, expand, repeat; park when idle.
    fn worker(&self, idx: usize) {
        let tw = self.trace_worker(idx);
        let mut scratch = vec![0u32; self.n];
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            match self.pop_job(idx, &tw) {
                Some(job) => {
                    self.expand(idx, job, &mut scratch, &tw);
                    if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                        self.wakeup.notify_all();
                    }
                }
                None => {
                    if self.outstanding.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    let guard = self.park.lock().unwrap();
                    if self.outstanding.load(Ordering::SeqCst) == 0
                        || self.stop.load(Ordering::Relaxed)
                    {
                        return;
                    }
                    let _ = self.wakeup.wait_timeout(guard, PARK_TIMEOUT).unwrap();
                }
            }
        }
    }

    /// One step of `pid` applied to `state` **in place**; checks the
    /// specification and records any violation (returning `Err`).
    ///
    /// States are only cloned when a genuinely new one enters the
    /// visited table — the dominant dedup-hit case costs one local
    /// state (and at most one object) clone instead of a full global
    /// state. The Zobrist fingerprint `fp` is updated in O(1): only
    /// the changed components are XORed out and back in. The returned
    /// [`Undo`] restores `state` and `fp` exactly.
    fn apply_step(
        &self,
        node: &Arc<Node>,
        state: &mut StateKey<P::State>,
        fp: &mut u64,
        pid: Pid,
    ) -> Result<Undo<P::State>, ()> {
        let old_stepped = state.stepped;
        let old_fp = *fp;
        match self.proto.next_action(&state.states[pid]) {
            Action::Invoke(op) => {
                let obj_idx = op.obj.0;
                let old_object = state.mem.object(op.obj).cloned().map(|o| (obj_idx, o));
                match state.mem.apply(pid, &op) {
                    Ok(resp) => {
                        let old_local = state.states[pid].clone();
                        self.proto.on_response(&mut state.states[pid], resp);
                        state.stepped |= 1 << pid;
                        *fp ^= component_hash(1 + pid, &old_local)
                            ^ component_hash(1 + pid, &state.states[pid]);
                        if let Some((idx, old)) = &old_object {
                            let c = 1 + 2 * self.n + idx;
                            *fp ^= component_hash(c, old)
                                ^ component_hash(c, &state.mem.objects()[*idx]);
                        }
                        if state.stepped != old_stepped {
                            *fp ^=
                                component_hash(0, &old_stepped) ^ component_hash(0, &state.stepped);
                        }
                        Ok(Undo {
                            pid,
                            old_local: Some(old_local),
                            old_object,
                            old_stepped,
                            old_fp,
                            decided: false,
                        })
                    }
                    Err(err) => {
                        self.record_violation(Violation {
                            kind: ViolationKind::IllegalOperation,
                            description: format!("p{pid} applied {op}: {err}"),
                            schedule: self.schedule_of(node, Some(pid)),
                        });
                        Err(())
                    }
                }
            }
            Action::Decide(v) => {
                state.stepped |= 1 << pid;
                if let Err((kind, description)) =
                    check_decision(&self.config.spec, &state.decisions, state.stepped, pid, &v)
                {
                    self.record_violation(Violation {
                        kind,
                        description,
                        schedule: self.schedule_of(node, Some(pid)),
                    });
                    return Err(());
                }
                let c = 1 + self.n + pid;
                *fp ^= component_hash(c, &state.decisions[pid]);
                state.decisions[pid] = Some(v);
                *fp ^= component_hash(c, &state.decisions[pid]);
                if state.stepped != old_stepped {
                    *fp ^= component_hash(0, &old_stepped) ^ component_hash(0, &state.stepped);
                }
                Ok(Undo {
                    pid,
                    old_local: None,
                    old_object: None,
                    old_stepped,
                    old_fp,
                    decided: true,
                })
            }
        }
    }

    /// Expands `job.node` by generating every enabled successor of its
    /// representative state.
    fn expand(&self, worker: usize, job: Job<P::State>, local_best: &mut [u32], tw: &TraceWorker) {
        let Job {
            mut state,
            mut fp,
            node,
        } = job;
        if self.tel.enabled {
            self.tel.frontier_depth.record(u64::from(node.depth));
        }
        let mut span = tw.begin("expand");
        span.arg("depth", u64::from(node.depth));
        let n = self.n;
        local_best.fill(0);
        let mut terminal = true;
        // Reverse pid order: the owner pops its deque LIFO, so pushing
        // high pids first makes a lone worker explore pid 0 first —
        // keeping serial violation discovery in lowest-schedule order.
        for pid in (0..n).rev() {
            if state.decisions[pid].is_some() {
                continue;
            }
            terminal = false;
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let Ok(undo) = self.apply_step(&node, &mut state, &mut fp, pid) else {
                return;
            };
            debug_assert_eq!(fp, zobrist(&state), "incremental fingerprint diverged");
            let canonical = self.canon.canonicalize(&state);
            let (canon_state, succ_perm, canon_fp) = match &canonical {
                Some((c, perm)) => (c, Some(&**perm), zobrist(c)),
                None => (&state, None, fp),
            };
            let shard_idx = (canon_fp >> 58) as usize % SHARDS;
            let mut shard = self.lock_shard(shard_idx);
            let hit = shard
                .get(&canon_fp)
                .and_then(|e| KM::find(e, canon_state))
                .cloned();
            if let Some(child) = hit {
                drop(shard);
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                if self.tel.enabled {
                    self.tel.live_dedup_hits.inc();
                }
                if tw.is_enabled() {
                    tw.instant_with(
                        "dedup_hit",
                        [
                            ("pid", TraceArg::U64(pid as u64)),
                            ("depth", TraceArg::U64(u64::from(node.depth) + 1)),
                        ],
                    );
                    if succ_perm.is_some() {
                        tw.instant_with("symmetry_hit", [("pid", TraceArg::U64(pid as u64))]);
                    }
                }
                self.attach_child(&node, pid, &child, succ_perm, local_best);
            } else {
                let count = self.states.fetch_add(1, Ordering::Relaxed) + 1;
                if count > self.config.max_states {
                    drop(shard);
                    self.exhausted.store(true, Ordering::Relaxed);
                    self.stop.store(true, Ordering::Relaxed);
                    self.wakeup.notify_all();
                    return;
                }
                node.pending.fetch_add(1, Ordering::SeqCst);
                let child = Arc::new(Node {
                    depth: node.depth + 1,
                    parent: Some((node.clone(), pid)),
                    rep_perm: succ_perm.map(Box::from),
                    pending: AtomicU32::new(1),
                    inner: Mutex::new(NodeInner {
                        best: vec![0; n],
                        // The discovery edge's waiter, registered at
                        // construction (the node is not yet visible to
                        // any other worker). The child's representative
                        // is the *uncanonical* successor, whose
                        // coordinates already match the parent's — no
                        // translation needed.
                        waiters: vec![Waiter {
                            parent: node.clone(),
                            step_pid: pid,
                            map: None,
                        }],
                        done: false,
                    }),
                });
                KM::insert(&mut shard, canon_fp, canon_state, child.clone());
                drop(shard);
                self.deepest
                    .fetch_max(node.depth as usize + 1, Ordering::Relaxed);
                if self.tel.enabled {
                    self.tel.live_states.inc();
                    self.tel.live_deepest.max(u64::from(node.depth) + 1);
                }
                self.push_job(
                    worker,
                    Job {
                        state: state.clone(),
                        fp,
                        node: child,
                    },
                );
            }
            undo.revert(&mut state, &mut fp);
        }
        if terminal {
            self.terminals.fetch_add(1, Ordering::Relaxed);
        } else {
            let mut inner = node.inner.lock().unwrap();
            for (b, l) in inner.best.iter_mut().zip(local_best.iter()) {
                *b = (*b).max(*l);
            }
        }
        // Drop the expansion's own obligation token.
        if node.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finish(node);
        }
    }

    /// Handles a dedup hit: combine a finished child's bounds now, or
    /// register a waiter on an in-progress child.
    fn attach_child(
        &self,
        parent: &Arc<Node>,
        pid: Pid,
        child: &Arc<Node>,
        succ_perm: Option<&[Pid]>,
        local_best: &mut [u32],
    ) {
        let map = rep_map(child.rep_perm.as_deref(), succ_perm, self.n);
        // Combining under the child's lock avoids cloning its bounds on
        // the (dominant) already-finished path; `local_best` is
        // worker-local and no other lock is held, so this cannot
        // deadlock.
        let mut inner = child.inner.lock().unwrap();
        if inner.done {
            combine(local_best, &inner.best, map_ref(&map), pid);
        } else {
            parent.pending.fetch_add(1, Ordering::SeqCst);
            inner.waiters.push(Waiter {
                parent: parent.clone(),
                step_pid: pid,
                map,
            });
        }
    }

    /// Marks `node` done and fires its waiters, iteratively completing
    /// any parents whose last obligation this resolves.
    fn finish(&self, node: Arc<Node>) {
        let mut worklist = vec![node];
        while let Some(nd) = worklist.pop() {
            let (bounds, waiters) = {
                let mut inner = nd.inner.lock().unwrap();
                debug_assert!(!inner.done, "node finished twice");
                inner.done = true;
                (inner.best.clone(), std::mem::take(&mut inner.waiters))
            };
            for w in waiters {
                {
                    let mut inner = w.parent.inner.lock().unwrap();
                    combine(&mut inner.best, &bounds, map_ref(&w.map), w.step_pid);
                }
                if w.parent.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    worklist.push(w.parent);
                }
            }
        }
    }

    /// Builds the NotWaitFree violation after quiescence left the root
    /// incomplete: every incomplete node waits on an incomplete child,
    /// so following those edges from the root must revisit a node —
    /// exhibiting a cycle (see the module docs for why this is exactly
    /// non-wait-freedom).
    fn quiescent_cycle(&self, root: &Arc<Node>) -> Violation {
        let mut incomplete: Vec<Arc<Node>> = Vec::new();
        for shard in &self.shards {
            for entry in shard.lock().unwrap().values() {
                KM::for_each_node(entry, &mut |node| {
                    if !node.inner.lock().unwrap().done {
                        incomplete.push(node.clone());
                    }
                });
            }
        }
        // One outgoing wait edge per incomplete parent.
        let mut waits_on: HashMap<usize, Arc<Node>> = HashMap::new();
        for child in &incomplete {
            for w in &child.inner.lock().unwrap().waiters {
                waits_on.insert(Arc::as_ptr(&w.parent) as usize, child.clone());
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut cur = root.clone();
        while seen.insert(Arc::as_ptr(&cur) as usize) {
            cur = waits_on
                .get(&(Arc::as_ptr(&cur) as usize))
                .expect("at quiescence an incomplete node waits on an incomplete child")
                .clone();
        }
        Violation {
            kind: ViolationKind::NotWaitFree,
            description: "state graph cycle: a schedule exists on which a process \
                          takes unboundedly many steps without deciding"
                .into(),
            schedule: self.schedule_of(&cur, None),
        }
    }

    /// Creates and enqueues the root node; `None` if even one state
    /// exceeds the budget.
    fn seed(&self, init: StateKey<P::State>) -> Option<Arc<Node>> {
        let count = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if count > self.config.max_states {
            self.exhausted.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return None;
        }
        let canonical = self.canon.canonicalize(&init);
        let root = Arc::new(Node {
            depth: 0,
            parent: None,
            rep_perm: canonical.as_ref().map(|(_, perm)| perm.clone()),
            pending: AtomicU32::new(1),
            inner: Mutex::new(NodeInner {
                best: vec![0; self.n],
                waiters: Vec::new(),
                done: false,
            }),
        });
        let init_fp = zobrist(&init);
        {
            let (canon_state, canon_fp) = match canonical.as_ref() {
                Some((c, _)) => (c, zobrist(c)),
                None => (&init, init_fp),
            };
            let shard_idx = (canon_fp >> 58) as usize % SHARDS;
            let mut shard = self.shards[shard_idx].lock().unwrap();
            KM::insert(&mut shard, canon_fp, canon_state, root.clone());
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.frontier.fetch_add(1, Ordering::Relaxed);
        self.peak_frontier.fetch_max(1, Ordering::Relaxed);
        self.injector.lock().unwrap().push_back(Job {
            state: init,
            fp: init_fp,
            node: root.clone(),
        });
        Some(root)
    }

    /// Assembles the final report once all workers have returned.
    fn report(&self, root: Option<Arc<Node>>, started: Instant, workers: usize) -> Report {
        let duration = started.elapsed();
        let states = self
            .states
            .load(Ordering::Relaxed)
            .min(self.config.max_states);
        let stats = ExploreStats {
            workers,
            duration,
            states_per_sec: states as f64 / duration.as_secs_f64().max(1e-9),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            peak_frontier: self.peak_frontier.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            shard_contention: self.contention.load(Ordering::Relaxed),
        };
        let terminals = self.terminals.load(Ordering::Relaxed);
        let violation = self.violation.lock().unwrap().take();
        let (outcome, bounds) = if let Some(v) = violation {
            (ExploreOutcome::Violated(v), Vec::new())
        } else {
            match &root {
                Some(root) => {
                    let inner = root.inner.lock().unwrap();
                    if inner.done {
                        let bounds = inner.best.iter().map(|&b| b as usize).collect();
                        (ExploreOutcome::Verified, bounds)
                    } else {
                        drop(inner);
                        if self.exhausted.load(Ordering::Relaxed) {
                            let deepest = self.deepest.load(Ordering::Relaxed);
                            (ExploreOutcome::Exhausted { states, deepest }, Vec::new())
                        } else {
                            (
                                ExploreOutcome::Violated(self.quiescent_cycle(root)),
                                Vec::new(),
                            )
                        }
                    }
                }
                None => (ExploreOutcome::Exhausted { states, deepest: 0 }, Vec::new()),
            }
        };
        let report = Report {
            outcome,
            states,
            terminals,
            max_steps_per_proc: bounds,
            stats,
        };
        report.record_to(&self.config.telemetry);
        report
    }
}

/// Runs the engine single-threaded on the calling thread (no `Send`
/// or `Sync` requirements; with one LIFO deque this is a plain DFS).
pub(crate) fn run_serial<P, C, KM>(
    proto: &P,
    init: StateKey<P::State>,
    config: &ExploreConfig,
    canon: C,
) -> Report
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
    KM: KeyMode<P::State>,
{
    let started = Instant::now();
    let shared: Shared<'_, P, C, KM> = Shared::new(proto, config, canon, 1);
    let root = shared.seed(init);
    if root.is_some() {
        shared.worker(0);
    }
    shared.report(root, started, 1)
}

/// Runs the engine on `workers` scoped threads with work stealing.
pub(crate) fn run_parallel<P, C, KM>(
    proto: &P,
    init: StateKey<P::State>,
    config: &ExploreConfig,
    canon: C,
    workers: usize,
) -> Report
where
    P: Protocol + Sync,
    P::State: Clone + Hash + Eq + Send,
    C: Canonicalizer<P> + Sync,
    KM: KeyMode<P::State>,
    KM::Entry: Send,
{
    debug_assert!(workers >= 2);
    let started = Instant::now();
    let shared: Shared<'_, P, C, KM> = Shared::new(proto, config, canon, workers);
    let root = shared.seed(init);
    if root.is_some() {
        std::thread::scope(|s| {
            for idx in 0..workers {
                let shared = &shared;
                s.spawn(move || shared.worker(idx));
            }
        });
    }
    shared.report(root, started, workers)
}

/// Dispatches on [`DedupMode`] for the serial engine.
pub(crate) fn dispatch_serial<P, C>(
    proto: &P,
    init: StateKey<P::State>,
    config: &ExploreConfig,
    canon: C,
) -> Report
where
    P: Protocol,
    P::State: Clone + Hash + Eq,
    C: Canonicalizer<P>,
{
    match config.dedup {
        DedupMode::Exact => run_serial::<P, C, ExactKeys>(proto, init, config, canon),
        DedupMode::Fingerprint => run_serial::<P, C, FingerprintKeys>(proto, init, config, canon),
    }
}

/// Dispatches on [`DedupMode`] for the parallel engine.
pub(crate) fn dispatch_parallel<P, C>(
    proto: &P,
    init: StateKey<P::State>,
    config: &ExploreConfig,
    canon: C,
    workers: usize,
) -> Report
where
    P: Protocol + Sync,
    P::State: Clone + Hash + Eq + Send,
    C: Canonicalizer<P> + Sync,
{
    match config.dedup {
        DedupMode::Exact => run_parallel::<P, C, ExactKeys>(proto, init, config, canon, workers),
        DedupMode::Fingerprint => {
            run_parallel::<P, C, FingerprintKeys>(proto, init, config, canon, workers)
        }
    }
}

fn map_ref(map: &Option<Box<[Pid]>>) -> Option<&[Pid]> {
    map.as_deref()
}

/// `parent_best[p] = max(parent_best[p], child_best[map(p)] + (p == step_pid))`.
fn combine(parent_best: &mut [u32], child_best: &[u32], map: Option<&[Pid]>, step_pid: Pid) {
    for (p, b) in parent_best.iter_mut().enumerate() {
        let idx = map.map_or(p, |m| m[p]);
        let total = child_best[idx] + u32::from(p == step_pid);
        if total > *b {
            *b = total;
        }
    }
}

/// Composes the coordinate translation for a dedup edge.
///
/// `child_perm` maps the child's representative coordinates to
/// canonical coordinates; `succ_perm` maps the generated successor's
/// coordinates (= the parent side) to the same canonical coordinates.
/// The parent-side bound of process `p` is the child's bound of
/// process `child_perm⁻¹(succ_perm(p))`. Returns `None` for the
/// identity.
fn rep_map(child_perm: Option<&[Pid]>, succ_perm: Option<&[Pid]>, n: usize) -> Option<Box<[Pid]>> {
    if child_perm.is_none() && succ_perm.is_none() {
        return None;
    }
    let mut inv: Vec<Pid> = (0..n).collect();
    if let Some(cp) = child_perm {
        for (p, &q) in cp.iter().enumerate() {
            inv[q] = p;
        }
    }
    let map: Vec<Pid> = (0..n)
        .map(|p| inv[succ_perm.map_or(p, |sp| sp[p])])
        .collect();
    if map.iter().enumerate().all(|(i, &v)| i == v) {
        None
    } else {
        Some(map.into_boxed_slice())
    }
}
