//! Asynchronous shared-memory simulation for the `bso` workspace.
//!
//! This crate is the *model* layer of the reproduction of Afek & Stupp,
//! "Delimiting the Power of Bounded Size Synchronization Objects"
//! (PODC 1994). The paper's results quantify over all runs of wait-free
//! protocols in an asynchronous shared-memory system; this crate makes
//! runs first-class values:
//!
//! * [`Protocol`] — protocols are explicit state machines that perform
//!   exactly **one atomic shared-memory operation per step**, so every
//!   interleaving of steps is a legal run and histories are
//!   linearizable by construction.
//! * [`Simulation`] — executes a protocol under a pluggable
//!   [`Scheduler`] (round-robin, seeded random, scripted) with optional
//!   crash injection, recording a [`Trace`].
//! * [`Explorer`] — an exhaustive model checker over *all*
//!   interleavings, configured through one builder (serial or
//!   parallel, plain or symmetry-reduced, optionally pruned by dynamic
//!   partial-order reduction with sleep sets). For a finite-state protocol
//!   instance it decides agreement, validity and wait-freedom outright
//!   (acyclicity of the reachable state graph is exactly
//!   solo-termination, i.e. wait-freedom — see the module docs).
//! * [`refute`] — extracts concrete counterexample schedules from
//!   explorer violations, the executable counterpart of the
//!   FLP/Loui–Abu-Amara style impossibility arguments the paper builds
//!   on.
//! * [`artifact`] — those counterexamples serialized as replayable
//!   `bso-schedule/v1` JSON artifacts;
//!   [`Explorer::replay`] re-executes one deterministically and
//!   [`verify_replay`] checks it reproduced its claim.
//! * [`checker`] — run-level specifications behind the [`RunChecker`]
//!   trait: leader election (consistency/validity/wait-freedom as in
//!   Section 2 of the paper), consensus, `l`-set consensus and step
//!   bounds.
//! * [`thread_runner`] — drives the *same* state machines against the
//!   hardware-atomic backend of `bso-objects` on real OS threads.
//! * [`linearizability`] — a Wing–Gong style checker validating
//!   concurrent histories recorded from the hardware backend against
//!   the sequential object specifications.
//!
//! # Example: electing a leader with a test&set bit
//!
//! ```
//! use bso_objects::{Layout, ObjectInit, Op, OpKind, Value};
//! use bso_sim::{Action, Protocol, Simulation, scheduler::RoundRobin};
//!
//! /// Two processes: whoever wins the test&set elects itself; the loser
//! /// elects the winner by reading the winner's announcement.
//! struct TasElection;
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! enum St {
//!     Announce(usize),
//!     Grab(usize),
//!     AwaitGrab(usize),
//!     ReadPeer(usize),
//!     AwaitPeer(usize),
//!     Done(usize),
//! }
//!
//! impl Protocol for TasElection {
//!     type State = St;
//!     fn processes(&self) -> usize { 2 }
//!     fn layout(&self) -> Layout {
//!         let mut l = Layout::new();
//!         l.push(ObjectInit::TestAndSet);            // o0: the bit
//!         l.push_n(ObjectInit::Register(Value::Nil), 2); // o1,o2: announcements
//!         l
//!     }
//!     fn init(&self, pid: usize, _input: &Value) -> St { St::Announce(pid) }
//!     fn next_action(&self, st: &St) -> Action {
//!         match st {
//!             St::Announce(p) => Action::Invoke(Op::write(
//!                 bso_objects::ObjectId(1 + p), Value::Pid(*p))),
//!             St::Grab(_) => Action::Invoke(Op::new(
//!                 bso_objects::ObjectId(0), OpKind::TestAndSet)),
//!             St::ReadPeer(p) => Action::Invoke(Op::read(
//!                 bso_objects::ObjectId(1 + (1 - p)))),
//!             St::Done(p) => Action::Decide(Value::Pid(*p)),
//!             St::AwaitGrab(_) | St::AwaitPeer(_) => unreachable!(),
//!         }
//!     }
//!     fn on_response(&self, st: &mut St, resp: Value) {
//!         *st = match st.clone() {
//!             St::Announce(p) => St::Grab(p),
//!             St::Grab(p) => {
//!                 if resp == Value::Bool(false) { St::Done(p) } else { St::ReadPeer(p) }
//!             }
//!             St::ReadPeer(p) => St::Done(resp.as_pid().expect("peer announced first")),
//!             other => other,
//!         };
//!     }
//! }
//!
//! let proto = TasElection;
//! let mut sim = Simulation::new(&proto, &[Value::Pid(0), Value::Pid(1)]);
//! let result = sim.run(&mut RoundRobin::new(), 1000).unwrap();
//! let winners: Vec<_> = result.decisions.iter().flatten().collect();
//! assert_eq!(winners[0], winners[1]); // both elected the same leader
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulator error paths are cold; boxing RunError would only obscure them.
#![allow(clippy::result_large_err)]

pub mod artifact;
pub mod checker;
pub mod checkpoint;
mod dpor;
mod engine;
mod explore;
pub mod fingerprint;
pub mod linearizability;
mod memory;
mod protocol;
pub mod record;
pub mod refute;
pub mod scheduler;
mod sim;
pub mod symmetry;
pub mod thread_runner;
mod trace;
pub mod valence;
pub mod viz;

pub use artifact::{verify_replay, ArtifactError, ScheduleArtifact};
pub use checker::{
    CheckerSet, ConsensusChecker, ElectionChecker, RunChecker, SetConsensusChecker,
    StepBoundChecker, WaitFreeChecker,
};
pub use checkpoint::Checkpoint;
pub use explore::{
    CrashEvent, DedupMode, ExploreConfig, ExploreOutcome, ExploreStats, Explorer, FrontierEntry,
    InterruptReason, Report as ExploreReport, TaskSpec, Violation, ViolationKind,
};
pub use linearizability::{check_history, NotLinearizable};
pub use memory::SharedMemory;
pub use protocol::{Action, DecideHint, Footprint, Pid, Protocol, ProtocolExt};
pub use record::{RecordedOp, RecordingMemory};
pub use scheduler::Scheduler;
pub use sim::{CrashPlan, ProcStatus, RunError, RunResult, Simulation};
pub use symmetry::SymmetricProtocol;
pub use trace::{Event, EventKind, Trace};
