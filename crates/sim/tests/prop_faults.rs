//! Property: with the crash adversary *disabled* (`faults(0)`, the
//! default), the fault-injection machinery is invisible — every report
//! field that defines the verdict (outcome, state count, terminals,
//! deepest prefix, wait-freedom witness) is bit-identical to a
//! crash-free exploration, in every mode (serial/parallel ×
//! exact/fingerprint keys).
//!
//! This is the contract that lets `faults` default to 0 without a
//! separate code path: crash branches are generated only for pids the
//! adversary may still kill, and the per-state metadata (crashed mask,
//! step counters) hashes to the same key component when empty.
//!
//! Written as seeded loops over [`SplitMix64`] (the workspace carries
//! no external property-testing crate): every case is reproducible
//! from its seed.

use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{Action, DedupMode, ExploreOutcome, Explorer, Pid, Protocol, TaskSpec};

/// One instruction of a random straight-line program with loop-backs.
#[derive(Clone, Debug)]
struct Step {
    op: Op,
    /// `Some((trigger, target))`: when the response equals `trigger`,
    /// jump back to instruction `target` instead of advancing.
    jump: Option<(Value, usize)>,
}

/// A randomly generated finite protocol over two registers and a
/// test&set bit; decisions are sometimes wrong on purpose so the
/// sample exercises violated, verified and cyclic instances alike.
#[derive(Clone, Debug)]
struct RandomProtocol {
    n: usize,
    program: Vec<Vec<Step>>,
    decide: Vec<Value>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum St {
    At { pid: Pid, pc: usize },
    Done { pid: Pid },
}

impl Protocol for RandomProtocol {
    type State = St;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::Register(Value::Nil), 2);
        l.push(ObjectInit::TestAndSet);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> St {
        if self.program[pid].is_empty() {
            St::Done { pid }
        } else {
            St::At { pid, pc: 0 }
        }
    }

    fn next_action(&self, st: &St) -> Action {
        match st {
            St::At { pid, pc } => Action::Invoke(self.program[*pid][*pc].op.clone()),
            St::Done { pid } => Action::Decide(self.decide[*pid].clone()),
        }
    }

    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::At { pid, pc } = *st {
            let step = &self.program[pid][pc];
            let next = match &step.jump {
                Some((trigger, target)) if resp == *trigger => *target,
                _ => pc + 1,
            };
            *st = if next >= self.program[pid].len() {
                St::Done { pid }
            } else {
                St::At { pid, pc: next }
            };
        }
    }
}

fn arb_protocol(rng: &mut SplitMix64, inputs: &[Value]) -> RandomProtocol {
    let n = inputs.len();
    let program = (0..n)
        .map(|_| {
            (0..rng.range_usize(1, 4))
                .map(|pc| {
                    let op = match rng.usize_below(3) {
                        0 => Op::write(
                            ObjectId(rng.usize_below(2)),
                            Value::Int(rng.usize_below(3) as i64),
                        ),
                        1 => Op::read(ObjectId(rng.usize_below(2))),
                        _ => Op::new(ObjectId(2), OpKind::TestAndSet),
                    };
                    let jump = (rng.usize_below(4) == 0).then(|| {
                        let trigger = match rng.usize_below(3) {
                            0 => Value::Nil,
                            1 => Value::Int(rng.usize_below(3) as i64),
                            _ => Value::Bool(rng.bool()),
                        };
                        (trigger, rng.usize_below(pc + 1))
                    });
                    Step { op, jump }
                })
                .collect()
        })
        .collect();
    let decide = (0..n)
        .map(|p| match rng.usize_below(4) {
            0 => Value::Int(99), // no one's input: a validity violation
            1 => inputs[rng.usize_below(n)].clone(),
            _ => inputs[p].clone(),
        })
        .collect();
    RandomProtocol { n, program, decide }
}

/// The verdict-defining report fields, extracted for comparison.
fn verdict_fields(report: &bso_sim::ExploreReport) -> (ExploreOutcome, usize, usize, Vec<usize>) {
    (
        report.outcome.clone(),
        report.states,
        report.terminals,
        report.max_steps_per_proc.clone(),
    )
}

#[test]
fn explicit_faults_zero_is_bit_identical_to_crash_free() {
    let mut rng = SplitMix64::new(0xFA017);
    let (mut violated, mut verified) = (0usize, 0usize);
    for case in 0..40 {
        let n = rng.range_usize(2, 4);
        // A 2-value input pool: coinciding inputs let some candidates
        // genuinely verify, distinct ones make most refutable — both
        // sides of the identity get exercised.
        let inputs: Vec<Value> = (0..n)
            .map(|_| Value::Int(10 + rng.usize_below(2) as i64))
            .collect();
        let proto = arb_protocol(&mut rng, &inputs);
        let spec = TaskSpec::Consensus(inputs.clone());
        for (mode, parallel, dedup) in [
            ("serial/exact", false, DedupMode::Exact),
            ("serial/fingerprint", false, DedupMode::Fingerprint),
            ("parallel/exact", true, DedupMode::Exact),
            ("parallel/fingerprint", true, DedupMode::Fingerprint),
        ] {
            let base = Explorer::new(&proto)
                .inputs(&inputs)
                .spec(spec.clone())
                .workers(2)
                .dedup(dedup)
                .parallel(parallel);
            let plain = base.clone().run();
            let zeroed = base.clone().faults(0).run();
            if parallel {
                // A violation stops workers early, so on refuted cases
                // the racy fields (states, which counterexample won)
                // are run-dependent; the verdict itself is not.
                assert_eq!(
                    plain.outcome.is_verified(),
                    zeroed.outcome.is_verified(),
                    "case {case} ({mode}): faults(0) changed the verdict: {proto:?}"
                );
                if plain.outcome.is_verified() {
                    assert_eq!(
                        verdict_fields(&plain),
                        verdict_fields(&zeroed),
                        "case {case} ({mode}): faults(0) changed the report: {proto:?}"
                    );
                }
            } else {
                assert_eq!(
                    verdict_fields(&plain),
                    verdict_fields(&zeroed),
                    "case {case} ({mode}): faults(0) changed the report: {proto:?}"
                );
            }
            assert_eq!(
                plain.stats.crash_branches, 0,
                "case {case} ({mode}): crash-free run counted crash branches"
            );
            if parallel || dedup == DedupMode::Fingerprint {
                continue;
            }
            match &plain.outcome {
                ExploreOutcome::Violated(v) => {
                    violated += 1;
                    assert!(
                        v.crashes.is_empty(),
                        "case {case}: crash-free counterexample has crashes: {v}"
                    );
                }
                ExploreOutcome::Verified => verified += 1,
                _ => {}
            }
        }
    }
    // The sample must genuinely exercise both sides of the property.
    assert!(
        violated >= 10,
        "only {violated} refuted cases — weak sample"
    );
    assert!(
        verified >= 5,
        "only {verified} verified cases — weak sample"
    );
}

#[test]
fn serial_and_parallel_agree_under_the_crash_adversary() {
    // With faults *enabled* the verdict-defining fields must still be
    // mode-independent: the crash-extended state graph is the same
    // graph no matter how many workers walk it.
    let mut rng = SplitMix64::new(0xFA117);
    for case in 0..15 {
        let n = rng.range_usize(2, 4);
        let inputs: Vec<Value> = (0..n)
            .map(|_| Value::Int(10 + rng.usize_below(2) as i64))
            .collect();
        let proto = arb_protocol(&mut rng, &inputs);
        let spec = TaskSpec::Consensus(inputs.clone());
        let base = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(spec)
            .faults(1)
            .step_bound(12)
            .workers(2);
        let serial = base.clone().run();
        let parallel = base.clone().parallel(true).run();
        assert_eq!(
            serial.outcome.is_verified(),
            parallel.outcome.is_verified(),
            "case {case}: serial/parallel verdicts diverged under faults(1): {proto:?}"
        );
        if serial.outcome.is_verified() {
            // Verified means the whole crash-extended graph was walked,
            // so every counter is a graph property, not a race.
            assert_eq!(
                verdict_fields(&serial),
                verdict_fields(&parallel),
                "case {case}: serial/parallel reports diverged under faults(1): {proto:?}"
            );
            assert_eq!(
                serial.stats.crash_branches, parallel.stats.crash_branches,
                "case {case}: crash branch counts diverged"
            );
        }
    }
}
