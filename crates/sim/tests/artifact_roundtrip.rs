//! A counterexample found by the explorer must survive the full
//! artifact life cycle: serialize to `bso-schedule/v1` JSON, parse
//! back identically, replay deterministically (two replays produce the
//! *same* [`Trace`]), and reproduce the recorded violation under
//! [`verify_replay`].

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{
    verify_replay, Action, ExploreOutcome, Explorer, Pid, Protocol, ScheduleArtifact, TaskSpec,
    ViolationKind,
};
use bso_telemetry::json;

/// A deliberately broken election: both processes grab the test&set
/// bit and then elect *themselves* regardless of who won, so every
/// complete run disagrees.
struct BrokenElection;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum St {
    Grab(usize),
    Done(usize),
}

impl Protocol for BrokenElection {
    type State = St;
    fn processes(&self) -> usize {
        2
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet);
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Grab(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, _resp: Value) {
        if let St::Grab(p) = st {
            *st = St::Done(*p);
        }
    }
}

fn refuted_artifact() -> ScheduleArtifact {
    let explorer = Explorer::new(&BrokenElection)
        .protocol_id("broken-election")
        .spec(TaskSpec::Election);
    let report = explorer.run();
    let ExploreOutcome::Violated(v) = &report.outcome else {
        panic!("BrokenElection must be refuted, got {:?}", report.outcome);
    };
    assert_eq!(v.kind, ViolationKind::Agreement);
    explorer.artifact_for(v)
}

#[test]
fn artifact_json_round_trips_exactly() {
    let artifact = refuted_artifact();
    assert_eq!(artifact.protocol, "broken-election");
    assert_eq!(artifact.kind, Some(ViolationKind::Agreement));
    let text = artifact.to_json_string();
    let parsed = ScheduleArtifact::from_json(&json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed, artifact);
}

#[test]
fn artifact_file_round_trips_exactly() {
    let artifact = refuted_artifact();
    let path = std::env::temp_dir().join(format!(
        "bso-artifact-roundtrip-{}.json",
        std::process::id()
    ));
    artifact.save(&path).unwrap();
    let loaded = ScheduleArtifact::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, artifact);
}

#[test]
fn replay_is_deterministic_and_reproduces_the_violation() {
    let artifact = refuted_artifact();
    let explorer = Explorer::new(&BrokenElection)
        .protocol_id("broken-election")
        .spec(TaskSpec::Election);
    let first = explorer.replay(&artifact);
    let second = explorer.replay(&artifact);
    let (a, b) = (first.as_ref().unwrap(), second.as_ref().unwrap());
    assert_eq!(a.trace, b.trace, "two replays must record identical traces");
    assert_eq!(a.decisions, b.decisions);
    // The replayed run violates exactly what the artifact claims.
    verify_replay(&artifact, &first).expect("the recorded violation must reproduce");
    // And the trace's own schedule matches the artifact's.
    assert_eq!(a.trace.schedule(), artifact.schedule);
}
