//! A panicking protocol implementation must not take the explorer
//! down with it: the worker pool catches the unwind, drains cleanly
//! (no hang, no abort), and reports a structured
//! [`ViolationKind::Panic`] violation whose schedule reaches the state
//! whose expansion blew up — replayable like any other counterexample.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, Value};
use bso_sim::{
    verify_replay, Action, ExploreOutcome, Explorer, Pid, Protocol, TaskSpec, ViolationKind,
};

/// Decides fine for p0; p1 panics when asked for its *second* action —
/// so the bug is only reachable one step deep, and only the explorer
/// (not initialization) trips it.
struct Landmine;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum St {
    Start(usize),
    Armed,
    Done(usize),
}

impl Protocol for Landmine {
    type State = St;
    fn processes(&self) -> usize {
        2
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Register(Value::Nil));
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Start(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Start(_) => Action::Invoke(Op::read(ObjectId(0))),
            St::Armed => panic!("landmine stepped on"),
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, _resp: Value) {
        *st = match &*st {
            St::Start(1) => St::Armed,
            St::Start(p) => St::Done(*p),
            other => other.clone(),
        };
    }
}

fn assert_panic_violation(report: &bso_sim::ExploreReport) -> bso_sim::Violation {
    let ExploreOutcome::Violated(v) = &report.outcome else {
        panic!("expected a Panic violation, got {:?}", report.outcome);
    };
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(
        v.description.contains("landmine stepped on"),
        "panic payload must be quoted: {}",
        v.description
    );
    // The schedule stops *before* the step whose expansion panicked:
    // the recorded prefix reaches the armed state, which p1 enters on
    // its first step (so exactly one p1 step appears, and it is last).
    assert_eq!(
        v.schedule.last(),
        Some(&1),
        "prefix must end entering Armed: {v}"
    );
    assert_eq!(
        v.schedule.iter().filter(|&&p| p == 1).count(),
        1,
        "p1 panics on its second action: {v}"
    );
    v.clone()
}

#[test]
fn serial_exploration_survives_a_panicking_protocol() {
    // Suppress the default panic hook's stderr spew for the expected
    // unwind; restore it afterwards so real failures still print.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = Explorer::new(&Landmine).spec(TaskSpec::Election).run();
    std::panic::set_hook(hook);
    assert_panic_violation(&report);
}

#[test]
fn parallel_pool_drains_cleanly_after_a_panic() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = Explorer::new(&Landmine)
        .spec(TaskSpec::Election)
        .parallel(true)
        .workers(4)
        .run();
    std::panic::set_hook(hook);
    let ExploreOutcome::Violated(v) = &report.outcome else {
        panic!("expected a Panic violation, got {:?}", report.outcome);
    };
    // Parallel workers race, so another violation (there is none here)
    // or a differently-rooted panic schedule could win; the kind and
    // payload are deterministic.
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.description.contains("landmine stepped on"));
}

#[test]
fn panic_counterexamples_replay_their_prefix() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let explorer = Explorer::new(&Landmine)
        .protocol_id("landmine")
        .spec(TaskSpec::Election);
    let report = explorer.run();
    std::panic::set_hook(hook);
    let v = assert_panic_violation(&report);

    let artifact = explorer.artifact_for(&v);
    let rendered = artifact.to_json().render();
    let reparsed =
        bso_sim::ScheduleArtifact::from_json(&bso_telemetry::json::parse(&rendered).unwrap())
            .unwrap();
    let outcome = explorer.replay(&reparsed);
    let verdict = verify_replay(&reparsed, &outcome).unwrap();
    assert!(
        verdict.contains("panic-prefix"),
        "verdict should describe the panic prefix: {verdict}"
    );
}
