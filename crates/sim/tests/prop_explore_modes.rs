//! Property: the fingerprint-keyed explorer never reports `Verified`
//! on an instance the exact-keyed explorer refutes.
//!
//! A 64-bit fingerprint collision can silently merge two distinct
//! states and thereby *lose* part of the state space — the documented
//! failure mode is a wrong `Verified`, never a fabricated
//! counterexample. This suite drives both key modes (serial and
//! parallel) over seeded random finite protocols and checks the
//! contract, and additionally replays every counterexample the
//! fingerprint mode produces to confirm it is genuine.
//!
//! Written as seeded loops over [`SplitMix64`] (the workspace carries
//! no external property-testing crate): every case is reproducible
//! from its seed, and failure messages report the case index.

use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{
    Action, DedupMode, ExploreOutcome, Explorer, Pid, Protocol, Simulation, TaskSpec, ViolationKind,
};

/// One straight-line-with-loop-backs instruction of a random program.
#[derive(Clone, Debug)]
struct Step {
    op: Op,
    /// `Some((trigger, target))`: when the response equals `trigger`,
    /// jump back to instruction `target` instead of advancing — the
    /// source of both bounded retries and genuine livelocks.
    jump: Option<(Value, usize)>,
}

/// A randomly generated finite protocol: each process runs a short
/// program of register/test&set operations and then decides a fixed
/// value. Registers hold values from a 3-element pool, so the state
/// space is small and exactly explorable.
#[derive(Clone, Debug)]
struct RandomProtocol {
    n: usize,
    program: Vec<Vec<Step>>,
    decide: Vec<Value>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum St {
    At { pid: Pid, pc: usize },
    Done { pid: Pid },
}

impl Protocol for RandomProtocol {
    type State = St;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::Register(Value::Nil), 2);
        l.push(ObjectInit::TestAndSet);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> St {
        if self.program[pid].is_empty() {
            St::Done { pid }
        } else {
            St::At { pid, pc: 0 }
        }
    }

    fn next_action(&self, st: &St) -> Action {
        match st {
            St::At { pid, pc } => Action::Invoke(self.program[*pid][*pc].op.clone()),
            St::Done { pid } => Action::Decide(self.decide[*pid].clone()),
        }
    }

    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::At { pid, pc } = *st {
            let step = &self.program[pid][pc];
            let next = match &step.jump {
                Some((trigger, target)) if resp == *trigger => *target,
                _ => pc + 1,
            };
            *st = if next >= self.program[pid].len() {
                St::Done { pid }
            } else {
                St::At { pid, pc: next }
            };
        }
    }
}

/// Draws a random protocol instance. Decisions are deliberately
/// sometimes invalid (a constant no one proposed) or disagreeing, and
/// loop-backs sometimes spin forever, so the sample contains plenty of
/// violations of every kind alongside correct instances.
fn arb_protocol(rng: &mut SplitMix64, inputs: &[Value]) -> RandomProtocol {
    let n = inputs.len();
    let program = (0..n)
        .map(|_| {
            (0..rng.range_usize(1, 4))
                .map(|pc| {
                    let op = match rng.usize_below(3) {
                        0 => Op::write(
                            ObjectId(rng.usize_below(2)),
                            Value::Int(rng.usize_below(3) as i64),
                        ),
                        1 => Op::read(ObjectId(rng.usize_below(2))),
                        _ => Op::new(ObjectId(2), OpKind::TestAndSet),
                    };
                    let jump = (rng.usize_below(4) == 0).then(|| {
                        let trigger = match rng.usize_below(3) {
                            0 => Value::Nil,
                            1 => Value::Int(rng.usize_below(3) as i64),
                            _ => Value::Bool(rng.bool()),
                        };
                        (trigger, rng.usize_below(pc + 1))
                    });
                    Step { op, jump }
                })
                .collect()
        })
        .collect();
    let decide = (0..n)
        .map(|p| match rng.usize_below(4) {
            0 => Value::Int(99), // no one's input: a validity violation
            1 => inputs[rng.usize_below(n)].clone(),
            _ => inputs[p].clone(),
        })
        .collect();
    RandomProtocol { n, program, decide }
}

fn kind_of(outcome: &ExploreOutcome) -> Option<&ViolationKind> {
    outcome.violation().map(|v| &v.kind)
}

#[test]
fn fingerprint_mode_never_verifies_what_exact_mode_refutes() {
    let mut rng = SplitMix64::new(0x5EED_CA5E);
    let mut violated = 0usize;
    let mut verified = 0usize;
    for case in 0..80 {
        let n = rng.range_usize(2, 4);
        // A 2-value input pool: distinct inputs make every random
        // candidate refutable (deciding a peer's input is invalidated
        // by scheduling that peer last), while coinciding inputs let
        // some candidates genuinely verify — both sides get exercised.
        let inputs: Vec<Value> = (0..n)
            .map(|_| Value::Int(10 + rng.usize_below(2) as i64))
            .collect();
        let proto = arb_protocol(&mut rng, &inputs);
        let base = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Consensus(inputs.clone()));
        let exact = base.clone().run();
        let runs = [
            base.clone().dedup(DedupMode::Fingerprint).run(),
            base.clone()
                .dedup(DedupMode::Fingerprint)
                .parallel(true)
                .workers(3)
                .run(),
        ];
        for fp in &runs {
            // The central contract: a violation found by the exact
            // explorer is never papered over as `Verified` by the
            // fingerprint explorer. (At these state counts a collision
            // has probability ≈ states²/2⁶⁵ — the verdicts in fact
            // agree exactly, which is the stronger check below.)
            if exact.outcome.violation().is_some() {
                assert!(
                    !fp.outcome.is_verified(),
                    "case {case}: exact refuted but fingerprint verified: {proto:?}"
                );
            }
            assert_eq!(
                kind_of(&exact.outcome),
                kind_of(&fp.outcome),
                "case {case}: verdicts diverged: {proto:?}"
            );
            // Fingerprint counterexamples must be genuine: replay the
            // exact schedule (step by step — the run may livelock if
            // continued past it) and confirm the decisions made along
            // it already violate agreement or validity.
            if let Some(v) = fp.outcome.violation() {
                if v.kind == ViolationKind::NotWaitFree {
                    continue; // cycles don't replay to a violated terminal
                }
                let mut sim = Simulation::new(&proto, &inputs);
                for &p in &v.schedule {
                    sim.step(p).unwrap();
                }
                let res = sim.result();
                let participants = res.trace.participants();
                let valid: Vec<&Value> = participants.iter().map(|&p| &inputs[p]).collect();
                let decided: Vec<&Value> = res.decisions.iter().flatten().collect();
                let disagree = decided.iter().any(|d| **d != *decided[0]);
                let invalid = decided.iter().any(|d| !valid.contains(d));
                assert!(
                    disagree || invalid,
                    "case {case}: fingerprint counterexample did not replay: {proto:?}"
                );
            }
        }
        match &exact.outcome {
            ExploreOutcome::Violated(_) => violated += 1,
            ExploreOutcome::Verified => verified += 1,
            ExploreOutcome::Exhausted { .. } | ExploreOutcome::Interrupted { .. } => {}
        }
    }
    // The sample must genuinely exercise both sides of the property.
    assert!(
        violated >= 10,
        "only {violated} refuted cases — weak sample"
    );
    assert!(
        verified >= 5,
        "only {verified} verified cases — weak sample"
    );
}

#[test]
fn exact_and_fingerprint_agree_on_state_counts_when_verified() {
    // On verified instances the fingerprint table must (collisions
    // aside, see above) count exactly the states the exact table does:
    // the key representation changes, the graph does not.
    let mut rng = SplitMix64::new(0xF17E_C0DE);
    let mut verified = 0usize;
    for case in 0..60 {
        let n = rng.range_usize(2, 4);
        let inputs: Vec<Value> = (0..n)
            .map(|_| Value::Int(10 + rng.usize_below(2) as i64))
            .collect();
        let proto = arb_protocol(&mut rng, &inputs);
        let base = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Consensus(inputs.clone()));
        let exact = base.clone().run();
        if !exact.outcome.is_verified() {
            continue;
        }
        let fp = base.dedup(DedupMode::Fingerprint).run();
        assert!(fp.outcome.is_verified(), "case {case}: {proto:?}");
        assert_eq!(exact.states, fp.states, "case {case}: {proto:?}");
        assert_eq!(exact.terminals, fp.terminals, "case {case}: {proto:?}");
        assert_eq!(
            exact.max_steps_per_proc, fp.max_steps_per_proc,
            "case {case}: {proto:?}"
        );
        verified += 1;
    }
    assert!(
        verified >= 5,
        "only {verified} verified cases — weak sample"
    );
}
