//! Property: every reduction mode of the explorer reports the same
//! verdict.
//!
//! Dynamic partial-order reduction ([`Explorer::dpor`]) prunes
//! interleavings that provably commute; the contract is that pruning
//! never changes *what is decided about the protocol* — `Verified`
//! stays `Verified`, violations stay found (though the particular
//! counterexample schedule may differ, since fewer schedules are
//! enumerated). This suite checks the contract two ways:
//!
//! * a curated pass over the protocol catalog, where the expected
//!   verdict (and on single-kind instances, the violation kind) is
//!   known, comparing serial, parallel, DPOR, DPOR+symmetry and
//!   DPOR+faults;
//! * a seeded random sweep (the generator of `prop_explore_modes.rs`)
//!   comparing the exact explorer against DPOR in serial, parallel and
//!   fingerprint-keyed variants, replaying every DPOR counterexample
//!   to confirm it is genuine.
//!
//! Deliberately *not* asserted: state-count equality for parallel DPOR
//! (work-stealing makes the discovery order — and hence the set of
//! sleep-pruned edges and proviso escalations — racy), and
//! violation-kind equality on random instances that harbour violations
//! of several kinds (different modes may surface different ones).

use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_protocols::{CasOnlyElection, LockElection};
use bso_sim::{
    Action, DedupMode, ExploreOutcome, Explorer, Pid, Protocol, ProtocolExt, Simulation, TaskSpec,
    ViolationKind,
};

// ---------------------------------------------------------------------
// Curated catalog
// ---------------------------------------------------------------------

#[test]
fn all_modes_verify_cas_only_election() {
    for k in 4..=6 {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let base = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election);
        let plain = base.clone().run();
        let runs = [
            ("serial", base.clone().run()),
            ("parallel", base.clone().parallel(true).workers(3).run()),
            ("dpor", base.clone().dpor(true).run()),
            (
                "dpor+parallel",
                base.clone().dpor(true).parallel(true).workers(3).run(),
            ),
            ("dpor+sym", base.clone().dpor(true).symmetric(true).run()),
            (
                "dpor+fingerprint",
                base.clone().dpor(true).dedup(DedupMode::Fingerprint).run(),
            ),
            ("dpor+faults", base.clone().dpor(true).faults(1).run()),
        ];
        for (mode, report) in &runs {
            assert!(
                report.outcome.is_verified(),
                "k={k} {mode}: {:?}",
                report.outcome
            );
        }
        // DPOR must never *add* states, and past the trivial instance
        // it must genuinely prune.
        let dpor = &runs[2].1;
        assert!(
            dpor.states <= plain.states,
            "k={k}: dpor explored more states ({} vs {})",
            dpor.states,
            plain.states
        );
        assert!(
            dpor.states < plain.states,
            "k={k}: dpor pruned nothing ({} states)",
            dpor.states
        );
    }
}

#[test]
fn all_modes_refute_spinlock_election() {
    // The spinlock protocol livelocks (a loser spins on the lock bit
    // forever): every mode must find the NotWaitFree cycle — the
    // sleep-set cycle proviso is exactly what keeps reduced graphs
    // from closing cycles prematurely.
    let proto = LockElection::new(3);
    let base = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .spec(TaskSpec::Election);
    let runs = [
        ("serial", base.clone().run()),
        ("dpor", base.clone().dpor(true).run()),
        (
            "dpor+parallel",
            base.clone().dpor(true).parallel(true).workers(3).run(),
        ),
        (
            "dpor+fingerprint",
            base.clone().dpor(true).dedup(DedupMode::Fingerprint).run(),
        ),
    ];
    for (mode, report) in &runs {
        let v = report
            .outcome
            .violation()
            .unwrap_or_else(|| panic!("{mode}: expected a violation, got {:?}", report.outcome));
        assert_eq!(v.kind, ViolationKind::NotWaitFree, "{mode}");
    }
}

/// Two processes race unsynchronized writes to one register, then each
/// elects whoever the register names — a textbook agreement violation.
struct BrokenElection;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum BrokenSt {
    Write(Pid),
    Read(Pid),
    Done(Pid),
}

impl Protocol for BrokenElection {
    type State = BrokenSt;
    fn processes(&self) -> usize {
        2
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Register(Value::Nil));
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> BrokenSt {
        BrokenSt::Write(pid)
    }
    fn next_action(&self, st: &BrokenSt) -> Action {
        match st {
            BrokenSt::Write(p) => Action::Invoke(Op::write(ObjectId(0), Value::Pid(*p))),
            BrokenSt::Read(_) => Action::Invoke(Op::read(ObjectId(0))),
            BrokenSt::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut BrokenSt, resp: Value) {
        *st = match *st {
            BrokenSt::Write(p) => BrokenSt::Read(p),
            BrokenSt::Read(_) => BrokenSt::Done(resp.as_pid().expect("register holds a pid")),
            BrokenSt::Done(p) => BrokenSt::Done(p),
        };
    }
}

#[test]
fn dpor_counterexamples_replay_on_broken_protocols() {
    let proto = BrokenElection;
    let inputs = proto.pid_inputs();
    let base = Explorer::new(&proto)
        .inputs(&inputs)
        .spec(TaskSpec::Election);
    for (mode, report) in [
        ("serial", base.clone().run()),
        ("dpor", base.clone().dpor(true).run()),
        (
            "dpor+parallel",
            base.clone().dpor(true).parallel(true).workers(3).run(),
        ),
    ] {
        let v = report
            .outcome
            .violation()
            .unwrap_or_else(|| panic!("{mode}: expected a violation, got {:?}", report.outcome));
        assert_eq!(v.kind, ViolationKind::Agreement, "{mode}");
        // Replay the schedule and confirm the disagreement is real.
        let mut sim = Simulation::new(&proto, &inputs);
        for &p in &v.schedule {
            sim.step(p).unwrap();
        }
        let res = sim.result();
        let decided: Vec<&Value> = res.decisions.iter().flatten().collect();
        assert!(
            decided.iter().any(|d| **d != *decided[0]),
            "{mode}: counterexample did not replay: {v:?}"
        );
    }
}

#[test]
fn dpor_agrees_under_fault_injection() {
    // Crash edges are generated for every enabled process regardless of
    // the persistent set (a crash commutes with everything except the
    // crashed process's own steps), so `faults(f)` verdicts must not
    // change under reduction.
    for k in 4..=5 {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let base = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .faults(1);
        let plain = base.clone().run();
        let dpor = base.clone().dpor(true).run();
        assert!(plain.outcome.is_verified(), "k={k}: {:?}", plain.outcome);
        assert!(dpor.outcome.is_verified(), "k={k}: {:?}", dpor.outcome);
        assert!(
            dpor.states <= plain.states,
            "k={k}: {} vs {}",
            dpor.states,
            plain.states
        );
    }
}

// ---------------------------------------------------------------------
// Seeded random sweep
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Step {
    op: Op,
    jump: Option<(Value, usize)>,
}

/// The random finite protocol of `prop_explore_modes.rs`: short
/// register/test&set programs with occasional loop-backs, then a fixed
/// decision. Uses the *default* `footprint` (⊤ for invokes), so any
/// reduction on these instances comes from the exact one-step
/// independence relation and the decide hints alone — precisely the
/// machinery the sweep is meant to stress.
#[derive(Clone, Debug)]
struct RandomProtocol {
    n: usize,
    program: Vec<Vec<Step>>,
    decide: Vec<Value>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum St {
    At { pid: Pid, pc: usize },
    Done { pid: Pid },
}

impl Protocol for RandomProtocol {
    type State = St;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::Register(Value::Nil), 2);
        l.push(ObjectInit::TestAndSet);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> St {
        if self.program[pid].is_empty() {
            St::Done { pid }
        } else {
            St::At { pid, pc: 0 }
        }
    }

    fn next_action(&self, st: &St) -> Action {
        match st {
            St::At { pid, pc } => Action::Invoke(self.program[*pid][*pc].op.clone()),
            St::Done { pid } => Action::Decide(self.decide[*pid].clone()),
        }
    }

    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::At { pid, pc } = *st {
            let step = &self.program[pid][pc];
            let next = match &step.jump {
                Some((trigger, target)) if resp == *trigger => *target,
                _ => pc + 1,
            };
            *st = if next >= self.program[pid].len() {
                St::Done { pid }
            } else {
                St::At { pid, pc: next }
            };
        }
    }
}

fn arb_protocol(rng: &mut SplitMix64, inputs: &[Value]) -> RandomProtocol {
    let n = inputs.len();
    let program = (0..n)
        .map(|_| {
            (0..rng.range_usize(1, 4))
                .map(|pc| {
                    let op = match rng.usize_below(3) {
                        0 => Op::write(
                            ObjectId(rng.usize_below(2)),
                            Value::Int(rng.usize_below(3) as i64),
                        ),
                        1 => Op::read(ObjectId(rng.usize_below(2))),
                        _ => Op::new(ObjectId(2), OpKind::TestAndSet),
                    };
                    let jump = (rng.usize_below(4) == 0).then(|| {
                        let trigger = match rng.usize_below(3) {
                            0 => Value::Nil,
                            1 => Value::Int(rng.usize_below(3) as i64),
                            _ => Value::Bool(rng.bool()),
                        };
                        (trigger, rng.usize_below(pc + 1))
                    });
                    Step { op, jump }
                })
                .collect()
        })
        .collect();
    let decide = (0..n)
        .map(|p| match rng.usize_below(4) {
            0 => Value::Int(99),
            1 => inputs[rng.usize_below(n)].clone(),
            _ => inputs[p].clone(),
        })
        .collect();
    RandomProtocol { n, program, decide }
}

#[test]
fn dpor_never_changes_the_verdict_on_random_protocols() {
    let mut rng = SplitMix64::new(0xD102_5EED);
    let mut violated = 0usize;
    let mut verified = 0usize;
    let mut pruned = 0usize;
    for case in 0..80 {
        let n = rng.range_usize(2, 4);
        let inputs: Vec<Value> = (0..n)
            .map(|_| Value::Int(10 + rng.usize_below(2) as i64))
            .collect();
        let proto = arb_protocol(&mut rng, &inputs);
        let base = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Consensus(inputs.clone()));
        let exact = base.clone().run();
        let runs = [
            ("dpor", base.clone().dpor(true).run()),
            (
                "dpor+parallel",
                base.clone().dpor(true).parallel(true).workers(3).run(),
            ),
            (
                "dpor+fingerprint",
                base.clone().dpor(true).dedup(DedupMode::Fingerprint).run(),
            ),
        ];
        for (mode, dpor) in &runs {
            // Outcome-variant equality: reduction must neither lose a
            // violation nor fabricate one.
            assert_eq!(
                std::mem::discriminant(&exact.outcome),
                std::mem::discriminant(&dpor.outcome),
                "case {case} {mode}: {:?} vs {:?}\n{proto:?}",
                exact.outcome,
                dpor.outcome
            );
            // DPOR explores a subgraph: never more states (serial
            // only — parallel discovery order is racy).
            if *mode == "dpor" {
                assert!(
                    dpor.states <= exact.states,
                    "case {case}: dpor states {} > exact {}\n{proto:?}",
                    dpor.states,
                    exact.states
                );
                if dpor.states < exact.states {
                    pruned += 1;
                }
            }
            // Safety counterexamples must be genuine.
            if let Some(v) = dpor.outcome.violation() {
                if v.kind == ViolationKind::NotWaitFree {
                    continue; // cycles don't replay to a violated terminal
                }
                let mut sim = Simulation::new(&proto, &inputs);
                for &p in &v.schedule {
                    sim.step(p).unwrap();
                }
                let res = sim.result();
                let participants = res.trace.participants();
                let valid: Vec<&Value> = participants.iter().map(|&p| &inputs[p]).collect();
                let decided: Vec<&Value> = res.decisions.iter().flatten().collect();
                let disagree = decided.iter().any(|d| **d != *decided[0]);
                let invalid = decided.iter().any(|d| !valid.contains(d));
                assert!(
                    disagree || invalid,
                    "case {case} {mode}: counterexample did not replay: {proto:?}"
                );
            }
        }
        match &exact.outcome {
            ExploreOutcome::Violated(_) => violated += 1,
            ExploreOutcome::Verified => verified += 1,
            ExploreOutcome::Exhausted { .. } | ExploreOutcome::Interrupted { .. } => {}
        }
    }
    // The sample must genuinely exercise both sides of the property —
    // and the reduction must actually fire somewhere.
    assert!(
        violated >= 10,
        "only {violated} refuted cases — weak sample"
    );
    assert!(
        verified >= 5,
        "only {verified} verified cases — weak sample"
    );
    assert!(pruned >= 5, "dpor pruned on only {pruned} cases — inert");
}
