//! An interrupted exploration must be *continuable*: a run cut short
//! by a deadline or memory budget emits a `bso-checkpoint/v1` artifact
//! whose resumption reaches the same final verdict the uninterrupted
//! run would have — across a save/load round trip through an actual
//! file, exactly as the `BSO_DEADLINE_MS`/`BSO_CHECKPOINT` escape
//! hatches produce it.

use std::time::Duration;

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{
    Action, Checkpoint, ExploreOutcome, Explorer, InterruptReason, Pid, Protocol, TaskSpec,
    ViolationKind,
};

/// A small verified election: everyone sticky-writes its pid, then
/// reads the winner back. Enough states to survive a zero deadline's
/// worth of work, conclusively verifiable on resume.
struct StickyElection {
    n: usize,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum St {
    Write(usize),
    Done(usize),
}

impl Protocol for StickyElection {
    type State = St;
    fn processes(&self) -> usize {
        self.n
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Sticky);
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Write(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Write(p) => {
                Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(Value::Pid(*p))))
            }
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::Write(_) = st {
            *st = St::Done(resp.as_pid().expect("sticky register holds a pid"));
        }
    }
}

/// A broken election (everyone elects itself) whose refutation a
/// deadline can hide — and a resume must then recover.
struct BrokenElection;

impl Protocol for BrokenElection {
    type State = St;
    fn processes(&self) -> usize {
        2
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet);
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Write(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Write(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, _resp: Value) {
        if let St::Write(p) = st {
            *st = St::Done(*p);
        }
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bso-cp-{}-{name}.json", std::process::id()))
}

#[test]
fn deadline_interrupt_then_resume_reaches_the_uninterrupted_verdict() {
    let proto = StickyElection { n: 3 };
    let explorer = Explorer::new(&proto)
        .protocol_id("sticky-election")
        .spec(TaskSpec::Election);

    let uninterrupted = explorer.run();
    assert!(uninterrupted.outcome.is_verified());

    // A zero deadline expires before the first state is expanded.
    let report = explorer.clone().deadline(Duration::ZERO).run();
    let ExploreOutcome::Interrupted {
        reason, frontier, ..
    } = &report.outcome
    else {
        panic!("zero deadline should interrupt, got {:?}", report.outcome);
    };
    assert_eq!(*reason, InterruptReason::Deadline);
    assert!(!frontier.is_empty(), "nothing left to resume from");

    // Round-trip the checkpoint through a real file, like the
    // BSO_CHECKPOINT escape hatch does.
    let cp = explorer
        .checkpoint_for(&report)
        .expect("interrupted reports must yield a checkpoint");
    let path = tmp("deadline");
    cp.save(&path).unwrap();
    let reloaded = Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, cp);

    let resumed = explorer.resume(&reloaded);
    assert!(
        resumed.outcome.is_verified(),
        "resume must reach the uninterrupted verdict: {:?}",
        resumed.outcome
    );
    assert!(resumed.states >= uninterrupted.states);
}

#[test]
fn memory_budget_interrupt_is_resumable() {
    let proto = StickyElection { n: 3 };
    let explorer = Explorer::new(&proto)
        .protocol_id("sticky-election")
        .spec(TaskSpec::Election);

    // A budget of a few hundred bytes caps the visited table at a
    // handful of states — far fewer than the protocol reaches.
    let report = explorer.clone().memory_budget(512).run();
    let ExploreOutcome::Interrupted { reason, .. } = &report.outcome else {
        panic!("tiny budget should interrupt, got {:?}", report.outcome);
    };
    assert_eq!(*reason, InterruptReason::MemoryBudget);

    // Resuming *without* the budget finishes the job. (Resuming with
    // the same budget would interrupt again — that is the caller's
    // choice to make, not ours.)
    let cp = explorer.checkpoint_for(&report).unwrap();
    let resumed = explorer.resume(&cp);
    assert!(
        resumed.outcome.is_verified(),
        "resume without the budget must verify: {:?}",
        resumed.outcome
    );
}

#[test]
fn resume_finds_the_violation_a_deadline_hid() {
    let explorer = Explorer::new(&BrokenElection)
        .protocol_id("broken-election")
        .spec(TaskSpec::Election);

    let direct = explorer.run();
    let ExploreOutcome::Violated(direct_v) = &direct.outcome else {
        panic!("BrokenElection must be refuted");
    };

    let report = explorer.clone().deadline(Duration::ZERO).run();
    let cp = explorer
        .checkpoint_for(&report)
        .expect("interrupted report yields a checkpoint");
    let resumed = explorer.resume(&cp);
    let ExploreOutcome::Violated(v) = &resumed.outcome else {
        panic!(
            "resume must recover the refutation, got {:?}",
            resumed.outcome
        );
    };
    assert_eq!(v.kind, direct_v.kind, "same violation kind on resume");
}

#[test]
fn conclusive_reports_have_no_checkpoint() {
    let proto = StickyElection { n: 2 };
    let explorer = Explorer::new(&proto).spec(TaskSpec::Election);
    let report = explorer.run();
    assert!(report.outcome.is_verified());
    assert!(
        explorer.checkpoint_for(&report).is_none(),
        "a conclusive report is not resumable"
    );
}

#[test]
fn checkpoints_survive_crash_adversary_configuration() {
    // Interrupt a *faulty* exploration and resume it: the crash
    // adversary's configuration (f, step bound) rides along in the
    // checkpoint, and frontier entries carry their crash events.
    let proto = StickyElection { n: 3 };
    let explorer = Explorer::new(&proto)
        .protocol_id("sticky-election")
        .spec(TaskSpec::Election)
        .faults(1)
        .step_bound(3);

    let direct = explorer.run();
    assert!(
        direct.outcome.is_verified(),
        "sticky election is wait-free under 1 crash: {:?}",
        direct.outcome
    );

    let report = explorer.clone().deadline(Duration::ZERO).run();
    let cp = explorer.checkpoint_for(&report).unwrap();
    assert_eq!(cp.faults, 1);
    assert_eq!(cp.step_bound, Some(3));

    let path = tmp("faulty");
    cp.save(&path).unwrap();
    let reloaded = Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let resumed = explorer.resume(&reloaded);
    assert!(
        resumed.outcome.is_verified(),
        "faulty exploration must resume to its verdict: {:?}",
        resumed.outcome
    );
}

#[test]
fn step_bound_violations_survive_resume() {
    // Interrupt an exploration that would end in a StepBound
    // refutation; the resumed run must still find it.
    struct Spinner;
    impl Protocol for Spinner {
        type State = St;
        fn processes(&self) -> usize {
            2
        }
        fn layout(&self) -> Layout {
            let mut l = Layout::new();
            l.push(ObjectInit::Register(Value::Nil));
            l
        }
        fn init(&self, pid: Pid, _input: &Value) -> St {
            St::Write(pid)
        }
        fn next_action(&self, st: &St) -> Action {
            match st {
                // p0 spins reading forever; p1 decides immediately.
                St::Write(0) => Action::Invoke(Op::read(ObjectId(0))),
                St::Write(p) | St::Done(p) => Action::Decide(Value::Pid(*p)),
            }
        }
        fn on_response(&self, _st: &mut St, _resp: Value) {}
    }

    let explorer = Explorer::new(&Spinner)
        .protocol_id("spinner")
        .spec(TaskSpec::Election)
        .step_bound(5);
    let direct = explorer.run();
    let ExploreOutcome::Violated(direct_v) = &direct.outcome else {
        panic!(
            "spinner must violate the step bound, got {:?}",
            direct.outcome
        );
    };
    assert_eq!(direct_v.kind, ViolationKind::StepBound);

    let report = explorer.clone().deadline(Duration::ZERO).run();
    let cp = explorer.checkpoint_for(&report).unwrap();
    let resumed = explorer.resume(&cp);
    let ExploreOutcome::Violated(v) = &resumed.outcome else {
        panic!(
            "resume must recover the step-bound refutation: {:?}",
            resumed.outcome
        );
    };
    assert_eq!(v.kind, ViolationKind::StepBound);
}
