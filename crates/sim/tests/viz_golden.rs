//! Golden-string tests for the ASCII run renderers: a fixed scripted
//! election run must render to exactly these strings. If a renderer
//! change is intentional, update the goldens by copying the printed
//! actual output.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::scheduler::Scripted;
use bso_sim::viz::{register_history_string, timeline};
use bso_sim::{Action, Pid, Protocol, RunResult, Simulation};

/// The two-process test&set election from the crate example: announce
/// yourself, grab the bit, the loser reads the winner's announcement.
struct TasElection;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum St {
    Announce(usize),
    Grab(usize),
    ReadPeer(usize),
    Done(usize),
}

impl Protocol for TasElection {
    type State = St;
    fn processes(&self) -> usize {
        2
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet); // o0: the bit
        l.push_n(ObjectInit::Register(Value::Nil), 2); // o1,o2: announcements
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Announce(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Announce(p) => Action::Invoke(Op::write(ObjectId(1 + p), Value::Pid(*p))),
            St::Grab(_) => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
            St::ReadPeer(p) => Action::Invoke(Op::read(ObjectId(1 + (1 - p)))),
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, resp: Value) {
        *st = match st.clone() {
            St::Announce(p) => St::Grab(p),
            St::Grab(p) => {
                if resp == Value::Bool(false) {
                    St::Done(p)
                } else {
                    St::ReadPeer(p)
                }
            }
            St::ReadPeer(_) => St::Done(resp.as_pid().expect("peer announced first")),
            done @ St::Done(_) => done,
        };
    }
}

/// One fixed interleaving: p1 announces and wins the bit; p0 loses,
/// reads p1's announcement, and elects p1.
fn recorded_run() -> RunResult {
    let schedule = vec![1, 1, 0, 0, 1, 0, 0];
    let mut sim = Simulation::new(&TasElection, &[Value::Pid(0), Value::Pid(1)]);
    sim.run(&mut Scripted::new(schedule), 1_000).unwrap()
}

#[test]
fn timeline_golden() {
    let res = recorded_run();
    let actual = timeline(&res.trace, 2);
    let expected = concat!(
        "      steps 0..7   (W/r register \u{b7} C/c compare&swap ok/fail",
        " \u{b7} S/U snapshot \u{b7} D decide \u{b7} \u{2717} crash)\n",
        "p0   |  WT rD|\n",
        "p1   |WT  D  |\n",
    );
    assert_eq!(
        actual, expected,
        "timeline drifted; actual:\n{actual}\nexpected:\n{expected}"
    );
}

#[test]
fn register_history_golden() {
    let res = recorded_run();
    // p1's announcement register (o2): Nil (rendered `·`) until p1's
    // write at step 0.
    let o2 = register_history_string(&res.trace, ObjectId(2), Value::Nil);
    assert_eq!(o2, "\u{b7} \u{2192}(#0) p1");
    // p0's announcement register (o1): written at step 2.
    let o1 = register_history_string(&res.trace, ObjectId(1), Value::Nil);
    assert_eq!(o1, "\u{b7} \u{2192}(#2) p0");
}

#[test]
fn run_decisions_golden() {
    let res = recorded_run();
    assert_eq!(
        res.decisions,
        vec![Some(Value::Pid(1)), Some(Value::Pid(1))],
        "both processes elect the test&set winner"
    );
}
