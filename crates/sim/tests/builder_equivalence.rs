//! Cross-mode agreement for the [`Explorer`] builder: every mode
//! combination (serial/parallel × plain/symmetric, exact/fingerprint
//! dedup) must agree on everything that is semantically determined —
//! verdict, state and terminal counts under the same reduction, and
//! the exact wait-freedom witness. The historical free-function
//! wrappers this file once pinned are gone; the builder is the only
//! exploration surface.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{
    Action, DedupMode, ExploreConfig, ExploreReport, Explorer, Pid, Protocol, ProtocolExt,
    SymmetricProtocol, TaskSpec,
};

/// Fully symmetric election: everyone sticky-writes its pid and elects
/// whatever the write-once register reports (the first writer).
struct StickyElection {
    n: usize,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum St {
    Write(usize),
    Done(usize),
}

impl Protocol for StickyElection {
    type State = St;
    fn processes(&self) -> usize {
        self.n
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Sticky);
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Write(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Write(p) => {
                Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(Value::Pid(*p))))
            }
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::Write(_) = st {
            *st = St::Done(resp.as_pid().expect("sticky register holds the winner"));
        }
    }
}

impl SymmetricProtocol for StickyElection {
    fn symmetry_group(&self) -> Vec<Vec<Pid>> {
        // Full S₃ (non-identity elements).
        vec![
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ]
    }
    fn permute_state(&self, perm: &[Pid], st: &St) -> St {
        match st {
            St::Write(p) => St::Write(perm[*p]),
            St::Done(p) => St::Done(perm[*p]),
        }
    }
}

/// The report fields that must be bit-identical between two runs of
/// the same semantic exploration (run-dependent perf counters
/// excluded).
fn assert_same_report(a: &ExploreReport, b: &ExploreReport, mode: &str) {
    assert_eq!(
        a.outcome.is_verified(),
        b.outcome.is_verified(),
        "{mode}: verdicts diverged"
    );
    assert_eq!(a.states, b.states, "{mode}: state counts");
    assert_eq!(a.terminals, b.terminals, "{mode}: terminals");
    assert_eq!(
        a.max_steps_per_proc, b.max_steps_per_proc,
        "{mode}: wait-freedom witness"
    );
}

#[test]
fn all_four_modes_agree_on_the_verdict() {
    let proto = StickyElection { n: 3 };
    let inputs = proto.pid_inputs();
    let cfg = ExploreConfig {
        spec: TaskSpec::Election,
        workers: 3,
        ..Default::default()
    };
    let base = Explorer::new(&proto).inputs(&inputs).config(&cfg);

    let serial = base.clone().run();
    let parallel = base.clone().parallel(true).run();
    let symmetric = base.clone().symmetric(true).run();
    let both = base.clone().symmetric(true).parallel(true).run();

    // Parallelism is pure plumbing: identical reports either way,
    // under either reduction.
    assert_same_report(&serial, &parallel, "plain: serial vs parallel");
    assert_same_report(&symmetric, &both, "symmetric: serial vs parallel");

    // Symmetry collapses orbits without touching the verdict or the
    // wait-freedom witness.
    assert!(serial.outcome.is_verified());
    assert!(symmetric.outcome.is_verified());
    assert!(
        symmetric.states < serial.states,
        "S₃ reduction must collapse orbits: {} !< {}",
        symmetric.states,
        serial.states
    );
    assert_eq!(serial.max_steps_per_proc, symmetric.max_steps_per_proc);
}

#[test]
fn fingerprint_dedup_agrees_with_exact() {
    let proto = StickyElection { n: 3 };
    let inputs = proto.pid_inputs();
    let exact = ExploreConfig {
        spec: TaskSpec::Election,
        workers: 2,
        ..Default::default()
    };
    let fp = ExploreConfig {
        dedup: DedupMode::Fingerprint,
        ..exact.clone()
    };

    let exact_report = Explorer::new(&proto).inputs(&inputs).config(&exact).run();
    let fp_serial = Explorer::new(&proto).inputs(&inputs).config(&fp).run();
    let fp_parallel = Explorer::new(&proto)
        .inputs(&inputs)
        .config(&fp)
        .parallel(true)
        .run();

    // On a state space this small a fingerprint collision is
    // astronomically unlikely, so the reports must coincide exactly.
    assert_same_report(&exact_report, &fp_serial, "exact vs fingerprint");
    assert_same_report(&fp_serial, &fp_parallel, "fingerprint: serial vs parallel");
}
