//! The [`Explorer`] builder must be a drop-in replacement for the four
//! historical free functions: for every mode combination
//! (serial/parallel × plain/symmetric) the builder and the deprecated
//! function must return the *same* report — verdict, state and
//! terminal counts, and the exact wait-freedom witness.
//!
//! Performance counters (`stats.duration`, `stats.steals`, ...) are
//! run-dependent and deliberately excluded; `stats.workers` is the one
//! stats field both paths must resolve identically.

#![allow(deprecated)] // this test exists to pin the deprecated functions

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{
    explore, explore_parallel, explore_symmetric, explore_symmetric_parallel, Action, DedupMode,
    ExploreConfig, ExploreReport, Explorer, Pid, Protocol, ProtocolExt, SymmetricProtocol,
    TaskSpec,
};

/// Fully symmetric election: everyone sticky-writes its pid and elects
/// whatever the write-once register reports (the first writer).
struct StickyElection {
    n: usize,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum St {
    Write(usize),
    Done(usize),
}

impl Protocol for StickyElection {
    type State = St;
    fn processes(&self) -> usize {
        self.n
    }
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Sticky);
        l
    }
    fn init(&self, pid: Pid, _input: &Value) -> St {
        St::Write(pid)
    }
    fn next_action(&self, st: &St) -> Action {
        match st {
            St::Write(p) => {
                Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(Value::Pid(*p))))
            }
            St::Done(p) => Action::Decide(Value::Pid(*p)),
        }
    }
    fn on_response(&self, st: &mut St, resp: Value) {
        if let St::Write(_) = st {
            *st = St::Done(resp.as_pid().expect("sticky register holds the winner"));
        }
    }
}

impl SymmetricProtocol for StickyElection {
    fn symmetry_group(&self) -> Vec<Vec<Pid>> {
        // Full S₃ (non-identity elements).
        vec![
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ]
    }
    fn permute_state(&self, perm: &[Pid], st: &St) -> St {
        match st {
            St::Write(p) => St::Write(perm[*p]),
            St::Done(p) => St::Done(perm[*p]),
        }
    }
}

/// The report fields that must be bit-identical between the builder
/// and the free function (run-dependent perf counters excluded).
fn assert_same_report(builder: &ExploreReport, legacy: &ExploreReport, mode: &str) {
    assert_eq!(
        builder.outcome.is_verified(),
        legacy.outcome.is_verified(),
        "{mode}: verdicts diverged"
    );
    assert_eq!(builder.states, legacy.states, "{mode}: state counts");
    assert_eq!(builder.terminals, legacy.terminals, "{mode}: terminals");
    assert_eq!(
        builder.max_steps_per_proc, legacy.max_steps_per_proc,
        "{mode}: wait-freedom witness"
    );
    assert_eq!(
        builder.stats.workers, legacy.stats.workers,
        "{mode}: resolved workers"
    );
}

#[test]
fn builder_matches_deprecated_functions_in_all_four_modes() {
    let proto = StickyElection { n: 3 };
    let inputs = proto.pid_inputs();
    let cfg = ExploreConfig {
        spec: TaskSpec::Election,
        workers: 3,
        ..Default::default()
    };
    let base = Explorer::new(&proto).inputs(&inputs).config(&cfg);

    let serial = base.clone().run();
    assert_same_report(&serial, &explore(&proto, &inputs, &cfg), "serial/plain");

    let parallel = base.clone().parallel(true).run();
    assert_same_report(
        &parallel,
        &explore_parallel(&proto, &inputs, &cfg),
        "parallel/plain",
    );

    let symmetric = base.clone().symmetric(true).run();
    assert_same_report(
        &symmetric,
        &explore_symmetric(&proto, &inputs, &cfg),
        "serial/symmetric",
    );

    let both = base.clone().symmetric(true).parallel(true).run();
    assert_same_report(
        &both,
        &explore_symmetric_parallel(&proto, &inputs, &cfg),
        "parallel/symmetric",
    );

    // The modes themselves behave as documented: symmetry collapses
    // orbits, parallelism does not change any verdict-level field.
    assert!(serial.outcome.is_verified());
    assert_eq!(serial.states, parallel.states);
    assert!(symmetric.states < serial.states);
    assert_eq!(symmetric.states, both.states);
    assert_eq!(serial.max_steps_per_proc, symmetric.max_steps_per_proc);
}

#[test]
fn builder_matches_deprecated_functions_under_fingerprint_dedup() {
    let proto = StickyElection { n: 3 };
    let inputs = proto.pid_inputs();
    let cfg = ExploreConfig {
        spec: TaskSpec::Election,
        dedup: DedupMode::Fingerprint,
        workers: 2,
        ..Default::default()
    };
    let base = Explorer::new(&proto).inputs(&inputs).config(&cfg);
    assert_same_report(
        &base.clone().run(),
        &explore(&proto, &inputs, &cfg),
        "serial/fingerprint",
    );
    assert_same_report(
        &base.clone().parallel(true).run(),
        &explore_parallel(&proto, &inputs, &cfg),
        "parallel/fingerprint",
    );
}
