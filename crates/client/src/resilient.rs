//! A fault-tolerant, exactly-once client: [`ResilientClient`].
//!
//! The pipelined [`Connection`](crate::Connection) treats a broken
//! socket as fatal — correct for benchmarking, useless under chaos.
//! This module wraps one *logical* client around however many TCP
//! connections it takes: every operation carries a per-session
//! `req_id`, the client binds a session token with
//! [`Request::Resume`] on every (re)connect, and a retry after a
//! broken socket re-sends the *same* `req_id` so the server can answer
//! from its bounded reply cache instead of applying twice. The result
//! is exactly-once *visible* semantics: an operation's effect happens
//! at most once no matter how many times the wire eats the reply.
//!
//! Retry classification follows the wire-level [`ErrorCode`](bso_server::ErrorCode) split:
//!
//! * [`ErrorCode::retry_in_place`](bso_server::ErrorCode::retry_in_place) (`Busy`, `Expired`) — back off and
//!   re-send on the same connection; the server refused without
//!   applying.
//! * [`ErrorCode::retry_after_reconnect`](bso_server::ErrorCode::retry_after_reconnect) (`ShuttingDown`,
//!   `Overloaded`) — drop the socket, back off, reconnect, resume,
//!   re-send.
//! * [`ErrorCode::retry_after_refresh`](bso_server::ErrorCode::retry_after_refresh) (`WrongShard`) — the op was
//!   refused *before* applying because the routing table places its
//!   object on another server. This client has no table, so the error
//!   surfaces; a routing-aware caller (the `bso-cluster` client)
//!   refreshes its table, [`ResilientClient::retarget`]s this session
//!   at the owner, and re-issues the op — duplicate-safe because
//!   `WrongShard` guarantees non-application.
//! * Everything else (`BadToken`, `BadRequest`, …) — terminal: the
//!   outcome is either knowable-and-bad or unknowable, and a blind
//!   retry could duplicate an effect.
//!
//! Backoff is capped exponential with deterministic
//! [`SplitMix64`]-seeded jitter, so a chaos run's retry schedule is as
//! replayable as its fault schedule.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bso_objects::rng::SplitMix64;
use bso_objects::{Op, Value};
use bso_server::wire;
use bso_server::{Request, Response};
use bso_sim::RecordedOp;

use crate::{ClientError, HistoryRecorder};

/// Process-wide fallback token allocator for builders that never call
/// [`ResilientBuilder::token`] (also consumed by resilient
/// [`Swarm`](crate::Swarm) lanes). Tokens must be unique per server
/// session table, and every resilient client in this process may talk
/// to the same server. Starts above zero so a default token is never
/// confused with "unset" in logs.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Allocates `n` consecutive fresh session tokens, returning the first.
pub(crate) fn alloc_tokens(n: u64) -> u64 {
    NEXT_TOKEN.fetch_add(n, Ordering::Relaxed)
}

/// `req_id`s for the connect-time `Hello`/`Resume` round trips. They
/// live outside the session's monotonic operation ids (the server's
/// reply cache never sees control opcodes) and are consumed
/// synchronously, so reusing them on every reconnect is safe.
const HELLO_REQ_ID: u64 = u64::MAX;
const RESUME_REQ_ID: u64 = u64::MAX - 1;

/// How hard a [`ResilientClient`] fights for each operation.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). When they
    /// run out, the last refusal surfaces as [`ClientError`].
    pub max_attempts: u32,
    /// Backoff before attempt `n` is `base_backoff * 2^(n-1)`, capped
    /// at [`RetryPolicy::max_backoff`], jittered into the upper half.
    pub base_backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub max_backoff: Duration,
    /// Socket read timeout. A stalled server (or a chaos proxy sitting
    /// on a reply) turns into a timeout, which is treated like a
    /// broken connection: reconnect, resume, re-send. `None` blocks
    /// forever.
    pub read_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            read_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Fluent configuration for a [`ResilientClient`].
#[derive(Clone, Debug, Default)]
pub struct ResilientBuilder {
    token: Option<u64>,
    seed: Option<u64>,
    policy: RetryPolicy,
    recorder: Option<Arc<HistoryRecorder>>,
}

impl ResilientBuilder {
    /// The session token to bind on every connect (default: allocated
    /// from a process-wide counter). Chaos harnesses pass explicit
    /// seed-derived tokens so a whole run is replayable.
    #[must_use]
    pub fn token(mut self, token: u64) -> ResilientBuilder {
        self.token = Some(token);
        self
    }

    /// Seed for the backoff jitter (default: the session token, so a
    /// fixed token fixes the whole retry schedule).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> ResilientBuilder {
        self.seed = Some(seed);
        self
    }

    /// The retry policy (attempts, backoff, read timeout).
    #[must_use]
    pub fn policy(mut self, policy: RetryPolicy) -> ResilientBuilder {
        self.policy = policy;
        self
    }

    /// Attaches a (shared) history recorder; every operation that
    /// ultimately succeeds is logged with interval timestamps. The
    /// interval spans first send to final receive, which safely covers
    /// the server-side linearization point even when the effect
    /// happened on an attempt whose reply the wire ate.
    #[must_use]
    pub fn recorder(mut self, rec: Arc<HistoryRecorder>) -> ResilientBuilder {
        self.recorder = Some(rec);
        self
    }

    /// Resolves `addr` and builds the client. No socket is opened yet;
    /// the first operation connects (and reconnects happen the same
    /// way), so a server that is briefly down at build time costs
    /// nothing.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when `addr` resolves to nothing.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<ResilientClient, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to no socket addresses",
            )));
        }
        let token = self
            .token
            .unwrap_or_else(|| NEXT_TOKEN.fetch_add(1, Ordering::Relaxed));
        Ok(ResilientClient {
            addrs,
            token,
            policy: self.policy,
            rng: SplitMix64::new(self.seed.unwrap_or(token)),
            recorder: self.recorder,
            stream: None,
            next_req_id: 1,
            last_acked: 0,
            connects: 0,
            reconnects: 0,
            retries: 0,
            replays_resumed: 0,
            redirects: 0,
        })
    }
}

/// One logical session that survives any number of broken sockets.
/// See the [module docs](self) for the retry contract.
pub struct ResilientClient {
    addrs: Vec<SocketAddr>,
    token: u64,
    policy: RetryPolicy,
    rng: SplitMix64,
    recorder: Option<Arc<HistoryRecorder>>,
    stream: Option<TcpStream>,
    /// Next operation `req_id`; monotonic across reconnects — the
    /// server's reply cache is keyed by it.
    next_req_id: u64,
    /// Highest `req_id` whose response this client has consumed;
    /// reported in `Resume` so the server can prune its cache.
    last_acked: u64,
    connects: u64,
    reconnects: u64,
    retries: u64,
    replays_resumed: u64,
    redirects: u64,
}

impl ResilientClient {
    /// Starts configuring a resilient client.
    pub fn builder() -> ResilientBuilder {
        ResilientBuilder::default()
    }

    /// The session token this client binds on every connect.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Reconnects performed so far (the first connect not counted).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Operation attempts beyond the first, across all causes
    /// (backpressure, shed deadlines, broken sockets).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Cached replies the server reported holding for us across all
    /// `Resume` round trips — a cheap signal that replay protection
    /// actually engaged during a run.
    pub fn resumed_cached(&self) -> u64 {
        self.replays_resumed
    }

    /// Times this session was pointed at a different server via
    /// [`ResilientClient::retarget`].
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Points this session at a different server. The live socket (if
    /// any) is dropped; the next operation connects there, re-binds
    /// the same session token with `Resume`, and proceeds. Called by
    /// routing-aware wrappers after a `WrongShard` refusal, and safe
    /// at any time — `req_id`s stay monotonic across targets.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when `addr` resolves to nothing.
    pub fn retarget(&mut self, addr: impl ToSocketAddrs) -> Result<(), ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to no socket addresses",
            )));
        }
        if addrs != self.addrs {
            self.addrs = addrs;
            self.stream = None;
            self.redirects += 1;
        }
        Ok(())
    }

    /// Applies `op` as process `pid`, retrying per the policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when attempts run out or the refusal is
    /// terminal; [`ClientError::Io`] when the wire stays broken.
    pub fn apply(&mut self, pid: usize, op: Op) -> Result<Value, ClientError> {
        let req = Request::Apply {
            pid: pid as u32,
            op: op.clone(),
        };
        let invoked_at = self.recorder.as_deref().map(HistoryRecorder::tick);
        let v = match self.call(&req)? {
            Response::Ok(v) => v,
            Response::Err { code, message } => return Err(ClientError::Server { code, message }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "non-value response to an apply: {other:?}"
                )))
            }
        };
        if let Some(rec) = &self.recorder {
            let responded_at = rec.tick();
            rec.record(RecordedOp {
                pid,
                op,
                resp: v.clone(),
                invoked_at: invoked_at.unwrap_or(0),
                responded_at,
            });
        }
        Ok(v)
    }

    /// Applies `op` with a per-attempt freshness budget: the server
    /// sheds the attempt with a typed `Expired` if the budget runs out
    /// before the apply. Shed attempts are retried in place (each
    /// retry gets a fresh budget) until the policy gives up.
    ///
    /// # Errors
    ///
    /// Same classes as [`ResilientClient::apply`]; a persistently
    /// overloaded server surfaces as [`ErrorCode::Expired`](bso_server::ErrorCode::Expired).
    pub fn apply_within(
        &mut self,
        pid: usize,
        op: Op,
        budget: Duration,
    ) -> Result<Value, ClientError> {
        let budget_us = u32::try_from(budget.as_micros()).unwrap_or(u32::MAX);
        let req = Request::DeadlineApply {
            budget_us,
            pid: pid as u32,
            op: op.clone(),
        };
        let invoked_at = self.recorder.as_deref().map(HistoryRecorder::tick);
        let v = match self.call(&req)? {
            Response::Ok(v) => v,
            Response::Err { code, message } => return Err(ClientError::Server { code, message }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "non-value response to a deadline apply: {other:?}"
                )))
            }
        };
        if let Some(rec) = &self.recorder {
            let responded_at = rec.tick();
            rec.record(RecordedOp {
                pid,
                op,
                resp: v.clone(),
                invoked_at: invoked_at.unwrap_or(0),
                responded_at,
            });
        }
        Ok(v)
    }

    /// Opens a leader-election session over a fresh
    /// `compare&swap-(k)`. Safe under retries: a replayed open returns
    /// the originally minted session id instead of leaking a second
    /// election.
    ///
    /// # Errors
    ///
    /// Same classes as [`ResilientClient::apply`].
    pub fn open_election(&mut self, k: u32) -> Result<u32, ClientError> {
        match self.call(&Request::OpenElection { k })? {
            Response::Session(s) => Ok(s),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-session response to an open-election: {other:?}"
            ))),
        }
    }

    /// Runs participant `pid` of `session` to its decision and returns
    /// the elected leader.
    ///
    /// # Errors
    ///
    /// Same classes as [`ResilientClient::apply`].
    pub fn elect(&mut self, session: u32, pid: u32) -> Result<usize, ClientError> {
        match self.call(&Request::Elect { session, pid })? {
            Response::Ok(Value::Pid(winner)) => Ok(winner),
            Response::Ok(v) => Err(ClientError::Protocol(format!(
                "election decided a non-pid value {v}"
            ))),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-pid response to an elect: {other:?}"
            ))),
        }
    }

    /// Round-trips a no-op, reconnecting if needed.
    ///
    /// # Errors
    ///
    /// Same classes as [`ResilientClient::apply`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Ok(_) => Ok(()),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-ack response to a ping: {other:?}"
            ))),
        }
    }

    /// Scrapes the server's `bso-introspect/v1` snapshot.
    ///
    /// # Errors
    ///
    /// Same classes as [`ResilientClient::apply`].
    pub fn introspect(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Introspect)? {
            Response::Introspect(json) => Ok(json),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-snapshot response to an introspect: {other:?}"
            ))),
        }
    }

    /// One operation, end to end: allocate a `req_id`, then attempt
    /// until a terminal response lands or the policy gives up. The
    /// `req_id` is *fixed across every retry* — that is what lets the
    /// server distinguish "same op again, replay it" from new work.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let req_id = self.next_req_id;
        let mut frame = Vec::new();
        wire::encode_request(req_id, req, &mut frame)?;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let out = self.attempt(req_id, &frame);
            let exhausted = attempt >= self.policy.max_attempts;
            match out {
                Ok(Response::Err { code, .. }) if code.retry_in_place() && !exhausted => {
                    self.retries += 1;
                    self.backoff(attempt);
                }
                Ok(Response::Err { code, .. }) if code.retry_after_reconnect() && !exhausted => {
                    self.retries += 1;
                    self.stream = None;
                    self.backoff(attempt);
                }
                Ok(resp) => {
                    self.next_req_id += 1;
                    self.last_acked = req_id;
                    return Ok(resp);
                }
                Err(e) if !exhausted && reconnect_worthy(&e) => {
                    self.retries += 1;
                    self.stream = None;
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt: (re)connect + resume if needed, write the frame,
    /// read the matching response.
    fn attempt(&mut self, req_id: u64, frame: &[u8]) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected above");
        stream.write_all(frame)?;
        let mut buf = Vec::new();
        if !wire::read_frame(stream, &mut buf)? {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-operation",
            )));
        }
        let (id, resp) = wire::decode_response_current(&buf)?;
        if id != req_id {
            return Err(ClientError::Protocol(format!(
                "response for req_id {id}, expected {req_id}"
            )));
        }
        Ok(resp)
    }

    /// Connect, `Hello`, `Resume` — idempotent when already connected.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut last_err: Option<std::io::Error> = None;
        let mut stream = None;
        for addr in &self.addrs {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(ClientError::Io(last_err.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::NotConnected, "no address to try")
                })))
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.policy.read_timeout)?;
        self.stream = Some(stream);
        if self.connects > 0 {
            self.reconnects += 1;
        }
        self.connects += 1;
        // Handshake, then bind the session. A failure drops the socket
        // so the next attempt starts clean.
        let hello = self.roundtrip(
            HELLO_REQ_ID,
            &Request::Hello {
                version: wire::VERSION,
            },
        );
        match hello {
            Ok(Response::Hello { version }) if version == wire::VERSION => {}
            Ok(Response::Err { code, message }) => {
                self.stream = None;
                return Err(ClientError::Server { code, message });
            }
            Ok(other) => {
                self.stream = None;
                return Err(ClientError::Protocol(format!(
                    "non-hello response to a hello: {other:?}"
                )));
            }
            Err(e) => {
                self.stream = None;
                return Err(e);
            }
        }
        let resume = self.roundtrip(
            RESUME_REQ_ID,
            &Request::Resume {
                token: self.token,
                last_acked: self.last_acked,
            },
        );
        match resume {
            Ok(Response::Resumed { token, cached }) if token == self.token => {
                self.replays_resumed += u64::from(cached);
                Ok(())
            }
            Ok(Response::Err { code, message }) => {
                self.stream = None;
                Err(ClientError::Server { code, message })
            }
            Ok(other) => {
                self.stream = None;
                Err(ClientError::Protocol(format!(
                    "non-resumed response to a resume: {other:?}"
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn roundtrip(&mut self, req_id: u64, req: &Request) -> Result<Response, ClientError> {
        let stream = self.stream.as_mut().expect("caller connected");
        let mut frame = Vec::new();
        wire::encode_request(req_id, req, &mut frame)?;
        stream.write_all(&frame)?;
        let mut buf = Vec::new();
        if !wire::read_frame(stream, &mut buf)? {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection during the handshake",
            )));
        }
        let (id, resp) = wire::decode_response_current(&buf)?;
        if id != req_id {
            return Err(ClientError::Protocol(format!(
                "handshake response for req_id {id}, expected {req_id}"
            )));
        }
        Ok(resp)
    }

    /// Sleep `base * 2^(attempt-1)` capped, jittered into the upper
    /// half so synchronized clients desynchronize deterministically.
    fn backoff(&mut self, attempt: u32) {
        let base = self.policy.base_backoff.as_nanos() as u64;
        let cap = self.policy.max_backoff.as_nanos() as u64;
        let exp = base.saturating_shl(attempt.saturating_sub(1).min(32));
        let full = exp.min(cap).max(1);
        let jittered = full / 2 + self.rng.below(full / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }
}

/// Whether a transport-level failure should trigger
/// reconnect-and-resume. Typed server refusals are classified by
/// [`ErrorCode`](bso_server::ErrorCode) in the caller; this handles the rest.
pub(crate) fn reconnect_worthy(e: &ClientError) -> bool {
    match e {
        // Broken sockets, EOFs, and read timeouts all mean "the wire
        // failed us" — the session protocol makes the resend safe.
        ClientError::Io(_) => true,
        // Corrupt bytes (a chaos proxy flipping bits) poison only the
        // connection, not the session.
        ClientError::Wire(_) => true,
        ClientError::Server { code, .. } => code.retry_after_reconnect(),
        ClientError::Protocol(_) => false,
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= u64::BITS || self.leading_zeros() < shift {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let policy = RetryPolicy::default();
        let base = policy.base_backoff.as_nanos() as u64;
        let cap = policy.max_backoff.as_nanos() as u64;
        // Two RNGs from the same seed walk the same jitter sequence.
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for attempt in 1..20u32 {
            let exp = base.saturating_shl(attempt.saturating_sub(1).min(32));
            let full = exp.min(cap).max(1);
            let ja = full / 2 + a.below(full / 2 + 1);
            let jb = full / 2 + b.below(full / 2 + 1);
            assert_eq!(ja, jb);
            assert!(ja <= cap, "attempt {attempt} exceeded the cap");
            assert!(ja * 2 >= full, "jitter left the upper half");
        }
    }

    #[test]
    fn saturating_shl_never_wraps() {
        assert_eq!(1u64.saturating_shl(3), 8);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!((1u64 << 62).saturating_shl(3), u64::MAX);
    }
}
