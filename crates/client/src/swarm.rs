//! An event-driven client swarm: thousands of pipelined connections
//! driven from one thread by a readiness loop, for load generation and
//! saturation testing.
//!
//! A [`Connection`](crate::Connection) is the right tool for a handful
//! of sockets; at 10 000 connections the two-threads-per-connection
//! model (or even one blocking thread each) stops scaling. [`Swarm`]
//! instead keeps every socket nonblocking, multiplexed over the same
//! `epoll(7)`/`poll(2)` shim the server's event loops use
//! ([`bso_server::poll`]), and issues operations from a workload
//! closure.
//!
//! Two pacing modes:
//!
//! * **Closed loop** (default): each connection keeps
//!   [`SwarmBuilder::pipeline`] requests in flight and replaces each
//!   response with a fresh request immediately. Measures peak
//!   sustainable throughput; round trips are timed from the moment the
//!   request is queued.
//! * **Open loop** ([`SwarmBuilder::rate`]): arrivals are scheduled on
//!   a fixed clock at the offered rate, round-robin across
//!   connections, regardless of how fast responses come back. Round
//!   trips are timed from the *scheduled* arrival, so server-side
//!   queueing delay is charged to the latency distribution instead of
//!   silently stretching the arrival gaps (the coordinated-omission
//!   correction).
//!
//! ```no_run
//! use bso_client::Swarm;
//! use bso_objects::{Layout, ObjectInit, Op, Value};
//!
//! let mut layout = Layout::new();
//! let reg = layout.push(ObjectInit::Register(Value::Nil));
//! let report = Swarm::builder()
//!     .connections(1000)
//!     .pipeline(8)
//!     .run("127.0.0.1:4860", |conn, seq| {
//!         (seq < 1_000_000).then(|| (conn, Op::write(reg, Value::Int(conn as i64))))
//!     })
//!     .unwrap();
//! println!("{} ops ok", report.ops_ok);
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use bso_objects::rng::SplitMix64;
use bso_objects::Op;
use bso_server::poll::{self, Event, Interest, PollBackend, Poller};
use bso_server::wire::{self, ErrorCode, Request, Response, TraceContext};
use bso_telemetry::trace::{TraceArg, TraceWorker};

use crate::resilient::{alloc_tokens, reconnect_worthy};
use crate::{next_trace_id, ClientError};

/// Fluent configuration for a [`Swarm`] run.
#[derive(Clone, Debug)]
pub struct SwarmBuilder {
    connections: usize,
    pipeline: usize,
    backend: PollBackend,
    rate: Option<f64>,
    handshake: bool,
    nodelay: bool,
    trace: TraceWorker,
    resilient: bool,
    session_base: Option<u64>,
    retry_seed: u64,
    fallbacks: Vec<std::net::SocketAddr>,
}

impl Default for SwarmBuilder {
    fn default() -> SwarmBuilder {
        SwarmBuilder {
            connections: 1,
            pipeline: 1,
            backend: PollBackend::Auto,
            rate: None,
            handshake: true,
            nodelay: true,
            trace: TraceWorker::disabled(),
            resilient: false,
            session_base: None,
            retry_seed: 0x5EED,
            fallbacks: Vec::new(),
        }
    }
}

impl SwarmBuilder {
    /// Number of concurrent connections (default 1).
    #[must_use]
    pub fn connections(mut self, n: usize) -> SwarmBuilder {
        self.connections = n.max(1);
        self
    }

    /// Requests kept in flight per connection in closed-loop mode
    /// (default 1). Ignored when a [`SwarmBuilder::rate`] is set —
    /// open-loop arrivals are paced by the clock, not by completions.
    #[must_use]
    pub fn pipeline(mut self, depth: usize) -> SwarmBuilder {
        self.pipeline = depth.max(1);
        self
    }

    /// Readiness backend for the swarm's own poller (default
    /// [`PollBackend::Auto`]).
    #[must_use]
    pub fn backend(mut self, backend: PollBackend) -> SwarmBuilder {
        self.backend = backend;
        self
    }

    /// Switches to open-loop pacing at `ops_per_sec` total offered
    /// load across all connections. `None` (the default) is closed
    /// loop.
    #[must_use]
    pub fn rate(mut self, ops_per_sec: Option<f64>) -> SwarmBuilder {
        self.rate = ops_per_sec.filter(|r| *r > 0.0);
        self
    }

    /// Whether each connection negotiates the wire version with a
    /// `Hello` round trip before entering the event loop (default
    /// `true`).
    #[must_use]
    pub fn handshake(mut self, yes: bool) -> SwarmBuilder {
        self.handshake = yes;
        self
    }

    /// Whether to disable Nagle's algorithm on every socket (default
    /// `true`).
    #[must_use]
    pub fn nodelay(mut self, yes: bool) -> SwarmBuilder {
        self.nodelay = yes;
        self
    }

    /// Attaches a trace track shared by every lane. Each issued apply
    /// is then sent as a `TracedApply` with a fresh `trace_id` and its
    /// round trip recorded as a `client.apply` span, matchable against
    /// the server's `server.apply` spans by
    /// [`bso_telemetry::trace::merge_traces`]. The disabled default
    /// keeps the plain `Apply` encoding and costs nothing.
    #[must_use]
    pub fn trace(mut self, worker: TraceWorker) -> SwarmBuilder {
        self.trace = worker;
        self
    }

    /// Fault-tolerant mode (default `false`). Every lane binds a
    /// session token on connect, keeps the encoded bytes of each
    /// in-flight request, and treats broken sockets, EOFs mid-pipeline,
    /// and corrupt response bytes as a cue to reconnect, `Resume`, and
    /// re-send — the server's reply cache turns the re-sends into
    /// replays, so effects stay exactly-once (see DESIGN.md §3.14).
    /// Without it those conditions abort the run, which is what a
    /// clean-room benchmark wants.
    #[must_use]
    pub fn resilient(mut self, yes: bool) -> SwarmBuilder {
        self.resilient = yes;
        self
    }

    /// First session token for resilient lanes: lane `i` binds
    /// `base + i`. Defaults to a process-wide allocator; chaos
    /// harnesses pass a seed-derived base so a run is replayable.
    #[must_use]
    pub fn session_base(mut self, base: u64) -> SwarmBuilder {
        self.session_base = Some(base);
        self
    }

    /// Seed for the reconnect backoff jitter in resilient mode
    /// (default `0x5EED`).
    #[must_use]
    pub fn retry_seed(mut self, seed: u64) -> SwarmBuilder {
        self.retry_seed = seed;
        self
    }

    /// Additional cluster members a resilient lane may fail over to
    /// when its current server stops accepting connections (default
    /// none). Reconnect attempts rotate through the current address
    /// and these fallbacks; landing on a different member re-binds the
    /// lane's session there and re-sends its in-flight frames, and is
    /// tallied in [`SwarmReport::redirects`].
    #[must_use]
    pub fn fallback_addrs(mut self, addrs: Vec<std::net::SocketAddr>) -> SwarmBuilder {
        self.fallbacks = addrs;
        self
    }

    /// Connects the swarm and drives `workload` to exhaustion.
    ///
    /// `workload(conn, seq)` is called once per operation to issue —
    /// `conn` is the connection index it will ride, `seq` the global
    /// 0-based issue counter — and returns the `(pid, op)` to apply,
    /// or `None` to stop issuing (in-flight operations still drain).
    ///
    /// # Errors
    ///
    /// Connect/handshake failures and socket-level I/O errors abort
    /// the run; per-operation server errors do not (they are tallied
    /// in [`SwarmReport::ops_busy`] / [`SwarmReport::ops_err`]).
    pub fn run(
        self,
        addr: impl ToSocketAddrs,
        workload: impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<SwarmReport, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        Swarm::new(self, addr)?.drive(workload)
    }
}

/// What a [`Swarm`] run observed. Round trips are recorded for
/// successful operations only, so `rtt_ns.len() == ops_ok` always
/// holds — a latency distribution is only meaningful over the
/// operations that actually completed.
#[derive(Clone, Debug, Default)]
pub struct SwarmReport {
    /// Operations answered `Ok`.
    pub ops_ok: u64,
    /// Operations answered with retryable [`ErrorCode::Busy`]
    /// backpressure.
    pub ops_busy: u64,
    /// Operations answered with any other typed error.
    pub ops_err: u64,
    /// One round trip per `Ok` operation, in nanoseconds. Closed loop
    /// times from request queueing; open loop from the scheduled
    /// arrival. An operation that survived a reconnect keeps its
    /// original start stamp — the recovery time is real latency.
    pub rtt_ns: Vec<u64>,
    /// Wall-clock span from the first issue to the last response.
    pub elapsed: Duration,
    /// Successful lane reconnects in [`SwarmBuilder::resilient`] mode
    /// (always zero otherwise — a broken socket aborts instead).
    pub reconnects: u64,
    /// Reconnects that landed on a *different* server than the lane
    /// was using — failovers via [`SwarmBuilder::fallback_addrs`].
    pub redirects: u64,
}

impl SwarmReport {
    /// Total operations answered, of any outcome.
    pub fn ops_total(&self) -> u64 {
        self.ops_ok + self.ops_busy + self.ops_err
    }

    /// Achieved `Ok` throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops_ok as f64 / secs
        } else {
            0.0
        }
    }
}

/// One operation in flight on a lane.
struct InflightOp {
    /// The instant latency is measured from.
    started: Instant,
    /// `(trace_id, start on the trace clock)` for a traced apply.
    trace: Option<(u64, u64)>,
    /// The encoded request frame, kept only in resilient mode so the
    /// operation can be re-sent verbatim after a reconnect.
    frame: Vec<u8>,
}

/// Per-connection state inside the readiness loop.
struct Lane {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    next_id: u64,
    inflight: HashMap<u64, InflightOp>,
    write_armed: bool,
    /// On the swarm's `touched` list (freshly queued bytes to pump).
    dirty: bool,
    /// Session token this lane binds with `Resume` (resilient mode).
    token: u64,
    /// The server this lane is currently connected to (it may move in
    /// resilient mode when fallbacks are configured).
    addr: std::net::SocketAddr,
}

impl Lane {
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// The multiplexer itself; normally used through
/// [`SwarmBuilder::run`], which see.
pub struct Swarm {
    cfg: SwarmBuilder,
    poller: Poller,
    lanes: Vec<Lane>,
    report: SwarmReport,
    /// Next connection to receive an open-loop arrival.
    rr: usize,
    /// Global issue counter handed to the workload.
    seq: u64,
    /// Set once the workload returns `None`.
    done_issuing: bool,
    /// Lanes with freshly queued bytes, pumped once per loop turn —
    /// an O(touched) flush instead of an O(connections) scan.
    touched: Vec<usize>,
    /// The server address, kept for resilient-mode reconnects.
    addr: std::net::SocketAddr,
    /// Jitter source for reconnect backoff (resilient mode).
    rng: SplitMix64,
}

impl Swarm {
    /// Starts configuring a swarm.
    pub fn builder() -> SwarmBuilder {
        SwarmBuilder::default()
    }

    fn new(cfg: SwarmBuilder, addr: std::net::SocketAddr) -> Result<Swarm, ClientError> {
        let mut poller = Poller::new(cfg.backend).map_err(ClientError::Io)?;
        let session_base = if cfg.resilient {
            cfg.session_base
                .unwrap_or_else(|| alloc_tokens(cfg.connections as u64))
        } else {
            0
        };
        let mut lanes = Vec::with_capacity(cfg.connections);
        for conn in 0..cfg.connections {
            let token = session_base + conn as u64;
            let mut stream = TcpStream::connect(addr)?;
            if cfg.nodelay {
                stream.set_nodelay(true)?;
            }
            if cfg.handshake || cfg.resilient {
                handshake(&mut stream)?;
            }
            if cfg.resilient {
                resume(&mut stream, token, 0)?;
            }
            poll::set_nonblocking(&stream)?;
            poller.register(poll::raw_fd(&stream), conn as u64, Interest::READ)?;
            lanes.push(Lane {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                // Resilient lanes start at 1: `Resume { last_acked }`
                // prunes ids `<= last_acked`, so id 0 would be
                // indistinguishable from "nothing acked yet".
                next_id: u64::from(cfg.resilient),
                inflight: HashMap::new(),
                write_armed: false,
                dirty: false,
                token,
                addr,
            });
        }
        let retry_seed = cfg.retry_seed;
        Ok(Swarm {
            cfg,
            poller,
            lanes,
            report: SwarmReport::default(),
            rr: 0,
            seq: 0,
            done_issuing: false,
            touched: Vec::new(),
            addr,
            rng: SplitMix64::new(retry_seed),
        })
    }

    /// Queues one workload operation on lane `conn`, stamping its
    /// latency origin at `started`. Returns `false` once the workload
    /// is exhausted.
    fn issue(
        &mut self,
        conn: usize,
        started: Instant,
        workload: &mut impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<bool, ClientError> {
        if self.done_issuing {
            return Ok(false);
        }
        let Some((pid, op)) = workload(conn, self.seq) else {
            self.done_issuing = true;
            return Ok(false);
        };
        self.seq += 1;
        let trace = self.cfg.trace.is_enabled().then(|| {
            let trace_id = next_trace_id();
            (trace_id, self.cfg.trace.now_ns())
        });
        let resilient = self.cfg.resilient;
        let lane = &mut self.lanes[conn];
        let req_id = lane.next_id;
        lane.next_id += 1;
        let req = match trace {
            Some((trace_id, _)) => Request::TracedApply {
                ctx: TraceContext {
                    trace_id,
                    span_id: req_id,
                },
                pid: pid as u32,
                op,
            },
            None => Request::Apply {
                pid: pid as u32,
                op,
            },
        };
        let mark = lane.wbuf.len();
        wire::encode_request(req_id, &req, &mut lane.wbuf)?;
        let frame = if resilient {
            lane.wbuf[mark..].to_vec()
        } else {
            Vec::new()
        };
        lane.inflight.insert(
            req_id,
            InflightOp {
                started,
                trace,
                frame,
            },
        );
        if !lane.dirty {
            lane.dirty = true;
            self.touched.push(conn);
        }
        Ok(true)
    }

    /// Flushes lane `conn`'s write buffer as far as the socket allows,
    /// arming or disarming write interest to match what is left.
    fn pump_write(&mut self, conn: usize) -> Result<(), ClientError> {
        let lane = &mut self.lanes[conn];
        while lane.wants_write() {
            match lane.stream.write(&lane.wbuf[lane.wpos..]) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    )))
                }
                Ok(n) => lane.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        if !lane.wants_write() {
            lane.wbuf.clear();
            lane.wpos = 0;
        }
        let want = lane.wants_write();
        if want != lane.write_armed {
            lane.write_armed = want;
            let interest = if want {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            self.poller
                .reregister(poll::raw_fd(&lane.stream), conn as u64, interest)?;
        }
        Ok(())
    }

    /// Reads everything the socket has, consumes complete response
    /// frames, and (in closed loop) refills the pipeline.
    fn pump_read(
        &mut self,
        conn: usize,
        workload: &mut impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<(), ClientError> {
        let closed_loop = self.cfg.rate.is_none();
        loop {
            let lane = &mut self.lanes[conn];
            let old = lane.rbuf.len();
            lane.rbuf.resize(old + 64 * 1024, 0);
            let got = match lane.stream.read(&mut lane.rbuf[old..]) {
                Ok(0) => {
                    lane.rbuf.truncate(old);
                    if lane.inflight.is_empty() {
                        // Graceful close with nothing owed: fine.
                        return Ok(());
                    }
                    if self.cfg.resilient {
                        // An I/O-class error so `recover` reconnects.
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            format!(
                                "connection {conn} closed with {} in flight",
                                lane.inflight.len()
                            ),
                        )));
                    }
                    return Err(ClientError::Protocol(format!(
                        "server closed connection {conn} with {} in flight",
                        lane.inflight.len()
                    )));
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    lane.rbuf.truncate(old);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    lane.rbuf.truncate(old);
                    continue;
                }
                Err(e) => return Err(ClientError::Io(e)),
            };
            lane.rbuf.truncate(old + got);

            let mut at = 0;
            let mut refill = 0;
            let mut requeued = false;
            loop {
                let lane = &mut self.lanes[conn];
                match wire::split_frame(&lane.rbuf, at)? {
                    None => break,
                    Some(range) => {
                        at = range.end;
                        let (req_id, resp) = wire::decode_response_current(&lane.rbuf[range])?;
                        let Some(flight) = lane.inflight.remove(&req_id) else {
                            return Err(ClientError::Protocol(format!(
                                "response to unknown req_id {req_id} on connection {conn}"
                            )));
                        };
                        if let Some((trace_id, t0)) = flight.trace {
                            let dur = self.cfg.trace.now_ns().saturating_sub(t0);
                            self.cfg.trace.event_at(
                                t0,
                                Some(dur),
                                "client.apply",
                                [
                                    ("trace_id", TraceArg::U64(trace_id)),
                                    ("conn", TraceArg::U64(conn as u64)),
                                ],
                            );
                        }
                        let mut completed = true;
                        match resp {
                            Response::Ok(_) => {
                                self.report.ops_ok += 1;
                                self.report.rtt_ns.push(
                                    u64::try_from(flight.started.elapsed().as_nanos())
                                        .unwrap_or(u64::MAX),
                                );
                            }
                            Response::Err { code, .. }
                                if self.cfg.resilient && code.retry_in_place() =>
                            {
                                // Busy backpressure or a shed deadline:
                                // not applied yet (or still applying
                                // behind an in-flight marker). Re-send
                                // the same req_id — the session reply
                                // cache converges it to exactly one
                                // effect.
                                completed = false;
                                requeued = true;
                                let lane = &mut self.lanes[conn];
                                lane.wbuf.extend_from_slice(&flight.frame);
                                lane.inflight.insert(req_id, flight);
                            }
                            Response::Err {
                                code: ErrorCode::Busy,
                                ..
                            } => {
                                self.report.ops_busy += 1;
                            }
                            Response::Err { .. } => self.report.ops_err += 1,
                            other => {
                                return Err(ClientError::Protocol(format!(
                                    "non-value response to a swarm apply: {other:?}"
                                )))
                            }
                        }
                        if closed_loop && completed {
                            refill += 1;
                        }
                    }
                }
            }
            let lane = &mut self.lanes[conn];
            lane.rbuf.drain(..at);
            if requeued && !lane.dirty {
                lane.dirty = true;
                self.touched.push(conn);
            }
            for _ in 0..refill {
                if !self.issue(conn, Instant::now(), workload)? {
                    break;
                }
            }
        }
    }

    /// Resilient-mode error triage: transport failures trigger a
    /// reconnect-and-resume of just this lane; everything else (and
    /// every error outside resilient mode) aborts the run.
    fn recover(
        &mut self,
        conn: usize,
        err: ClientError,
        workload: &mut impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<(), ClientError> {
        if !self.cfg.resilient || !reconnect_worthy(&err) {
            return Err(err);
        }
        self.reconnect_lane(conn, workload)
    }

    /// Tears down lane `conn`'s socket and rebuilds the session on a
    /// fresh one: backoff-paced connect, `Hello`, `Resume` acking
    /// everything below the oldest in-flight op, then a verbatim
    /// re-send of every in-flight frame (completed ones come back as
    /// replays from the server's reply cache). Closed loop tops the
    /// pipeline back up afterwards.
    fn reconnect_lane(
        &mut self,
        conn: usize,
        workload: &mut impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<(), ClientError> {
        let token = self.lanes[conn].token;
        // Only ids at or above the oldest in-flight op may still need a
        // replay; everything below has been consumed.
        let last_acked = self.lanes[conn]
            .inflight
            .keys()
            .min()
            .map(|m| m - 1)
            .unwrap_or(self.lanes[conn].next_id - 1);
        self.poller
            .deregister(poll::raw_fd(&self.lanes[conn].stream))
            .ok();
        // Reconnect attempts rotate through the lane's current server
        // and every configured fallback, starting where the lane was —
        // a dead member stops absorbing attempts after one miss each
        // rotation, and a live one picks the session up via `Resume`.
        let prev = self.lanes[conn].addr;
        let mut candidates = vec![self.addr];
        candidates.extend(self.cfg.fallbacks.iter().copied());
        let start = candidates.iter().position(|a| *a == prev).unwrap_or(0);
        let mut attempt: u32 = 0;
        let (stream, chosen) = loop {
            let target = candidates[(start + attempt as usize) % candidates.len()];
            attempt += 1;
            let dial = TcpStream::connect(target)
                .map_err(ClientError::Io)
                .and_then(|mut s| {
                    if self.cfg.nodelay {
                        s.set_nodelay(true)?;
                    }
                    handshake(&mut s)?;
                    resume(&mut s, token, last_acked)?;
                    Ok(s)
                });
            match dial {
                Ok(s) => break (s, target),
                Err(e) if attempt < 30 && reconnect_worthy(&e) => {
                    // Capped exponential backoff, jittered into the
                    // upper half — deterministic under `retry_seed`.
                    let full = (1_000_000u64 << (attempt - 1).min(6)).min(50_000_000);
                    let jit = full / 2 + self.rng.below(full / 2 + 1);
                    std::thread::sleep(Duration::from_nanos(jit));
                }
                Err(e) => return Err(e),
            }
        };
        poll::set_nonblocking(&stream)?;
        self.poller
            .register(poll::raw_fd(&stream), conn as u64, Interest::READ)?;
        if chosen != prev {
            self.report.redirects += 1;
        }
        let lane = &mut self.lanes[conn];
        lane.addr = chosen;
        lane.stream = stream;
        lane.rbuf.clear();
        lane.wbuf.clear();
        lane.wpos = 0;
        lane.write_armed = false;
        let mut ids: Vec<u64> = lane.inflight.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let frame = lane.inflight[&id].frame.clone();
            lane.wbuf.extend_from_slice(&frame);
        }
        if !lane.dirty {
            lane.dirty = true;
            self.touched.push(conn);
        }
        self.report.reconnects += 1;
        // Closed loop: responses eaten by the dead socket never ran
        // their refill, which would shrink the pipeline for good.
        if self.cfg.rate.is_none() {
            while self.lanes[conn].inflight.len() < self.cfg.pipeline {
                if !self.issue(conn, Instant::now(), workload)? {
                    break;
                }
            }
        }
        Ok(())
    }

    /// The event loop: prime, then pace arrivals and pump sockets
    /// until the workload is exhausted and every response is in.
    fn drive(
        mut self,
        mut workload: impl FnMut(usize, u64) -> Option<(usize, Op)>,
    ) -> Result<SwarmReport, ClientError> {
        let start = Instant::now();
        // Open-loop arrival clock: seconds per op across the swarm.
        let gap = self.cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r));
        let mut next_arrival = start;

        if gap.is_none() {
            // Closed loop: prime every lane to its pipeline depth.
            'prime: for conn in 0..self.lanes.len() {
                for _ in 0..self.cfg.pipeline {
                    if !self.issue(conn, Instant::now(), &mut workload)? {
                        break 'prime;
                    }
                }
            }
        }

        let mut events: Vec<Event> = Vec::new();
        loop {
            // Open loop: issue every arrival whose scheduled time has
            // passed, charging latency from the schedule, not `now`.
            if let Some(gap) = gap {
                while !self.done_issuing && Instant::now() >= next_arrival {
                    let conn = self.rr;
                    self.rr = (self.rr + 1) % self.lanes.len();
                    if !self.issue(conn, next_arrival, &mut workload)? {
                        break;
                    }
                    next_arrival += gap;
                }
            }
            while let Some(conn) = self.touched.pop() {
                self.lanes[conn].dirty = false;
                if self.lanes[conn].wants_write() && !self.lanes[conn].write_armed {
                    if let Err(e) = self.pump_write(conn) {
                        self.recover(conn, e, &mut workload)?;
                    }
                }
            }

            let inflight: usize = self.lanes.iter().map(|l| l.inflight.len()).sum();
            if self.done_issuing && inflight == 0 {
                break;
            }

            let timeout = match gap {
                Some(_) if !self.done_issuing => {
                    let now = Instant::now();
                    Some(
                        next_arrival
                            .saturating_duration_since(now)
                            .max(Duration::ZERO),
                    )
                }
                _ => Some(Duration::from_millis(50)),
            };
            self.poller.wait(&mut events, timeout)?;
            let ready = std::mem::take(&mut events);
            for ev in &ready {
                let conn = ev.token as usize;
                if conn >= self.lanes.len() {
                    continue;
                }
                if ev.readable || ev.error {
                    if let Err(e) = self.pump_read(conn, &mut workload) {
                        self.recover(conn, e, &mut workload)?;
                    }
                }
                if ev.writable {
                    if let Err(e) = self.pump_write(conn) {
                        self.recover(conn, e, &mut workload)?;
                    }
                }
            }
            events = ready;
        }

        self.report.elapsed = start.elapsed();
        debug_assert_eq!(self.report.rtt_ns.len() as u64, self.report.ops_ok);
        Ok(self.report)
    }
}

/// Blocking `Hello` exchange on a fresh socket, before it goes
/// nonblocking.
fn handshake(stream: &mut TcpStream) -> Result<(), ClientError> {
    let mut buf = Vec::new();
    wire::encode_request(
        0,
        &Request::Hello {
            version: wire::VERSION,
        },
        &mut buf,
    )?;
    stream.write_all(&buf)?;
    stream.flush()?;
    buf.clear();
    if !wire::read_frame(stream, &mut buf)? {
        return Err(ClientError::Protocol(
            "server closed during version negotiation".into(),
        ));
    }
    let (req_id, resp) = wire::decode_response_current(&buf)?;
    if req_id != 0 {
        return Err(ClientError::Protocol(format!(
            "handshake response carried req_id {req_id}, expected 0"
        )));
    }
    match resp {
        Response::Hello { version } if version == wire::VERSION => Ok(()),
        Response::Hello { version } => Err(ClientError::Protocol(format!(
            "server accepted version {version}, we speak {}",
            wire::VERSION
        ))),
        Response::Err { code, message } => Err(ClientError::Server { code, message }),
        other => Err(ClientError::Protocol(format!(
            "non-hello response to a hello: {other:?}"
        ))),
    }
}

/// Blocking `Resume` exchange binding `token` to a fresh socket,
/// before it goes nonblocking. Uses a `req_id` far outside the lane's
/// monotonic operation ids.
fn resume(stream: &mut TcpStream, token: u64, last_acked: u64) -> Result<(), ClientError> {
    const RESUME_REQ_ID: u64 = u64::MAX - 1;
    let mut buf = Vec::new();
    wire::encode_request(
        RESUME_REQ_ID,
        &Request::Resume { token, last_acked },
        &mut buf,
    )?;
    stream.write_all(&buf)?;
    stream.flush()?;
    buf.clear();
    if !wire::read_frame(stream, &mut buf)? {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed during session resumption",
        )));
    }
    let (req_id, resp) = wire::decode_response_current(&buf)?;
    if req_id != RESUME_REQ_ID {
        return Err(ClientError::Protocol(format!(
            "resume response carried req_id {req_id}, expected {RESUME_REQ_ID}"
        )));
    }
    match resp {
        Response::Resumed { token: t, .. } if t == token => Ok(()),
        Response::Resumed { token: t, .. } => Err(ClientError::Protocol(format!(
            "server resumed session {t}, we bound {token}"
        ))),
        Response::Err { code, message } => Err(ClientError::Server { code, message }),
        other => Err(ClientError::Protocol(format!(
            "non-resumed response to a resume: {other:?}"
        ))),
    }
}
