//! `bso-client`: a pipelined client for the `bso-wire/v2`
//! shared-object service, with an op-recording mode whose output feeds
//! the Wing–Gong linearizability checker in `bso-sim`, and an
//! event-driven [`Swarm`] for driving thousands of connections from
//! one thread.
//!
//! A [`Connection`] (built via [`Connection::builder`]) talks to one
//! `bso-server`, negotiating the wire version with a `Hello` handshake
//! up front. Requests are written into a buffered stream without
//! flushing, so a burst of [`Connection::send`]s becomes one TCP write
//! when [`Connection::flush`] (or the first [`Connection::recv`])
//! happens — the wire-level pipelining the server's batched event
//! loops are built for. Responses may come back out of order; they are
//! correlated by `req_id` and stashed until asked for, so `send A,
//! send B, wait B, wait A` works.
//!
//! # Recording histories
//!
//! Attach a process-wide [`HistoryRecorder`] (one shared clock across
//! every connection) and each successful operation is logged as a
//! [`RecordedOp`] whose interval covers the server-side linearization
//! point: the invocation tick is taken before the request bytes leave,
//! the response tick after the response arrives, and the server
//! applies the operation strictly in between. The recorded real-time
//! precedence is therefore sound for [`bso_sim::check_history`] — two
//! ops it orders really were non-overlapping.
//!
//! ```no_run
//! use std::sync::Arc;
//! use bso_client::{Connection, HistoryRecorder};
//! use bso_objects::{Layout, ObjectId, ObjectInit, Op, Value};
//!
//! let mut layout = Layout::new();
//! let reg = layout.push(ObjectInit::Register(Value::Nil));
//! let rec = Arc::new(HistoryRecorder::new());
//! let mut conn = Connection::builder()
//!     .recorder(Arc::clone(&rec))
//!     .connect("127.0.0.1:4860")
//!     .unwrap();
//! conn.apply(0, Op::write(reg, Value::Int(7))).unwrap();
//! conn.apply(0, Op::read(reg)).unwrap();
//! drop(conn);
//! bso_sim::check_history(&layout, &rec.take_log()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resilient;
pub mod swarm;

pub use resilient::{ResilientBuilder, ResilientClient, RetryPolicy};
pub use swarm::{Swarm, SwarmBuilder, SwarmReport};

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bso_objects::{Op, Value};
use bso_server::wire::{self, WireError};
use bso_server::{ErrorCode, Request, Response, TraceContext};
use bso_sim::RecordedOp;
use bso_telemetry::trace::{TraceArg, TraceWorker};
use bso_telemetry::Histogram;

/// Process-wide trace-id allocator: ids must be unique across every
/// traced connection and swarm lane in the process, or merged traces
/// would cross-match spans from unrelated requests.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (including EOF while a reply was owed).
    Io(std::io::Error),
    /// The server sent bytes that do not decode as `bso-wire/v2`.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered a request we never sent, or with a response
    /// shape the request cannot produce.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The shared wire-level [`ErrorCode`] behind this error, when the
    /// server sent one — the error-code enum is the *same type* the
    /// server encodes, so client and server vocabulary cannot drift.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether this is a refusal that can be retried *on the same
    /// connection* (`Busy` backpressure, a shed `Expired` deadline) —
    /// the request was not applied and a re-send is safe as-is.
    pub fn is_busy(&self) -> bool {
        self.code().is_some_and(ErrorCode::retry_in_place)
    }

    /// Whether this is retryable at all — in place *or* after a
    /// reconnect-and-resume (`ShuttingDown`, `Overloaded`), *or* after
    /// a routing-table refresh (`WrongShard`). The [`ResilientClient`]
    /// consumes the finer split directly.
    pub fn is_retryable(&self) -> bool {
        self.code().is_some_and(ErrorCode::is_retryable)
    }

    /// When this is a typed `WrongShard` refusal, the routing-table
    /// epoch the refusing server held — the signal that the caller's
    /// table is stale and the op must be re-routed after a refresh.
    /// The op was *not* applied, so redirecting it is duplicate-safe.
    pub fn wrong_shard_epoch(&self) -> Option<u64> {
        match self {
            ClientError::Server {
                code: ErrorCode::WrongShard,
                message,
            } => wire::wrong_shard_epoch(message).or(Some(0)),
            _ => None,
        }
    }
}

/// A shared invocation/response clock plus the log it stamps.
///
/// One recorder must be shared (via `Arc`) by every connection whose
/// operations should be checked as a single concurrent history — the
/// clock is what makes intervals from different connections
/// comparable. Mirrors `bso_sim::RecordingMemory`: failed operations
/// are not recorded (a refused op has no effect to linearize).
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    log: Mutex<Vec<RecordedOp>>,
}

impl HistoryRecorder {
    /// A fresh recorder with the clock at zero.
    pub fn new() -> HistoryRecorder {
        HistoryRecorder::default()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    fn record(&self, rec: RecordedOp) {
        self.log.lock().unwrap().push(rec);
    }

    /// Drains the log so far, sorted by response time (the order
    /// [`bso_sim::check_history`] expects).
    pub fn take_log(&self) -> Vec<RecordedOp> {
        let mut log = std::mem::take(&mut *self.log.lock().unwrap());
        log.sort_by_key(|r| r.responded_at);
        log
    }

    /// Operations recorded so far.
    pub fn len(&self) -> usize {
        self.log.lock().unwrap().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What we remember about an in-flight request.
struct Pending {
    pid: usize,
    op: Option<Op>,
    invoked_at: u64,
    sent: Instant,
    /// `(trace_id, start on the trace clock)` for a traced apply.
    trace: Option<(u64, u64)>,
}

/// A pipelined connection to one `bso-server`.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    out: Vec<u8>,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    stashed: HashMap<u64, Response>,
    recorder: Option<std::sync::Arc<HistoryRecorder>>,
    latency: Option<Histogram>,
    trace: TraceWorker,
}

/// Fluent configuration for a [`Connection`], mirroring the server's
/// builder idiom: construct with [`Connection::builder`], chain knobs,
/// finish with [`ClientBuilder::connect`].
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    no_handshake: bool,
    no_nodelay: bool,
    recorder: Option<std::sync::Arc<HistoryRecorder>>,
    latency: Option<Histogram>,
    trace: TraceWorker,
}

impl ClientBuilder {
    /// Whether to negotiate the wire version with a `Hello` round trip
    /// at connect time (default `true`). Skipping it saves one RTT
    /// against servers already known to speak [`wire::VERSION`].
    #[must_use]
    pub fn handshake(mut self, yes: bool) -> ClientBuilder {
        self.no_handshake = !yes;
        self
    }

    /// Whether to disable Nagle's algorithm (default `true`; pipelined
    /// small frames serialize on the RTT otherwise).
    #[must_use]
    pub fn nodelay(mut self, yes: bool) -> ClientBuilder {
        self.no_nodelay = !yes;
        self
    }

    /// Attaches a (shared) history recorder; every successful `Apply`
    /// is logged with interval timestamps.
    #[must_use]
    pub fn recorder(mut self, rec: std::sync::Arc<HistoryRecorder>) -> ClientBuilder {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a latency histogram; every completed request records
    /// its client-observed round-trip in nanoseconds.
    #[must_use]
    pub fn latency_histogram(mut self, hist: Histogram) -> ClientBuilder {
        self.latency = Some(hist);
        self
    }

    /// Attaches a trace track. Every apply is then sent as a
    /// `TracedApply` carrying a fresh `trace_id`, and its client-side
    /// round trip is recorded as a `client.apply` span — the server
    /// records a matching `server.apply` span with the same id, so the
    /// two exports can be joined by
    /// [`bso_telemetry::trace::merge_traces`]. A disabled worker (the
    /// default) keeps the plain `Apply` encoding and costs nothing.
    #[must_use]
    pub fn trace(mut self, worker: TraceWorker) -> ClientBuilder {
        self.trace = worker;
        self
    }

    /// Connects (and, unless disabled, completes the `Hello`
    /// handshake).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] for socket errors, [`ClientError::Server`]
    /// with [`ErrorCode::Version`] when the server refuses our wire
    /// version, [`ClientError::Protocol`] on a nonsensical handshake
    /// reply.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect(addr)?;
        if !self.no_nodelay {
            stream.set_nodelay(true)?;
        }
        let write_half = stream.try_clone()?;
        let mut conn = Connection {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            out: Vec::new(),
            next_id: 0,
            pending: HashMap::new(),
            stashed: HashMap::new(),
            recorder: self.recorder,
            latency: self.latency,
            trace: self.trace,
        };
        if !self.no_handshake {
            conn.hello()?;
        }
        Ok(conn)
    }
}

impl Connection {
    /// Starts configuring a connection. See [`ClientBuilder`] for the
    /// knobs and their defaults.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects to a server without the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpStream::connect`].
    #[deprecated(since = "0.2.0", note = "use `Connection::builder()` instead")]
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        Connection::builder()
            .handshake(false)
            .connect(addr)
            .map_err(|e| match e {
                ClientError::Io(e) => e,
                other => std::io::Error::other(other.to_string()),
            })
    }

    /// Attaches a (shared) history recorder; every subsequent
    /// successful `Apply` is logged with interval timestamps.
    #[deprecated(
        since = "0.2.0",
        note = "use `Connection::builder().recorder(...)` instead"
    )]
    #[must_use]
    pub fn with_recorder(mut self, rec: std::sync::Arc<HistoryRecorder>) -> Connection {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a latency histogram; every completed request records
    /// its client-observed round-trip in nanoseconds.
    #[deprecated(
        since = "0.2.0",
        note = "use `Connection::builder().latency_histogram(...)` instead"
    )]
    #[must_use]
    pub fn with_latency_histogram(mut self, hist: Histogram) -> Connection {
        self.latency = Some(hist);
        self
    }

    /// One `Hello` round trip: proposes [`wire::VERSION`] and checks
    /// the server's answer.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::Version`] when the
    /// server cannot serve our version; [`ClientError::Protocol`] when
    /// it answers with a different version than it accepted.
    pub fn hello(&mut self) -> Result<(), ClientError> {
        let id = self.send_control(&Request::Hello {
            version: wire::VERSION,
        })?;
        match self.wait(id)? {
            Response::Hello { version } if version == wire::VERSION => Ok(()),
            Response::Hello { version } => Err(ClientError::Protocol(format!(
                "server accepted version {version}, we speak {}",
                wire::VERSION
            ))),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-hello response to a hello: {other:?}"
            ))),
        }
    }

    /// Queues one operation without flushing and returns its `req_id`.
    /// Call [`Connection::flush`] (or any receive) to put it on the
    /// wire; interleave several sends first to pipeline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] if an operand value breaks the encoding
    /// limits (nothing is queued in that case).
    pub fn send(&mut self, pid: usize, op: Op) -> Result<u64, ClientError> {
        let req_id = self.next_id;
        self.next_id += 1;
        let trace = self.trace.is_enabled().then(|| {
            let trace_id = next_trace_id();
            (trace_id, self.trace.now_ns())
        });
        let req = match trace {
            Some((trace_id, _)) => Request::TracedApply {
                ctx: TraceContext {
                    trace_id,
                    span_id: req_id,
                },
                pid: pid as u32,
                op: op.clone(),
            },
            None => Request::Apply {
                pid: pid as u32,
                op: op.clone(),
            },
        };
        wire::encode_request(req_id, &req, &mut self.out)?;
        let invoked_at = self.recorder.as_deref().map(HistoryRecorder::tick);
        self.pending.insert(
            req_id,
            Pending {
                pid,
                op: Some(op),
                invoked_at: invoked_at.unwrap_or(0),
                sent: Instant::now(),
                trace,
            },
        );
        Ok(req_id)
    }

    fn send_control(&mut self, req: &Request) -> Result<u64, ClientError> {
        let req_id = self.next_id;
        self.next_id += 1;
        wire::encode_request(req_id, req, &mut self.out)?;
        self.pending.insert(
            req_id,
            Pending {
                pid: 0,
                op: None,
                invoked_at: 0,
                sent: Instant::now(),
                trace: None,
            },
        );
        Ok(req_id)
    }

    /// Writes and flushes everything queued so far.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        wire::write_frames(&mut self.writer, &mut self.out)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives one response (flushing queued requests first), in
    /// whatever order the server finished them.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on disconnect, [`ClientError::Wire`] on a
    /// malformed response, [`ClientError::Protocol`] on an unknown
    /// `req_id`.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        self.flush()?;
        let mut buf = Vec::new();
        if !wire::read_frame(&mut self.reader, &mut buf)? {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let (req_id, resp) = wire::decode_response_current(&buf)?;
        let Some(pending) = self.pending.remove(&req_id) else {
            return Err(ClientError::Protocol(format!(
                "response for unknown req_id {req_id}"
            )));
        };
        if let Some(h) = &self.latency {
            h.record(u64::try_from(pending.sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if let Some((trace_id, t0)) = pending.trace {
            let dur = self.trace.now_ns().saturating_sub(t0);
            self.trace.event_at(
                t0,
                Some(dur),
                "client.apply",
                [
                    ("trace_id", TraceArg::U64(trace_id)),
                    ("req_id", TraceArg::U64(req_id)),
                ],
            );
        }
        if let (Some(rec), Some(op), Response::Ok(v)) = (&self.recorder, &pending.op, &resp) {
            let responded_at = rec.tick();
            rec.record(RecordedOp {
                pid: pending.pid,
                op: op.clone(),
                resp: v.clone(),
                invoked_at: pending.invoked_at,
                responded_at,
            });
        }
        Ok((req_id, resp))
    }

    /// Receives until `req_id`'s response arrives, stashing any other
    /// completions for their own `wait` calls.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::recv`].
    pub fn wait(&mut self, req_id: u64) -> Result<Response, ClientError> {
        if let Some(r) = self.stashed.remove(&req_id) {
            return Ok(r);
        }
        loop {
            let (id, resp) = self.recv()?;
            if id == req_id {
                return Ok(resp);
            }
            self.stashed.insert(id, resp);
        }
    }

    /// One full round trip: send, flush, wait, unwrap.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed server errors (use
    /// [`ClientError::is_busy`] to spot retryable backpressure) plus
    /// everything [`Connection::recv`] can fail with.
    pub fn apply(&mut self, pid: usize, op: Op) -> Result<Value, ClientError> {
        let id = self.send(pid, op)?;
        match self.wait(id)? {
            Response::Ok(v) => Ok(v),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-value response to an apply: {other:?}"
            ))),
        }
    }

    /// Opens a leader-election session over a fresh
    /// `compare&swap-(k)`; the session hosts `k − 1` participants.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn open_election(&mut self, k: u32) -> Result<u32, ClientError> {
        let id = self.send_control(&Request::OpenElection { k })?;
        match self.wait(id)? {
            Response::Session(s) => Ok(s),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-session response to an open-election: {other:?}"
            ))),
        }
    }

    /// Runs participant `pid` of `session` to its decision and returns
    /// the elected leader.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn elect(&mut self, session: u32, pid: u32) -> Result<usize, ClientError> {
        let id = self.send_control(&Request::Elect { session, pid })?;
        match self.wait(id)? {
            Response::Ok(Value::Pid(winner)) => Ok(winner),
            Response::Ok(v) => Err(ClientError::Protocol(format!(
                "election decided a non-pid value {v}"
            ))),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-pid response to an elect: {other:?}"
            ))),
        }
    }

    /// Scrapes the server's live `bso-introspect/v1` snapshot: config
    /// identity, lifetime stats, and per-shard queue depths, timing
    /// quantiles, and flight-recorder contents as a JSON string (parse
    /// with [`bso_telemetry::json::parse`]).
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`]; v1 servers answer with a
    /// typed [`ErrorCode::Version`] error.
    pub fn introspect(&mut self) -> Result<String, ClientError> {
        let id = self.send_control(&Request::Introspect)?;
        match self.wait(id)? {
            Response::Introspect(json) => Ok(json),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-snapshot response to an introspect: {other:?}"
            ))),
        }
    }

    /// Round-trips a no-op, confirming the connection is live and all
    /// queued requests are flushed.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.send_control(&Request::Ping)?;
        match self.wait(id)? {
            Response::Ok(_) => Ok(()),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-ack response to a ping: {other:?}"
            ))),
        }
    }

    /// Requests sent but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    // Cluster plane (`bso-routing/v1`, DESIGN.md §3.15): routing-table
    // management and the migration transfer ops. Driven by the
    // `bso-cluster` coordinator, not by ordinary clients.

    /// Fetches the server's installed routing table as
    /// `(epoch, bso-routing/v1 document)`. Epoch 0 with an empty
    /// document means no table was ever installed (the server serves
    /// every object id).
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn fetch_routing(&mut self) -> Result<(u64, String), ClientError> {
        let id = self.send_control(&Request::FetchRouting)?;
        match self.wait(id)? {
            Response::Routing { epoch, table } => Ok((epoch, table)),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-routing response to a fetch-routing: {other:?}"
            ))),
        }
    }

    /// Installs a routing table: `epoch` must exceed the server's
    /// installed epoch, `ranges` are the object-id ranges *this* server
    /// now owns, `table` is the full `bso-routing/v1` document served
    /// back to [`Connection::fetch_routing`] callers.
    ///
    /// # Errors
    ///
    /// A typed `BadRequest` when `epoch` is not newer than the
    /// installed table, plus the classes of [`Connection::apply`].
    pub fn update_routing(
        &mut self,
        epoch: u64,
        ranges: Vec<(u64, u64)>,
        table: String,
    ) -> Result<(), ClientError> {
        let id = self.send_control(&Request::UpdateRouting {
            epoch,
            ranges,
            table,
        })?;
        self.wait_ack(id, "update-routing")
    }

    /// Detaches `ranges` from the server's owned set under a new
    /// `epoch`: the migration barrier. When this call returns, every
    /// apply on a detached range has either completed (its effect is
    /// visible to a subsequent [`Connection::export_object`]) or was
    /// refused with a typed `WrongShard`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::update_routing`].
    pub fn detach_ranges(
        &mut self,
        epoch: u64,
        ranges: Vec<(u64, u64)>,
    ) -> Result<(), ClientError> {
        let id = self.send_control(&Request::DetachRanges { epoch, ranges })?;
        self.wait_ack(id, "detach-ranges")
    }

    /// Exports object `obj`'s full serialized state for migration.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn export_object(&mut self, obj: u32) -> Result<Value, ClientError> {
        let id = self.send_control(&Request::ExportObject { obj })?;
        match self.wait(id)? {
            Response::Ok(v) => Ok(v),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-value response to an export-object: {other:?}"
            ))),
        }
    }

    /// Installs exported `state` as object `obj`, overwriting the
    /// resident copy.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn install_object(&mut self, obj: u32, state: Value) -> Result<(), ClientError> {
        let id = self.send_control(&Request::InstallObject { obj, state })?;
        self.wait_ack(id, "install-object")
    }

    /// Exports election session `session` as a `[k, cas-state]` pair.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn export_session(&mut self, session: u32) -> Result<Value, ClientError> {
        let id = self.send_control(&Request::ExportSession { session })?;
        match self.wait(id)? {
            Response::Ok(v) => Ok(v),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-value response to an export-session: {other:?}"
            ))),
        }
    }

    /// Reconstructs election session `session` (domain `k`) from an
    /// exported cas-state, overwriting any resident session.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn install_session(
        &mut self,
        session: u32,
        k: u32,
        state: Value,
    ) -> Result<(), ClientError> {
        let id = self.send_control(&Request::InstallSession { session, k, state })?;
        match self.wait(id)? {
            Response::Session(_) => Ok(()),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-session response to an install-session: {other:?}"
            ))),
        }
    }

    /// Waits for `req_id` and requires a plain `Ok` acknowledgement.
    fn wait_ack(&mut self, req_id: u64, what: &str) -> Result<(), ClientError> {
        match self.wait(req_id)? {
            Response::Ok(_) => Ok(()),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "non-ack response to a {what}: {other:?}"
            ))),
        }
    }
}
