//! Event-driven swarm tests: many concurrent connections multiplexed
//! on one client thread against a live server, with an exact
//! accepted-op ledger.
//!
//! The 1000-connection smoke test is `#[ignore]`d by default (it wants
//! a generous fd limit and a quiet machine); CI runs it explicitly
//! with `cargo test -p bso-client --test swarm_load -- --ignored`.

use bso_client::Swarm;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_server::poll::PollBackend;
use bso_server::Server;

const OBJECTS: usize = 8;

fn counters() -> Layout {
    let mut l = Layout::new();
    for _ in 0..OBJECTS {
        l.push(ObjectInit::FetchAdd(0));
    }
    l
}

/// Runs `conns` connections through a closed-loop fetch&add workload
/// and checks the ledger: every op answered, every accepted op visible
/// in a counter, and exactly one latency sample per success.
fn swarm_ledger(conns: usize, pipeline: usize, total_ops: u64, backend: PollBackend) {
    let layout = counters();
    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();

    let report = Swarm::builder()
        .connections(conns)
        .pipeline(pipeline)
        .backend(backend)
        .run(handle.local_addr(), |conn, seq| {
            (seq < total_ops)
                .then(|| (conn, Op::new(ObjectId(conn % OBJECTS), OpKind::FetchAdd(1))))
        })
        .unwrap();

    assert_eq!(report.ops_total(), total_ops, "every op was answered");
    assert_eq!(report.ops_err, 0, "only Ok or Busy are acceptable");
    assert_eq!(
        report.rtt_ns.len() as u64,
        report.ops_ok,
        "exactly one latency sample per successful op"
    );

    // Sum the counters through a fresh connection: accepted ops only.
    let mut conn = bso_client::Connection::builder()
        .connect(handle.local_addr())
        .unwrap();
    let mut sum = 0i64;
    for obj in 0..OBJECTS {
        match conn.apply(0, Op::read(ObjectId(obj))).unwrap() {
            Value::Int(n) => sum += n,
            other => panic!("counter read returned {other:?}"),
        }
    }
    assert_eq!(sum as u64, report.ops_ok, "ledger balances");
    drop(conn);

    let stats = handle.shutdown();
    assert_eq!(stats.busy, report.ops_busy);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.connections, (conns + 1) as u64);
}

#[test]
fn swarm_closed_loop_ledger_small() {
    swarm_ledger(32, 4, 4_000, PollBackend::Auto);
}

#[test]
fn swarm_portable_poll_backend() {
    swarm_ledger(16, 2, 1_000, PollBackend::Poll);
}

/// Open-loop pacing: the report still answers every op and keeps the
/// one-sample-per-success invariant under a scheduled arrival clock.
#[test]
fn swarm_open_loop_answers_everything() {
    let layout = counters();
    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let total = 2_000u64;
    let report = Swarm::builder()
        .connections(8)
        .rate(Some(50_000.0))
        .run(handle.local_addr(), |conn, seq| {
            (seq < total).then(|| (conn, Op::new(ObjectId(conn % OBJECTS), OpKind::FetchAdd(1))))
        })
        .unwrap();
    assert_eq!(report.ops_total(), total);
    assert_eq!(report.rtt_ns.len() as u64, report.ops_ok);
    handle.shutdown();
}

/// 1000 concurrent connections on one client thread. Ignored by
/// default; CI opts in.
#[test]
#[ignore = "wants ~2k spare fds; run explicitly (CI does)"]
fn swarm_thousand_connections() {
    swarm_ledger(1_000, 2, 50_000, PollBackend::Auto);
}
