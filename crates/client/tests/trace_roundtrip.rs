//! End-to-end trace round trip: a tracing client drives a loopback
//! server whose event loops record spans into an injected
//! [`TraceSink`], the two Chrome-trace exports are merged with
//! [`merge_traces`], and the merged timeline is validated — every
//! client span has a matching server span with the same `trace_id`,
//! and spans nest properly on every track.
//!
//! [`TraceSink`]: bso_telemetry::trace::TraceSink
//! [`merge_traces`]: bso_telemetry::trace::merge_traces

use std::collections::{BTreeSet, HashMap};

use bso_client::Connection;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
use bso_server::Server;
use bso_telemetry::json::{self, Json};
use bso_telemetry::trace::{merge_traces, TraceSink};

const OPS: usize = 40;

/// The `"X"` complete events of one span name, as
/// `(pid, tid, ts, dur, trace_id)`.
fn spans_named(doc: &Json, name: &str) -> Vec<(u64, u64, f64, f64, u64)> {
    doc.get("traceEvents")
        .and_then(Json::items)
        .unwrap()
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some(name)
        })
        .map(|e| {
            let num = |key: &str| e.get(key).and_then(Json::as_f64).expect(key);
            let trace_id = e
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_u64)
                .expect("span args carry trace_id");
            (
                num("pid") as u64,
                num("tid") as u64,
                num("ts"),
                num("dur"),
                trace_id,
            )
        })
        .collect()
}

/// Complete events on one track either nest or are disjoint — a span
/// that starts inside another must also end inside it.
fn assert_well_nested(mut spans: Vec<(f64, f64)>) {
    spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut open_ends: Vec<f64> = Vec::new();
    for (ts, end) in spans {
        while open_ends.last().is_some_and(|&top| ts >= top) {
            open_ends.pop();
        }
        if let Some(&parent_end) = open_ends.last() {
            assert!(
                end <= parent_end,
                "span [{ts}, {end}] crosses its parent's end {parent_end}"
            );
        }
        open_ends.push(end);
    }
}

#[test]
fn traced_ops_merge_into_one_timeline() {
    let mut layout = Layout::new();
    layout.push(ObjectInit::FetchAdd(0));
    layout.push(ObjectInit::FetchAdd(0));

    // Independent sinks on the two sides, as in two real processes.
    let client_sink = TraceSink::enabled();
    let server_sink = TraceSink::enabled();

    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .trace_sink(server_sink.clone())
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let mut conn = Connection::builder()
        .trace(client_sink.worker("conn0"))
        .connect(handle.local_addr())
        .unwrap();
    for i in 0..OPS {
        // Both shards, so spans land on both server-loop tracks.
        conn.apply(0, Op::new(ObjectId(i % 2), OpKind::FetchAdd(1)))
            .unwrap();
    }
    drop(conn);
    handle.shutdown();

    let client_doc = json::parse(&client_sink.export_string()).unwrap();
    let server_doc = json::parse(&server_sink.export_string()).unwrap();
    let merged = merge_traces(&client_doc, &server_doc).expect("traces share trace_ids");

    // The merger's own ledger: every request matched, nothing orphaned.
    let summary = merged.get("merged").unwrap();
    let count = |key: &str| summary.get(key).and_then(Json::as_u64);
    assert_eq!(count("matched"), Some(OPS as u64));
    assert_eq!(count("client_only"), Some(0));
    assert_eq!(count("server_only"), Some(0));

    let client_spans = spans_named(&merged, "client.apply");
    let server_spans = spans_named(&merged, "server.apply");
    assert_eq!(client_spans.len(), OPS, "one client span per traced op");
    assert_eq!(server_spans.len(), OPS, "one server span per traced op");

    // Every client span has a server span with the same trace_id, and
    // ids are never reused.
    let client_ids: BTreeSet<u64> = client_spans.iter().map(|s| s.4).collect();
    let server_ids: BTreeSet<u64> = server_spans.iter().map(|s| s.4).collect();
    assert_eq!(client_ids.len(), OPS, "client trace_ids are unique");
    assert_eq!(client_ids, server_ids);

    // The server served each request inside the client's round trip.
    let server_durs: HashMap<u64, f64> = server_spans.iter().map(|s| (s.4, s.3)).collect();
    for &(_, _, _, dur, trace_id) in &client_spans {
        assert!(
            server_durs[&trace_id] <= dur,
            "server apply outlasted the client round trip for trace {trace_id}"
        );
    }

    // Spans spread over both server loops, and every track is
    // well-formed (begin/end nesting).
    let server_tracks: BTreeSet<(u64, u64)> = server_spans.iter().map(|s| (s.0, s.1)).collect();
    assert_eq!(server_tracks.len(), 2, "both shards recorded spans");
    let mut by_track: HashMap<(u64, u64), Vec<(f64, f64)>> = HashMap::new();
    for &(pid, tid, ts, dur, _) in client_spans.iter().chain(&server_spans) {
        by_track.entry((pid, tid)).or_default().push((ts, ts + dur));
    }
    for spans in by_track.into_values() {
        assert_well_nested(spans);
    }
}
