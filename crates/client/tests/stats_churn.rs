//! [`ServerStats`] exactness under concurrent connect/disconnect
//! churn.
//!
//! N client threads flap connections against a live server — connect,
//! a short pipelined burst, disconnect, repeat — while every thread
//! keeps its own ledger of connections opened and operations sent.
//! After the clients drain and the server shuts down, the server-side
//! counters must reconcile with the client-side ledgers *exactly*:
//! churn must never double-count an accepted connection, drop a
//! decoded request, or leave a response owed.
//!
//! [`ServerStats`]: bso_server::ServerStats

use std::sync::atomic::{AtomicU64, Ordering};

use bso_client::Connection;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_server::Server;

#[test]
fn stats_reconcile_exactly_under_connect_disconnect_churn() {
    const THREADS: usize = 8;
    const CYCLES: usize = 25;
    const OPS_PER_CONN: usize = 5;

    let mut layout = Layout::new();
    layout.push(ObjectInit::FetchAdd(0));
    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let addr = handle.local_addr();

    // Client-side ledgers, shared across the flapping threads.
    let conns_opened = AtomicU64::new(0);
    let ops_sent = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let conns_opened = &conns_opened;
            let ops_sent = &ops_sent;
            s.spawn(move || {
                for _ in 0..CYCLES {
                    // `handshake(false)` keeps the ledger exact: one
                    // request per apply, nothing else on the wire.
                    let mut conn = Connection::builder()
                        .handshake(false)
                        .connect(addr)
                        .expect("connect");
                    conns_opened.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..OPS_PER_CONN {
                        conn.apply(t, Op::new(ObjectId(0), OpKind::FetchAdd(1)))
                            .expect("apply");
                        ops_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(conn);
                    std::thread::yield_now();
                }
            });
        }
    });

    let opened = conns_opened.load(Ordering::Relaxed);
    let sent = ops_sent.load(Ordering::Relaxed);
    assert_eq!(opened, (THREADS * CYCLES) as u64);
    assert_eq!(sent, opened * OPS_PER_CONN as u64);

    // One post-churn reader: every accepted fetch&add is visible in
    // the counter before shutdown.
    let mut check = Connection::builder()
        .handshake(false)
        .connect(addr)
        .expect("connect checker");
    match check.apply(0, Op::read(ObjectId(0))).expect("read counter") {
        Value::Int(n) => assert_eq!(n as u64, sent, "every accepted op is visible"),
        other => panic!("counter read returned {other:?}"),
    }
    drop(check);

    let stats = handle.shutdown();
    assert_eq!(
        stats.connections,
        opened + 1,
        "every accepted connection (churned + checker) counted exactly once"
    );
    assert_eq!(
        stats.requests,
        sent + 1,
        "every decoded frame counted exactly once"
    );
    assert_eq!(
        stats.responses, stats.requests,
        "no responses owed after drain"
    );
    assert_eq!(
        stats.busy, 0,
        "single-object churn never trips backpressure"
    );
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.version_rejects, 0);
}
