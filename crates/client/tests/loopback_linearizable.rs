//! End-to-end loopback tests: several client threads hammer a live
//! `bso-server`, the recorded history goes through the Wing–Gong
//! checker, and elections agree across connections.

use std::sync::Arc;

use bso_client::{ClientError, Connection, HistoryRecorder};
use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_server::{Server, ServerConfig};
use bso_sim::check_history;

const THREADS: usize = 4;

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::CasK { k: 5 }); // o0
    l.push(ObjectInit::Register(Value::Nil)); // o1
    l.push(ObjectInit::FetchAdd(0)); // o2
    l.push(ObjectInit::Snapshot { slots: THREADS }); // o3
    l
}

/// Mixed traffic from `THREADS` connections, every successful op
/// recorded against one shared clock, then checked end to end.
#[test]
fn recorded_multithreaded_run_is_linearizable() {
    let layout = layout();
    let handle = Server::bind("127.0.0.1:0", &layout, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let rec = Arc::new(HistoryRecorder::new());

    std::thread::scope(|s| {
        for pid in 0..THREADS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let mut conn = Connection::connect(addr).unwrap().with_recorder(rec);
                let mut rng = SplitMix64::new(0xC11E57 + pid as u64);
                for _ in 0..60 {
                    let op = match rng.usize_below(5) {
                        0 => Op::cas(
                            ObjectId(0),
                            Value::Sym(Sym::BOTTOM),
                            Value::Sym(Sym::new(rng.range_u8(0, 3))),
                        ),
                        1 => Op::read(ObjectId(rng.usize_below(3))),
                        2 => Op::write(ObjectId(1), Value::Pid(pid)),
                        3 => Op::new(ObjectId(2), OpKind::FetchAdd(1)),
                        _ => {
                            if rng.usize_below(2) == 0 {
                                Op::new(ObjectId(3), OpKind::SnapshotUpdate(Value::Pid(pid)))
                            } else {
                                Op::new(ObjectId(3), OpKind::SnapshotScan)
                            }
                        }
                    };
                    conn.apply(pid, op).unwrap();
                }
                // A pipelined burst of fetch&adds: overlapping
                // intervals, but unique responses keep the check
                // cheap.
                let ids: Vec<u64> = (0..8)
                    .map(|_| {
                        conn.send(pid, Op::new(ObjectId(2), OpKind::FetchAdd(1)))
                            .unwrap()
                    })
                    .collect();
                for id in ids {
                    match conn.wait(id).unwrap() {
                        bso_server::Response::Ok(_) => {}
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });

    let log = rec.take_log();
    assert_eq!(log.len(), THREADS * 68, "every successful op is recorded");
    check_history(&layout, &log).expect("loopback history must be linearizable");
    let stats = handle.shutdown();
    assert_eq!(stats.requests, (THREADS * 68) as u64);
    assert_eq!(stats.malformed, 0);
}

/// All participants, spread across independent connections, elect the
/// same leader; a second session is independent of the first.
#[test]
fn elections_agree_across_connections() {
    let handle = Server::bind("127.0.0.1:0", &layout(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let session = Connection::connect(addr).unwrap().open_election(6).unwrap();

    let winners: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..5u32)
            .map(|pid| {
                s.spawn(move || {
                    Connection::connect(addr)
                        .unwrap()
                        .elect(session, pid)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(winners.windows(2).all(|w| w[0] == w[1]), "{winners:?}");
    assert!(winners[0] < 5, "leader is a participant");

    let mut conn = Connection::connect(addr).unwrap();
    let session2 = conn.open_election(3).unwrap();
    assert_ne!(session, session2);
    let w2 = conn.elect(session2, 0).unwrap();
    assert_eq!(w2, 0, "sole participant so far wins its own election");
    handle.shutdown();
}

/// Typed server errors surface as `ClientError::Server` and leave the
/// connection usable; `Busy` is flagged retryable.
#[test]
fn server_errors_are_typed_and_non_fatal() {
    let layout = layout();
    let handle = Server::bind("127.0.0.1:0", &layout, ServerConfig::default()).unwrap();
    let mut conn = Connection::connect(handle.local_addr()).unwrap();

    // Unknown object → BadRequest.
    let err = conn.apply(0, Op::read(ObjectId(99))).unwrap_err();
    match &err {
        ClientError::Server { code, .. } => {
            assert_eq!(*code, bso_server::ErrorCode::BadRequest)
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(!err.is_busy());

    // Domain violation on the CAS-(k) object → Object error, and the
    // object is untouched afterwards.
    let err = conn
        .apply(
            0,
            Op::cas(ObjectId(0), Value::Sym(Sym::BOTTOM), Value::Int(7)),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: bso_server::ErrorCode::Object,
            ..
        }
    ));
    assert_eq!(
        conn.apply(0, Op::read(ObjectId(0))).unwrap(),
        Value::Sym(Sym::BOTTOM)
    );
    conn.ping().unwrap();
    drop(conn);
    handle.shutdown();
}

/// Backpressure flood: with tiny queues every request still gets
/// exactly one answer — `Ok` or a retryable `Busy`, never silence.
#[test]
fn busy_backpressure_answers_everything() {
    let layout = layout();
    let config = ServerConfig {
        shards: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", &layout, config).unwrap();
    let mut conn = Connection::connect(handle.local_addr()).unwrap();

    let ids: Vec<u64> = (0..200)
        .map(|_| {
            conn.send(0, Op::new(ObjectId(2), OpKind::FetchAdd(1)))
                .unwrap()
        })
        .collect();
    let mut ok = 0u64;
    let mut busy = 0u64;
    for id in ids {
        match conn.wait(id) {
            Ok(bso_server::Response::Ok(_)) => ok += 1,
            Ok(bso_server::Response::Err { code, .. }) => {
                assert_eq!(code, bso_server::ErrorCode::Busy);
                busy += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(ok + busy, 200, "every pipelined request was answered");
    // The counter object's final value equals the accepted ops.
    assert_eq!(
        conn.apply(0, Op::read(ObjectId(2))).unwrap(),
        Value::Int(ok as i64)
    );
    drop(conn);
    let stats = handle.shutdown();
    assert_eq!(stats.busy, busy);
}
