//! End-to-end loopback tests: several client threads hammer a live
//! `bso-server`, the recorded history goes through the Wing–Gong
//! checker, and elections agree across connections.

use std::sync::Arc;

use bso_client::{ClientError, Connection, HistoryRecorder};
use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_server::Server;
use bso_sim::check_history;

const THREADS: usize = 4;

/// Spins up a server with core pinning off — the test host's cores
/// belong to the whole suite, not one loop each.
fn serve(layout: &Layout, shards: usize, queue: usize) -> bso_server::ServerHandle {
    Server::builder()
        .shards(shards)
        .queue_capacity(queue)
        .pin_cores(false)
        .bind("127.0.0.1:0", layout)
        .unwrap()
}

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::CasK { k: 5 }); // o0
    l.push(ObjectInit::Register(Value::Nil)); // o1
    l.push(ObjectInit::FetchAdd(0)); // o2
    l.push(ObjectInit::Snapshot { slots: THREADS }); // o3
    l
}

/// Mixed traffic from `THREADS` connections, every successful op
/// recorded against one shared clock, then checked end to end.
#[test]
fn recorded_multithreaded_run_is_linearizable() {
    let layout = layout();
    let handle = serve(&layout, 4, 128);
    let addr = handle.local_addr();
    let rec = Arc::new(HistoryRecorder::new());

    std::thread::scope(|s| {
        for pid in 0..THREADS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let mut conn = Connection::builder().recorder(rec).connect(addr).unwrap();
                let mut rng = SplitMix64::new(0xC11E57 + pid as u64);
                for _ in 0..60 {
                    let op = match rng.usize_below(5) {
                        0 => Op::cas(
                            ObjectId(0),
                            Value::Sym(Sym::BOTTOM),
                            Value::Sym(Sym::new(rng.range_u8(0, 3))),
                        ),
                        1 => Op::read(ObjectId(rng.usize_below(3))),
                        2 => Op::write(ObjectId(1), Value::Pid(pid)),
                        3 => Op::new(ObjectId(2), OpKind::FetchAdd(1)),
                        _ => {
                            if rng.usize_below(2) == 0 {
                                Op::new(ObjectId(3), OpKind::SnapshotUpdate(Value::Pid(pid)))
                            } else {
                                Op::new(ObjectId(3), OpKind::SnapshotScan)
                            }
                        }
                    };
                    conn.apply(pid, op).unwrap();
                }
                // A pipelined burst of fetch&adds: overlapping
                // intervals, but unique responses keep the check
                // cheap.
                let ids: Vec<u64> = (0..8)
                    .map(|_| {
                        conn.send(pid, Op::new(ObjectId(2), OpKind::FetchAdd(1)))
                            .unwrap()
                    })
                    .collect();
                for id in ids {
                    match conn.wait(id).unwrap() {
                        bso_server::Response::Ok(_) => {}
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });

    let log = rec.take_log();
    assert_eq!(log.len(), THREADS * 68, "every successful op is recorded");
    check_history(&layout, &log).expect("loopback history must be linearizable");
    let stats = handle.shutdown();
    // 68 operations plus the Hello handshake per connection.
    assert_eq!(stats.requests, (THREADS * 69) as u64);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.version_rejects, 0);
}

/// All participants, spread across independent connections, elect the
/// same leader; a second session is independent of the first.
#[test]
fn elections_agree_across_connections() {
    let handle = serve(&layout(), 4, 128);
    let addr = handle.local_addr();
    let session = Connection::builder()
        .connect(addr)
        .unwrap()
        .open_election(6)
        .unwrap();

    let winners: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..5u32)
            .map(|pid| {
                s.spawn(move || {
                    Connection::builder()
                        .connect(addr)
                        .unwrap()
                        .elect(session, pid)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(winners.windows(2).all(|w| w[0] == w[1]), "{winners:?}");
    assert!(winners[0] < 5, "leader is a participant");

    let mut conn = Connection::builder().connect(addr).unwrap();
    let session2 = conn.open_election(3).unwrap();
    assert_ne!(session, session2);
    let w2 = conn.elect(session2, 0).unwrap();
    assert_eq!(w2, 0, "sole participant so far wins its own election");
    handle.shutdown();
}

/// Typed server errors surface as `ClientError::Server` and leave the
/// connection usable; `Busy` is flagged retryable.
#[test]
fn server_errors_are_typed_and_non_fatal() {
    let layout = layout();
    let handle = serve(&layout, 4, 128);
    let mut conn = Connection::builder().connect(handle.local_addr()).unwrap();

    // Unknown object → BadRequest.
    let err = conn.apply(0, Op::read(ObjectId(99))).unwrap_err();
    match &err {
        ClientError::Server { code, .. } => {
            assert_eq!(*code, bso_server::ErrorCode::BadRequest)
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(!err.is_busy());

    // Domain violation on the CAS-(k) object → Object error, and the
    // object is untouched afterwards.
    let err = conn
        .apply(
            0,
            Op::cas(ObjectId(0), Value::Sym(Sym::BOTTOM), Value::Int(7)),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: bso_server::ErrorCode::Object,
            ..
        }
    ));
    assert_eq!(
        conn.apply(0, Op::read(ObjectId(0))).unwrap(),
        Value::Sym(Sym::BOTTOM)
    );
    conn.ping().unwrap();
    drop(conn);
    handle.shutdown();
}

/// Backpressure flood: with tiny queues every request still gets
/// exactly one answer — `Ok` or a retryable `Busy`, never silence.
#[test]
fn busy_backpressure_answers_everything() {
    let layout = layout();
    let handle = serve(&layout, 1, 1);
    let mut conn = Connection::builder().connect(handle.local_addr()).unwrap();

    let ids: Vec<u64> = (0..200)
        .map(|_| {
            conn.send(0, Op::new(ObjectId(2), OpKind::FetchAdd(1)))
                .unwrap()
        })
        .collect();
    let mut ok = 0u64;
    let mut busy = 0u64;
    for id in ids {
        match conn.wait(id) {
            Ok(bso_server::Response::Ok(_)) => ok += 1,
            Ok(bso_server::Response::Err { code, .. }) => {
                assert_eq!(code, bso_server::ErrorCode::Busy);
                busy += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(ok + busy, 200, "every pipelined request was answered");
    // The counter object's final value equals the accepted ops.
    assert_eq!(
        conn.apply(0, Op::read(ObjectId(2))).unwrap(),
        Value::Int(ok as i64)
    );
    drop(conn);
    let stats = handle.shutdown();
    assert_eq!(stats.busy, busy);
}

/// Cross-shard saturation: with two shards and capacity-1 transfer
/// queues, a pipelined flood aimed at both shards must surface typed
/// `Busy` rejections — and the accepted/rejected ledger must balance
/// exactly against the objects' final state.
#[test]
fn busy_flood_saturates_cross_shard_queues() {
    const OBJECTS: usize = 4;
    const ROUNDS: usize = 20;
    const PER_ROUND: usize = 400;

    let mut layout = Layout::new();
    for _ in 0..OBJECTS {
        layout.push(ObjectInit::FetchAdd(0));
    }
    let handle = serve(&layout, 2, 1);
    let mut conn = Connection::builder().connect(handle.local_addr()).unwrap();

    // Whichever loop owns this connection, half the object ids live on
    // the other shard, so half of each burst crosses a capacity-1
    // queue. Keep flooding (bounded) until backpressure shows up.
    let mut ok_per_obj = [0i64; OBJECTS];
    let mut busy = 0u64;
    for _ in 0..ROUNDS {
        let ids: Vec<(u64, usize)> = (0..PER_ROUND)
            .map(|i| {
                let obj = i % OBJECTS;
                let id = conn
                    .send(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                    .unwrap();
                (id, obj)
            })
            .collect();
        for (id, obj) in ids {
            match conn.wait(id).unwrap() {
                bso_server::Response::Ok(_) => ok_per_obj[obj] += 1,
                bso_server::Response::Err { code, .. } => {
                    assert_eq!(code, bso_server::ErrorCode::Busy, "only Busy is expected");
                    busy += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        if busy > 0 {
            break;
        }
    }
    assert!(
        busy > 0,
        "{} floods of {PER_ROUND} cross-shard ops never saturated a capacity-1 queue",
        ROUNDS
    );

    // Exact ledger: each counter advanced once per accepted op.
    for (obj, &expect) in ok_per_obj.iter().enumerate() {
        assert_eq!(
            conn.apply(0, Op::read(ObjectId(obj))).unwrap(),
            Value::Int(expect),
            "object {obj} disagrees with the accepted-op ledger"
        );
    }
    drop(conn);
    let stats = handle.shutdown();
    assert_eq!(stats.busy, busy);
}
