//! Connection-churn chaos: a seeded kill-proxy sits between the
//! clients and the server, severing every connection after a bounded
//! number of forwarded bytes. Resilient clients must reconnect,
//! resume, and re-send — and the run must end with *exactly* the
//! effects the clients observed: the FetchAdd ledger equals the number
//! of acked increments (no duplicate applies, no lost applies), every
//! success has exactly one RTT sample, and the server's lifetime stats
//! reconcile with the churn.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bso_client::{Connection, ResilientClient, RetryPolicy, Swarm};
use bso_objects::rng::SplitMix64;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
use bso_server::{Server, ServerHandle};

/// A chaos proxy that forwards bytes between each client and the
/// server, killing the pair after a seeded client->server byte budget
/// is spent. Budgets are drawn in accept order from one seeded RNG, so
/// a fixed seed fixes the kill schedule.
struct KillProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl KillProxy {
    fn spawn(upstream: SocketAddr, seed: u64, budget_lo: u64, budget_hi: u64) -> KillProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let rng = Arc::new(Mutex::new(SplitMix64::new(seed)));
        std::thread::spawn(move || {
            for inbound in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(client) = inbound else { break };
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let budget = {
                    let mut r = rng.lock().unwrap();
                    budget_lo + r.below(budget_hi - budget_lo)
                };
                let c2 = client.try_clone().unwrap();
                let s2 = server.try_clone().unwrap();
                // client -> server enforces the budget and kills both
                // halves when it runs out — mid-frame, mid-pipeline,
                // wherever the byte count lands.
                std::thread::spawn(move || {
                    forward(client, server, Some(budget));
                });
                // server -> client forwards freely until either side
                // dies.
                std::thread::spawn(move || {
                    forward(s2, c2, None);
                });
            }
        });
        KillProxy { addr, stop }
    }
}

impl Drop for KillProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

fn forward(mut from: TcpStream, mut to: TcpStream, mut budget: Option<u64>) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &buf[..n];
        if let Some(b) = budget.as_mut() {
            if (chunk.len() as u64) >= *b {
                // Spend what's left, then sever both directions.
                chunk = &chunk[..*b as usize];
                let _ = to.write_all(chunk);
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            *b -= chunk.len() as u64;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::FetchAdd(0));
    l
}

fn serve() -> ServerHandle {
    Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout())
        .unwrap()
}

/// Reads the ledger directly from the server (not through the proxy).
fn read_counter(addr: SocketAddr) -> i64 {
    let mut direct = Connection::builder().connect(addr).unwrap();
    match direct.apply(0, Op::new(ObjectId(0), OpKind::FetchAdd(0))) {
        Ok(v) => v.as_int().unwrap(),
        Err(e) => panic!("ledger read failed: {e}"),
    }
}

#[test]
fn swarm_survives_seeded_connection_churn_with_exact_effects() {
    const OPS: u64 = 4000;
    const CONNS: usize = 4;
    let handle = serve();
    let proxy = KillProxy::spawn(handle.local_addr(), 0xC4A05, 1_500, 6_000);

    let report = Swarm::builder()
        .connections(CONNS)
        .pipeline(4)
        .resilient(true)
        .session_base(0x5E55_0000)
        .retry_seed(0xC4A05)
        .run(proxy.addr, |_conn, seq| {
            (seq < OPS).then(|| (0usize, Op::new(ObjectId(0), OpKind::FetchAdd(1))))
        })
        .expect("resilient swarm rides out the churn");

    // Every issued increment was acked exactly once.
    assert_eq!(report.ops_ok, OPS);
    assert_eq!(report.ops_err, 0);
    assert_eq!(report.ops_busy, 0, "resilient mode retries busy in place");
    // Exactly one RTT sample per success, even across reconnects.
    assert_eq!(report.rtt_ns.len() as u64, report.ops_ok);
    // ~140 KiB of request traffic against 1.5–6 KiB budgets: the churn
    // really happened.
    assert!(
        report.reconnects >= 5,
        "expected real churn, saw {} reconnects",
        report.reconnects
    );

    // The ledger says every FetchAdd(1) applied exactly once: acked
    // effects all landed, replayed retries never re-applied.
    assert_eq!(read_counter(handle.local_addr()), OPS as i64);

    drop(proxy);
    let stats = handle.shutdown();
    // Exact accounting across resets: the initial lanes, one server
    // connection per reconnect, and the direct ledger probe.
    assert_eq!(stats.connections, CONNS as u64 + report.reconnects + 1);
    assert_eq!(
        stats.malformed, 0,
        "truncated frames are closes, not garbage"
    );
    assert_eq!(stats.version_rejects, 0);
    assert_eq!(stats.resumes, CONNS as u64 + report.reconnects);
    assert!(stats.requests >= OPS);
    assert!(stats.responses <= stats.requests);
}

#[test]
fn resilient_client_reconnects_and_never_double_applies() {
    const OPS: i64 = 300;
    let handle = serve();
    let proxy = KillProxy::spawn(handle.local_addr(), 0xFA17, 600, 2_000);

    let mut client = ResilientClient::builder()
        .token(0x7E57_7E57)
        .policy(RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            read_timeout: Some(Duration::from_secs(2)),
        })
        .connect(proxy.addr)
        .unwrap();

    let mut sum_of_prestates = 0i64;
    for _ in 0..OPS {
        let v = client
            .apply(0, Op::new(ObjectId(0), OpKind::FetchAdd(1)))
            .expect("apply survives churn");
        sum_of_prestates += v.as_int().unwrap();
    }
    assert!(
        client.reconnects() >= 2,
        "budgets of <=2 KiB against ~10 KiB of traffic must force reconnects, saw {}",
        client.reconnects()
    );
    // Exactly-once: the counter's pre-states are 0,1,2,… with no value
    // skipped (lost apply) or repeated (duplicate apply), so their sum
    // is the exact arithmetic series.
    assert_eq!(sum_of_prestates, OPS * (OPS - 1) / 2);
    assert_eq!(read_counter(handle.local_addr()), OPS);

    drop(client);
    drop(proxy);
    let stats = handle.shutdown();
    assert_eq!(stats.malformed, 0);
    assert!(stats.resumes >= 3);
}
