//! # bso — Bounded-Size Synchronization Objects
//!
//! A Rust reproduction of Yehuda Afek and Gideon Stupp, *"Delimiting
//! the Power of Bounded Size Synchronization Objects"* (PODC 1994).
//!
//! Herlihy's hierarchy ranks shared-object types by consensus number;
//! `compare&swap` sits at the top with consensus number ∞ — even when
//! its register can hold only three values. The paper refines the top
//! of the hierarchy by a **space** parameter: let `n_k` be the maximum
//! number of processes that can wait-freely elect a leader with one
//! `compare&swap-(k)` register (domain size `k`) plus unbounded
//! read/write memory. Then
//!
//! ```text
//!   k − 1      =  n_k  with the compare&swap alone   (Burns–Cruz–Loui)
//!   (k − 1)!   ≤  n_k                                 (here: LabelElection)
//!   n_k        ≤  O(k^(k²+3))                         (the paper's Theorem 1)
//! ```
//!
//! *The more values a strong shared object can hold, the stronger it
//! is* — and adding read/write registers helps exponentially, but only
//! exponentially.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`objects`] | value model, sequential object specs, hardware atomics |
//! | [`sim`] | one-op-per-step protocol state machines, schedulers, exhaustive model checker, refuter, thread runner, linearizability checker |
//! | [`protocols`] | [`CasOnlyElection`] (k−1), [`LabelElection`] ((k−1)!), the consensus zoo, register-based snapshots |
//! | [`combinatorics`] | Lemma 1.1's move/jump game, Lehmer permutations, the bound landscape |
//! | [`hierarchy`] | consensus numbers with verified witnesses and refuted candidates |
//! | [`emulation`] | Theorem 1's reduction, executed: emulators on read/write memory constructing validated runs of a compare&swap election |
//! | [`telemetry`] | counters/gauges/histograms behind the `BSO_TELEMETRY=path.json` escape hatch every example and bench honours |
//! | [`server`] | the `bso-wire/v1` TCP service: sharded object store, bounded-queue backpressure, session-based leader election |
//! | [`client`] | pipelined wire client with op recording for end-to-end linearizability checking |
//! | [`cluster`] | multi-server sharding: epoch-stamped routing tables, live shard migration, replicated election sessions, routing-aware clients |
//!
//! ## Quickstart
//!
//! ```
//! use bso::protocols::LabelElection;
//! use bso::sim::{checker, scheduler::RandomSched, ProtocolExt, Simulation};
//!
//! // Six processes elect a leader with ONE compare&swap-(4): more than
//! // the k−1 = 3 the register supports on its own.
//! let proto = LabelElection::new(6, 4)?;
//! let mut sim = Simulation::new(&proto, &proto.pid_inputs());
//! let result = sim.run(&mut RandomSched::new(42), 100_000)?;
//! checker::check_election(&result)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for the experiment regenerators (one per
//! EXPERIMENTS.md entry) and DESIGN.md for the reproduction inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guide;

pub use bso_client as client;
pub use bso_cluster as cluster;
pub use bso_combinatorics as combinatorics;
pub use bso_emulation as emulation;
pub use bso_hierarchy as hierarchy;
pub use bso_objects as objects;
pub use bso_protocols as protocols;
pub use bso_server as server;
pub use bso_sim as sim;
pub use bso_telemetry as telemetry;

pub use bso_combinatorics::bounds;
pub use bso_emulation::Reduction;
pub use bso_protocols::{CasOnlyElection, LabelElection};

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_cohere() {
        // The bound functions and the protocols agree on the
        // parameters they expose.
        let k = 5;
        let n = crate::bounds::nk_algorithmic(k) as usize;
        assert!(crate::LabelElection::new(n, k).is_ok());
        assert!(crate::LabelElection::new(n + 1, k).is_err());
        let b = crate::bounds::burns_bound(k);
        assert!(crate::CasOnlyElection::new(b, k).is_ok());
        assert!(crate::CasOnlyElection::new(b + 1, k).is_err());
        assert!(!crate::VERSION.is_empty());
    }
}
