//! # A guided tour: the paper, section by section, in code
//!
//! This module contains no items — it is the map from Afek & Stupp's
//! text to this repository. Read it with the paper (or DESIGN.md's
//! summary) at hand.
//!
//! ## §1 Introduction
//!
//! > *"It is by now well known that the type of operations supported
//! > on the shared memory cells greatly effects the kind of tasks that
//! > the n processes can solve."*
//!
//! The object zoo lives in [`bso_objects::spec::ObjectState`]: atomic
//! read/write registers, `compare&swap-(k)` over Σ = {⊥, 0, …, k−2},
//! unbounded compare&swap, test&set, fetch&add, FIFO queues, sticky
//! registers, snapshot objects, and the general bounded `rmw-(k)`.
//! Each has a sequential specification (the linearization reference)
//! and a hardware implementation ([`bso_objects::atomic`]) so the same
//! protocols run under the model checker and on real threads.
//!
//! > *"If only atomic read or write operations are supported … the
//! > system cannot wait-freely reach consensus, even if n = 2. …
//! > test-and-set … 2 processes can elect a leader …, but 3 can solve
//! > neither."*
//!
//! [`bso_hierarchy`] reproduces this landscape: the *possible* side by
//! exhaustive model checking ([`bso_sim::explore`] — a `Verified`
//! outcome covers **every** interleaving, and wait-freedom is decided
//! as acyclicity of the reachable state graph), the *impossible* side
//! by refutation ([`bso_sim::refute`] — a concrete counterexample
//! schedule against each natural candidate). `examples/hierarchy.rs`
//! prints the table; `examples/valence.rs` dissects the FLP mechanics
//! (bivalent and critical states) that power the refuter.
//!
//! > *"Herlihy showed that given these operation types any
//! > sequentially specified problem can be solved."*
//!
//! [`bso_protocols::universal`] is that construction — the consensus
//! log with announcement helping — exercised as universal counters,
//! test&set bits and registers, every response validated by agreed-log
//! replay.
//!
//! ## §2 Model and definitions
//!
//! The asynchronous shared-memory model is [`bso_sim`]: protocols are
//! state machines performing exactly one atomic shared-memory
//! operation per step ([`bso_sim::Protocol`]), the adversary is a
//! [`bso_sim::Scheduler`], crashes are fail-stops
//! ([`bso_sim::CrashPlan`]). The task specifications of §2 — leader
//! election (consistent / wait-free / valid) and k-set consensus — are
//! [`bso_sim::checker`]'s functions, enforced both on recorded runs
//! and incrementally inside the explorer.
//!
//! ## The two sides of `n_k`
//!
//! * **`k − 1` with the register alone** (Burns–Cruz–Loui \[5\],
//!   quoted in §1/§4): [`bso_protocols::CasOnlyElection`] — one
//!   `c&s(⊥ → own symbol)` per process, the response names the winner.
//!   Generalized to arbitrary bounded read-modify-write registers in
//!   the exact write-once model of \[5\] by
//!   [`bso_protocols::RmwOnlyElection`].
//! * **`(k − 1)!` with registers added** (the Ω(k!) algorithm of the
//!   FOCS '93 companion \[1\]): [`bso_protocols::LabelElection`] — the
//!   register's value history is driven to be a *permutation prefix*
//!   (the paper's label), recorded in a write-ahead log; the completed
//!   permutation names the leader via the Lehmer bijection
//!   ([`bso_combinatorics::perm`]). Verified exhaustively for small
//!   instances, stressed to n = 120 at k = 6, and run on hardware
//!   atomics. [`bso_protocols::LabelElectionRw`] is the
//!   fully-from-scratch twin: the snapshot object replaced by the
//!   register-built snapshot ([`bso_protocols::swmr`]), so nothing
//!   below the compare&swap is stronger than a read or a write.
//! * **`O(k^(k²+3))` at most** (Theorem 1): not runnable — it is an
//!   impossibility — but its *proof object* is: see below.
//!
//! `examples/bounds_table.rs` prints the whole landscape, including
//! the paper's closing conjecture `n_k = Θ(k!)`.
//!
//! ## §3 The reduction (Theorem 1)
//!
//! The proof emulates a hypothetical big election `A` by
//! `m = (k−1)!+1` emulators restricted to read/write memory; the
//! emulators split into at most `(k−1)!` groups (one per label) and
//! would solve (k−1)!-set consensus — impossible from registers.
//!
//! Two executable engines:
//!
//! * [`bso_emulation::Reduction`] — the base-case splitting of \[1\]
//!   (one branch per conflicting successful compare&swap), validated
//!   per branch by real-time linearizability replay. For the
//!   value-fresh algorithms above, branch = label and the `(k−1)!`
//!   counting is observable (`examples/reduction.rs`, including a
//!   scripted schedule that *forces* a group split).
//! * [`bso_emulation::rich`] — the full PODC '94 machinery:
//!   suspension quotas (Fig. 3 ll. 4–5), rebalancing releases with the
//!   concurrency margin (Fig. 5), and tree-routed history updates
//!   through excess-graph cycles (Fig. 6). Exercised by the
//!   value-reusing [`bso_emulation::pingpong::PingPong`] workload and
//!   validated by **run legality**
//!   ([`bso_sim::linearizability::check_run_legality`]) with frozen
//!   suspended operations *mapped into* the run — exactly how Lemma
//!   1.2 builds `R|λ`. Under-provisioned instances *stall*, which is
//!   the paper's Φ requirement made measurable
//!   (`examples/rich_emulation.rs`).
//!
//! The figures map to modules one-to-one:
//!
//! | figure | module |
//! |---|---|
//! | Fig. 1 (tree `T`, small trees `t`, `FromParent`/`ToParent`, m-tuple records) | [`bso_emulation::tree`] |
//! | Fig. 2 (vp-graph) | suspension records in [`bso_emulation::rich`] + Definition 1 counting in [`bso_emulation::excess`] |
//! | Fig. 3 (`Emulation`) | [`bso_emulation::EmulationProtocol`] / [`bso_emulation::rich::RichEmulation`] |
//! | Fig. 4 (`ComputeHistory`) | [`bso_emulation::tree::HistoryTree::compute_history`] |
//! | Fig. 5 (`CanRebalance`) | `RichEmulation::try_rebalance` |
//! | Fig. 6 (`UpdateC&S`) | `RichEmulation::try_update` over [`bso_emulation::excess`] |
//!
//! ## Lemma 1.1 (the move/jump game)
//!
//! [`bso_combinatorics::game`] with exhaustive strategy search in
//! [`bso_combinatorics::search`]: at most `m^k` moves before the
//! painted edges contain a cycle (for m ≥ 2 — see the module docs for
//! two subtleties the extended abstract glosses over, found *by*
//! implementing it: the jump rule's parenthetical is load-bearing, and
//! m = 1 degenerates to k−1). `examples/game.rs` prints measured
//! maxima against the bound.
//!
//! ## §4 Conclusions
//!
//! * *"adding read/write registers to the compare&swap register
//!   increases its power"* — `examples/election.rs`, the k−1 vs
//!   (k−1)! table.
//! * *"we believe that the results … can be extended to hold for
//!   arbitrary read-modify-write registers of size k"* —
//!   [`bso_objects::ObjectInit::RmwK`] and
//!   [`bso_protocols::RmwOnlyElection`] lay that groundwork
//!   (compare&swap-(k) is verified to be an `rmw-(k)` instance).
//! * The related-work Kleinberg–Mullainathan direction —
//!   [`bso_hierarchy::km::BinaryFromElection`].

// This module intentionally declares nothing.
