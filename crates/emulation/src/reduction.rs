use bso_objects::{Sym, Value};
use bso_sim::scheduler::{BurstSched, RandomSched};
use bso_sim::{CrashPlan, Protocol, RunError, RunResult, Scheduler, Simulation};

use crate::validate::{self, ValidationError, ValidationSummary};
use crate::{Branch, EmulationProtocol, Record};

/// The reduction driver: runs `m` emulators over a compare&swap
/// election `A` and packages the outcome for inspection and
/// validation.
///
/// See the crate docs for what the executed reduction demonstrates.
#[derive(Clone, Debug)]
pub struct Reduction<A: Protocol> {
    proto: EmulationProtocol<A>,
}

impl<A: Protocol> Reduction<A> {
    /// Sets up the reduction of `a` by `m` emulators.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a one-compare&swap-plus-read/write
    /// algorithm or `m` is out of range (see
    /// [`EmulationProtocol::new`]).
    pub fn new(a: A, m: usize) -> Reduction<A> {
        Reduction {
            proto: EmulationProtocol::new(a, m),
        }
    }

    /// The underlying emulation protocol.
    pub fn protocol(&self) -> &EmulationProtocol<A> {
        &self.proto
    }

    /// Runs the emulation under a seeded random schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] (step-limit exhaustion indicates an
    /// emulation livelock — a bug).
    pub fn run_seeded(&self, seed: u64) -> Result<ReductionReport, RunError> {
        self.run_with(&mut RandomSched::new(seed), 5_000_000)
    }

    /// Runs the emulation under a seeded bursty schedule (more
    /// adversarial: long solo periods).
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn run_bursty(&self, seed: u64, max_burst: usize) -> Result<ReductionReport, RunError> {
        self.run_with(&mut BurstSched::new(seed, max_burst), 5_000_000)
    }

    /// Runs the emulation under an arbitrary scheduler.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn run_with(
        &self,
        sched: &mut dyn Scheduler,
        max_steps: usize,
    ) -> Result<ReductionReport, RunError> {
        self.run_with_plan(sched, max_steps, CrashPlan::none())
    }

    /// Runs the emulation under an arbitrary scheduler with a
    /// fail-stop adversary: emulators named in `plan` crash after
    /// their planned number of steps and publish nothing further.
    ///
    /// Crashing an emulator kills *all* the v-processes it drives —
    /// the paper's reduction tolerates this because every branch a
    /// crashed emulator published before dying remains in its slot,
    /// readable by the survivors; validation treats those branches
    /// like any others.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn run_with_plan(
        &self,
        sched: &mut dyn Scheduler,
        max_steps: usize,
        plan: CrashPlan,
    ) -> Result<ReductionReport, RunError> {
        let inputs: Vec<Value> = (0..self.proto.processes()).map(Value::Pid).collect();
        let mut sim = Simulation::new(&self.proto, &inputs).with_crash_plan(plan);
        // The whole point: the emulators run on read/write memory only.
        assert!(
            sim.memory().is_read_write_only(),
            "emulators must use read/write objects exclusively"
        );
        let result = sim.run(sched, max_steps)?;
        Ok(ReductionReport::from_run(&self.proto, result))
    }
}

/// The outcome of one emulation run.
#[derive(Clone, Debug)]
pub struct ReductionReport {
    /// The raw simulation result (trace included).
    pub result: RunResult,
    /// Final published records per emulator.
    pub slots: Vec<Vec<Record>>,
    /// Each emulator's final branch (the run it constructed), taken
    /// from its decision record.
    pub final_branches: Vec<Branch>,
    /// The compare&swap domain size of the emulated algorithm.
    pub k: usize,
    meta: ValidateInputs,
}

#[derive(Clone, Debug)]
struct ValidateInputs {
    layout: bso_objects::Layout,
    phi: usize,
}

impl ReductionReport {
    fn from_run<A: Protocol>(proto: &EmulationProtocol<A>, result: RunResult) -> ReductionReport {
        let slots = validate::final_slots(proto.processes(), &result);
        let final_branches = result
            .decisions
            .iter()
            .enumerate()
            .map(|(j, _)| {
                slots[j]
                    .iter()
                    .rev()
                    .find_map(|r| match r {
                        Record::Decision { branch, .. } => Some(branch.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| {
                        // Crashed emulators may not have decided; their
                        // branch is that of their last record.
                        slots[j]
                            .last()
                            .map(|r| r.branch().clone())
                            .unwrap_or_default()
                    })
            })
            .collect();
        ReductionReport {
            slots,
            final_branches,
            k: proto.k(),
            meta: ValidateInputs {
                layout: proto.algorithm().layout(),
                phi: proto.algorithm().processes(),
            },
            result,
        }
    }

    /// The distinct decision values among the emulators.
    pub fn decision_set(&self) -> Vec<Value> {
        self.result.decision_set()
    }

    /// The number of distinct decisions — the set-consensus quantity
    /// Claim 1 bounds by `(k−1)!`.
    pub fn distinct_decisions(&self) -> usize {
        self.decision_set().len()
    }

    /// The distinct labels (first-value sequences) of the emulators'
    /// final branches. Claim 1's counting: at most `(k−1)!` of these
    /// exist, and decisions are a function of the label's run.
    pub fn distinct_labels(&self) -> Vec<Vec<Sym>> {
        let mut labels: Vec<Vec<Sym>> = self.final_branches.iter().map(Branch::label).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Validates the run (the executable Lemma 1.2): every maximal
    /// constructed branch must be a linearizable — hence legal — run
    /// of `A`, with agreeing, valid decisions.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] describing the first illegal branch.
    pub fn validate(&self) -> Result<ValidationSummary, ValidationError> {
        validate::validate_report(&self.meta.layout, self.meta.phi, &self.result, &self.slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_combinatorics::perm::factorial;
    use bso_protocols::{CasOnlyElection, LabelElection};

    #[test]
    fn cas_only_election_emulates_and_validates() {
        // A = Burns-style election: 3 processes, one compare&swap-(4).
        for seed in 0..25 {
            let a = CasOnlyElection::new(3, 4).unwrap();
            let report = Reduction::new(a, 3).run_seeded(seed).unwrap();
            // Every emulator decides.
            assert!(report.result.decisions.iter().all(Option::is_some));
            let summary = report.validate().unwrap();
            assert!(summary.branches >= 1);
            // Labels are sequences of first values: bounded by (k−1)!.
            assert!(report.distinct_labels().len() as u128 <= factorial(3));
        }
    }

    #[test]
    fn label_election_emulates_and_validates_k3() {
        // A = LabelElection with k = 3, Φ = 2, m = 2 emulators.
        for seed in 0..25 {
            let a = LabelElection::new(2, 3).unwrap();
            let report = Reduction::new(a, 2).run_seeded(seed).unwrap();
            assert!(report.result.decisions.iter().all(Option::is_some));
            report.validate().unwrap();
            assert!(report.distinct_decisions() <= 2); // (3−1)! labels
        }
    }

    #[test]
    fn label_election_emulates_and_validates_k4() {
        // A = LabelElection with k = 4, Φ = 6, m = 3 emulators: each
        // emulator drives two v-processes.
        for seed in 0..15 {
            let a = LabelElection::new(6, 4).unwrap();
            let report = Reduction::new(a, 3).run_seeded(seed).unwrap();
            assert!(report.result.decisions.iter().all(Option::is_some));
            let summary = report.validate().unwrap();
            assert!(report.distinct_decisions() <= 6); // (4−1)! labels
            assert!(summary.ops_checked > 0);
        }
    }

    #[test]
    fn bursty_schedules_respect_label_bound() {
        for seed in 0..40 {
            let a = LabelElection::new(6, 4).unwrap();
            let report = Reduction::new(a, 3).run_bursty(seed, 4).unwrap();
            report.validate().unwrap();
            assert!(report.distinct_labels().len() as u128 <= factorial(3));
        }
    }

    #[test]
    fn scripted_schedule_forces_a_split() {
        // A = LabelElection(2, 3): vp0's permutation is [0,1], vp1's is
        // [1,0]. Drive emulator 1 through register/read/scan while
        // emulator 0 is silent, so vp1 sees only itself registered and
        // targets value 1; then let emulator 0 catch up (vp0 targets
        // value 0); finally interleave the two success steps scan-scan-
        // publish-publish so neither sees the other's step: the
        // emulators must split into two branches with different labels
        // and elect *different* leaders — the paper's group splitting,
        // made deterministic.
        let a = LabelElection::new(2, 3).unwrap();
        let red = Reduction::new(a, 2);
        let mut script: Vec<usize> = Vec::new();
        script.extend([1; 6]); // e1: reg, readcas, A-scan (3 × scan+publish)
        script.extend([0; 6]); // e0: reg, readcas, A-scan
        script.extend([0, 1, 0, 1]); // S0(succeed ⊥→0) S1(succeed ⊥→1) P0 P1
        let mut sched = bso_sim::scheduler::Scripted::new(script);
        let report = red.run_with(&mut sched, 1_000_000).unwrap();
        report.validate().unwrap();
        let labels = report.distinct_labels();
        assert_eq!(labels.len(), 2, "expected a split, got {labels:?}");
        // Each branch elects its own driver: two distinct decisions —
        // exactly (k−1)! = 2, the set-consensus quantity of Claim 1.
        assert_eq!(report.distinct_decisions(), 2);
        assert_eq!(report.decision_set(), vec![Value::Pid(0), Value::Pid(1)]);
    }

    #[test]
    fn claim_1_configuration_m_exceeds_labels() {
        // The paper's exact shape: m = (k−1)!+1 emulators, at most
        // (k−1)! labels — so at most (k−1)! distinct decisions among
        // (k−1)!+1 read/write processes: a (k−1)!-set consensus, which
        // is the contradiction engine of Claim 1. Here k = 3:
        // 3 emulators, at most 2 distinct decisions, ever.
        for seed in 0..40 {
            let a = LabelElection::new(3, 4).unwrap(); // 3 vps ≥ m
            let report = Reduction::new(a, 3).run_bursty(seed, 3).unwrap();
            report.validate().unwrap();
            assert!(
                report.distinct_decisions() <= factorial(3) as usize,
                "seed {seed}: {:?}",
                report.decision_set()
            );
        }
        // And with k = 3 (2 labels), 3 emulators:
        for seed in 0..40 {
            let a = LabelElection::new(3, 3);
            // (3−1)! = 2 < 3 processes — LabelElection cannot host 3
            // vps at k = 3, which is itself the point; use k = 4 with
            // m = 7 > 6 = (4−1)! instead, one vp per emulator
            // requires Φ ≥ m: Φ = 7 exceeds the label count too.
            assert!(a.is_err());
            let a = LabelElection::new(6, 4).unwrap();
            let report = Reduction::new(a, 6).run_seeded(seed).unwrap();
            report.validate().unwrap();
            assert!(report.distinct_decisions() <= 6);
        }
    }

    #[test]
    fn crashed_emulators_leave_a_validatable_run() {
        // Kill one of the 3 emulators partway through: everything it
        // published before dying stays readable, the survivors still
        // decide, and every constructed branch still validates.
        for seed in 0..25 {
            for victim in 0..3 {
                let a = LabelElection::new(6, 4).unwrap();
                let red = Reduction::new(a, 3);
                let mut sched = RandomSched::new(seed);
                let report = red
                    .run_with_plan(&mut sched, 5_000_000, CrashPlan::none().crash(victim, 7))
                    .unwrap();
                report.validate().unwrap();
                // Exactly the victim fails to decide.
                for (j, d) in report.result.decisions.iter().enumerate() {
                    assert_eq!(
                        d.is_none(),
                        j == victim,
                        "seed {seed}, victim {victim}: decisions {:?}",
                        report.result.decisions
                    );
                }
                // Claim 1's bound is indifferent to crashes.
                assert!(report.distinct_labels().len() as u128 <= factorial(3));
            }
        }
    }

    #[test]
    fn split_survives_crashing_a_group_driver() {
        // Replay the deterministic two-branch split, then crash
        // emulator 0 right after its branch is fully published (12
        // steps in the script reach both publishes): the split — two
        // labels, two decisions — must still be visible in the slots,
        // even though one driver never decides.
        let a = LabelElection::new(2, 3).unwrap();
        let red = Reduction::new(a, 2);
        let mut script: Vec<usize> = Vec::new();
        script.extend([1; 6]);
        script.extend([0; 6]);
        script.extend([0, 1, 0, 1]); // S0 S1 P0 P1: the split completes
        let mut sched = bso_sim::scheduler::Scripted::new(script);
        let report = red
            .run_with_plan(&mut sched, 1_000_000, CrashPlan::none().crash(0, 8))
            .unwrap();
        report.validate().unwrap();
        let labels = report.distinct_labels();
        assert_eq!(labels.len(), 2, "split must survive the crash: {labels:?}");
        assert!(report.result.decisions[0].is_none(), "the victim is dead");
        assert_eq!(report.result.decisions[1], Some(Value::Pid(1)));
    }

    #[test]
    fn emulator_memory_is_read_write_only() {
        let a = LabelElection::new(2, 3).unwrap();
        let red = Reduction::new(a, 2);
        let layout = red.protocol().layout();
        let mem = bso_sim::SharedMemory::new(&layout);
        assert!(mem.is_read_write_only());
    }

    #[test]
    #[should_panic(expected = "exactly one compare&swap")]
    fn rejects_algorithms_with_two_cas_objects() {
        use bso_objects::{Layout, ObjectId, ObjectInit, Op};
        use bso_sim::{Action, Pid};
        #[derive(Clone, Debug)]
        struct TwoCas;
        impl Protocol for TwoCas {
            type State = ();
            fn processes(&self) -> usize {
                2
            }
            fn layout(&self) -> Layout {
                let mut l = Layout::new();
                l.push(ObjectInit::CasK { k: 3 });
                l.push(ObjectInit::CasK { k: 3 });
                l
            }
            fn init(&self, _pid: Pid, _input: &Value) {}
            fn next_action(&self, _st: &()) -> Action {
                Action::Invoke(Op::read(ObjectId(0)))
            }
            fn on_response(&self, _st: &mut (), _resp: Value) {}
        }
        let _ = Reduction::new(TwoCas, 2);
    }
}
