//! A value-reusing compare&swap workload for the rich emulation.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, Sym, Value};
use bso_sim::{Action, Pid, Protocol};

/// A synthetic compare&swap workload whose processes **reuse register
/// values** — the regime the paper's full emulation machinery
/// (suspension, rebalancing, tree cycles) exists for.
///
/// The election algorithms in this workspace drive the register
/// through each value at most once, so emulating them never needs to
/// route the history through excess-graph cycles. `PingPong` is the
/// stress complement: each virtual process performs `rounds`
/// compare&swap attempts, always trying to advance the register to the
/// cyclic successor of the value it last read (`⊥ → 0 → 1 → … → 0`),
/// and decides its success count. Transitions like `0 → 1` and
/// `1 → 0` recur many times — exactly the "`…abac`" histories of
/// Section 3.1.1.
///
/// It is wait-free by construction (a fixed attempt budget), and every
/// run is trivially legal for the *simulator*; its role here is as an
/// emulation target `A` whose constructed runs exercise value reuse.
#[derive(Clone, Debug)]
pub struct PingPong {
    n: usize,
    k: usize,
    rounds: usize,
}

impl PingPong {
    const CAS: ObjectId = ObjectId(0);

    /// `n` processes, `rounds` compare&swap attempts each, over a
    /// `compare&swap-(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k < 3` (cycling needs two non-⊥ values).
    pub fn new(n: usize, k: usize, rounds: usize) -> PingPong {
        assert!(n > 0, "need at least one process");
        assert!(k >= 3, "cycling needs k >= 3");
        PingPong { n, k, rounds }
    }

    /// The cyclic successor: `⊥ → 0`, `i → (i+1) mod (k−1)`.
    pub fn successor(&self, s: Sym) -> Sym {
        match s.value() {
            None => Sym::new(0),
            Some(v) => Sym::new((v + 1) % (self.k as u8 - 1)),
        }
    }
}

/// Local state of one [`PingPong`] process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PingPongState {
    /// About to read the register.
    Read {
        /// Remaining attempts.
        left: usize,
        /// Successes so far.
        wins: i64,
    },
    /// About to attempt `c&s(cur → successor(cur))`.
    Attempt {
        /// Remaining attempts.
        left: usize,
        /// Successes so far.
        wins: i64,
        /// The value read.
        cur: Sym,
    },
    /// Out of attempts.
    Done {
        /// Final success count.
        wins: i64,
    },
}

impl Protocol for PingPong {
    type State = PingPongState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k });
        l
    }

    fn init(&self, _pid: Pid, _input: &Value) -> PingPongState {
        if self.rounds == 0 {
            PingPongState::Done { wins: 0 }
        } else {
            PingPongState::Read {
                left: self.rounds,
                wins: 0,
            }
        }
    }

    fn next_action(&self, st: &PingPongState) -> Action {
        match st {
            PingPongState::Read { .. } => Action::Invoke(Op::read(Self::CAS)),
            PingPongState::Attempt { cur, .. } => Action::Invoke(Op::cas(
                Self::CAS,
                Value::Sym(*cur),
                Value::Sym(self.successor(*cur)),
            )),
            PingPongState::Done { wins } => Action::Decide(Value::Int(*wins)),
        }
    }

    fn on_response(&self, st: &mut PingPongState, resp: Value) {
        *st = match st.clone() {
            PingPongState::Read { left, wins } => PingPongState::Attempt {
                left,
                wins,
                cur: resp.as_sym().expect("register holds symbols"),
            },
            PingPongState::Attempt { left, wins, cur } => {
                let won = resp == Value::Sym(cur);
                let wins = wins + i64::from(won);
                if left <= 1 {
                    PingPongState::Done { wins }
                } else {
                    PingPongState::Read {
                        left: left - 1,
                        wins,
                    }
                }
            }
            done => done,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{scheduler, Explorer, Simulation, TaskSpec};

    #[test]
    fn successor_cycles_without_bottom() {
        let p = PingPong::new(2, 4, 1);
        assert_eq!(p.successor(Sym::BOTTOM), Sym::new(0));
        assert_eq!(p.successor(Sym::new(0)), Sym::new(1));
        assert_eq!(p.successor(Sym::new(1)), Sym::new(2));
        assert_eq!(p.successor(Sym::new(2)), Sym::new(0));
    }

    #[test]
    fn wait_free_by_budget_exhaustive() {
        let p = PingPong::new(2, 3, 2);
        let report = Explorer::new(&p)
            .inputs(&[Value::Nil, Value::Nil])
            .spec(TaskSpec::None)
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        // 2 ops per attempt + decide.
        assert!(report.max_steps_per_proc.iter().all(|&s| s <= 5));
    }

    #[test]
    fn histories_reuse_values() {
        // Run long enough and the register value recurs — the property
        // that makes PingPong the rich emulation's stress target.
        let p = PingPong::new(3, 3, 4);
        let mut sim = Simulation::new(&p, &vec![Value::Nil; 3]);
        let res = sim.run(&mut scheduler::RoundRobin::new(), 10_000).unwrap();
        let mut history = vec![Sym::BOTTOM];
        for e in res.trace.events() {
            if let bso_sim::EventKind::Applied { op, resp } = &e.kind {
                if let bso_objects::OpKind::Cas { expect, new } = &op.kind {
                    if resp == expect {
                        history.push(new.as_sym().unwrap());
                    }
                }
            }
        }
        let mut sorted = history.clone();
        sorted.sort();
        sorted.dedup();
        assert!(
            sorted.len() < history.len(),
            "no value reuse in {history:?}"
        );
    }
}
