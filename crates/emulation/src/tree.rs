//! The history tree `T` of small trees `t` (the paper's Figure 1) and
//! the `ComputeHistory` traversal (Figure 4).
//!
//! The emulation's constructed compare&swap history is not stored as a
//! flat sequence — emulators in the same group must be able to update
//! it *concurrently* and still derive one common history. The paper's
//! device:
//!
//! * `T` is a tree of **labels**: the root is the label `⊥`; a node at
//!   depth `i` has `k − i` children, one per unused symbol, so each
//!   leaf is one of the `(k−1)!` permutations of Σ∖{⊥}. Emulator
//!   groups split by moving to different children when they install
//!   *different first-occurrence values*.
//! * Each label node holds a **small tree** `t`, whose vertices each
//!   carry one symbol plus two connecting paths, `FromParent` and
//!   `ToParent` — the sequences of values the register passes through
//!   when moving from the parent's symbol to this node's and back.
//!   Because up to `m` emulators may attach children to the same
//!   vertex concurrently, each attachment is a separately-owned record
//!   (the paper's *m-tuple record*); all non-empty parts are siblings,
//!   ordered deterministically.
//! * The **history** of a label λ is the concatenation of the
//!   depth-first traversals of all small trees on the path from `t_⊥`
//!   to `t_λ`, the last one truncated at its rightmost leaf
//!   (Figure 4): entering a vertex `w` from its parent emits
//!   `w.FromParent ‖ w.c`; returning to `w` from a child emits `w.c`;
//!   leaving `w` to its parent emits `w.ToParent`.
//!
//! The decisive property (exercised in the tests): **already-derived
//! histories are stable** — attaching new vertices only *appends* to
//! the history derived for the rightmost path, it never rewrites the
//! prefix other emulators have already acted on, provided attachments
//! go to the rightmost spine (which is what `UpdateC&S` does: it
//! attaches under the current value's vertex or its ancestors).

use std::collections::BTreeMap;

use bso_objects::Sym;

/// A label: the sequence of first-occurrence values (⊥ implicit).
pub type Label = Vec<Sym>;

/// Identifier of a vertex within one small tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// One vertex of a small tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreeNode {
    /// The symbol this vertex contributes to the history.
    pub sym: Sym,
    /// The register's value sequence from the parent's symbol to
    /// `sym` (exclusive on both ends).
    pub from_parent: Vec<Sym>,
    /// The value sequence from `sym` back to the parent's symbol
    /// (exclusive on both ends).
    pub to_parent: Vec<Sym>,
    /// The emulator that attached this vertex (the m-tuple record
    /// slot).
    pub owner: usize,
    /// The owner's attachment counter; `(owner, seq)` orders sibling
    /// records deterministically.
    pub seq: u64,
    parent: Option<NodeId>,
}

/// One small tree `t`: the history fragment of a label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SmallTree {
    nodes: Vec<TreeNode>,
}

impl SmallTree {
    /// A small tree whose root carries `root_sym` (⊥ for `t_⊥`, the
    /// new first value for a deeper label).
    pub fn new(root_sym: Sym) -> SmallTree {
        SmallTree {
            nodes: vec![TreeNode {
                sym: root_sym,
                from_parent: Vec::new(),
                to_parent: Vec::new(),
                owner: usize::MAX,
                seq: 0,
                parent: None,
            }],
        }
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The vertex data.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.0]
    }

    /// The number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The parent of a vertex (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The depth of a vertex (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// The ancestors of a vertex, starting with the vertex itself and
    /// ending at the root — the chain `UpdateC&S` walks (Figure 6,
    /// lines 5–14).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Attaches a new vertex under `parent`. `(owner, seq)` must be
    /// unique per owner; siblings are ordered by `(owner, seq)`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn attach(
        &mut self,
        parent: NodeId,
        sym: Sym,
        from_parent: Vec<Sym>,
        to_parent: Vec<Sym>,
        owner: usize,
        seq: u64,
    ) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "no such parent vertex");
        let id = NodeId(self.nodes.len());
        self.nodes.push(TreeNode {
            sym,
            from_parent,
            to_parent,
            owner,
            seq,
            parent: Some(parent),
        });
        id
    }

    /// The children of `id`, in deterministic sibling order
    /// `(owner, seq)` — the merged m-tuple record.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        let mut kids: Vec<NodeId> = (0..self.nodes.len())
            .map(NodeId)
            .filter(|c| self.nodes[c.0].parent == Some(id))
            .collect();
        kids.sort_by_key(|c| (self.nodes[c.0].owner, self.nodes[c.0].seq));
        kids
    }

    /// The rightmost leaf — the end of the derived history (Figure 4,
    /// line 9).
    pub fn rightmost_leaf(&self) -> NodeId {
        let mut cur = self.root();
        loop {
            match self.children(cur).last() {
                Some(&c) => cur = c,
                None => return cur,
            }
        }
    }

    /// The vertex holding symbol `s` on the rightmost spine (where
    /// `UpdateC&S` starts its ancestor walk), if present.
    pub fn rightmost_vertex_of(&self, s: Sym) -> Option<NodeId> {
        let mut cur = self.rightmost_leaf();
        loop {
            if self.nodes[cur.0].sym == s {
                return Some(cur);
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return None,
            }
        }
    }

    /// The Figure 4 depth-first history of this tree: the full
    /// traversal, or — with `truncate_at_rightmost` — only up to and
    /// including the *entry* of the rightmost leaf.
    pub fn history(&self, truncate_at_rightmost: bool) -> Vec<Sym> {
        let mut h = Vec::new();
        let stop = if truncate_at_rightmost {
            Some(self.rightmost_leaf())
        } else {
            None
        };
        self.dfs(self.root(), &mut h, stop);
        h
    }

    /// Emits the DFS of the subtree at `id`; returns `true` when the
    /// stop vertex was reached (emission must cease).
    fn dfs(&self, id: NodeId, h: &mut Vec<Sym>, stop: Option<NodeId>) -> bool {
        // Entering `id` from its parent.
        h.extend(self.nodes[id.0].from_parent.iter().copied());
        h.push(self.nodes[id.0].sym);
        if stop == Some(id) {
            return true;
        }
        for c in self.children(id) {
            if self.dfs(c, h, stop) {
                return true;
            }
            // Returning to `id` from the child `c`: the child's
            // ToParent plays first (the register travels back), then
            // `id`'s symbol is current again.
            h.extend(self.nodes[c.0].to_parent.iter().copied());
            h.push(self.nodes[id.0].sym);
        }
        false
    }
}

/// The tree of trees `T`: one [`SmallTree`] per *activated* label.
#[derive(Clone, Debug, Default)]
pub struct HistoryTree {
    trees: BTreeMap<Label, SmallTree>,
}

impl HistoryTree {
    /// A history tree with only `t_⊥` activated.
    pub fn new() -> HistoryTree {
        let mut trees = BTreeMap::new();
        trees.insert(Vec::new(), SmallTree::new(Sym::BOTTOM));
        HistoryTree { trees }
    }

    /// The small tree of `label`, if activated.
    pub fn tree(&self, label: &Label) -> Option<&SmallTree> {
        self.trees.get(label)
    }

    /// Mutable access to the small tree of `label`.
    pub fn tree_mut(&mut self, label: &Label) -> Option<&mut SmallTree> {
        self.trees.get_mut(label)
    }

    /// Activates the label `parent ‖ sym` (Figure 6, line 12): a group
    /// split on the new first value `sym`. Idempotent, as in the paper
    /// ("if, between the read and the update, another emulator marked
    /// the new node as active then no mapping is needed").
    ///
    /// # Panics
    ///
    /// Panics if the parent label is not activated, or `sym` already
    /// occurs in the label (labels are permutation prefixes).
    pub fn activate(&mut self, parent: &Label, sym: Sym) -> Label {
        assert!(self.trees.contains_key(parent), "parent label not active");
        assert!(
            !sym.is_bottom() && !parent.contains(&sym),
            "label symbols must be fresh non-⊥ values"
        );
        let mut label = parent.clone();
        label.push(sym);
        self.trees
            .entry(label.clone())
            .or_insert_with(|| SmallTree::new(sym));
        label
    }

    /// The activated labels, in order.
    pub fn labels(&self) -> Vec<Label> {
        self.trees.keys().cloned().collect()
    }

    /// The deepest activated label extending `label` (following the
    /// lexicographically smallest child chain — the emulator's label
    /// extension rule in `ComputeHistory`, Figure 4 line 1, made
    /// deterministic).
    pub fn extend_to_leaf(&self, label: &Label) -> Label {
        let mut cur = label.clone();
        'outer: loop {
            for (cand, _) in self.trees.range(cur.clone()..) {
                if cand.len() == cur.len() + 1 && cand.starts_with(&cur) {
                    cur = cand.clone();
                    continue 'outer;
                }
                if !cand.starts_with(&cur) {
                    break;
                }
            }
            return cur;
        }
    }

    /// `ComputeHistory` (Figure 4): the history of the run labelled
    /// `label` — the concatenated DFS traversals of all small trees on
    /// the path from the root label to `t_label`, the last truncated
    /// at its rightmost leaf.
    ///
    /// # Panics
    ///
    /// Panics if some prefix of `label` is not activated.
    pub fn compute_history(&self, label: &Label) -> Vec<Sym> {
        let mut h = Vec::new();
        for i in 0..=label.len() {
            let prefix: Label = label[..i].to_vec();
            let t = self
                .trees
                .get(&prefix)
                .unwrap_or_else(|| panic!("label prefix {prefix:?} not active"));
            let last = i == label.len();
            h.extend(t.history(last));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u8) -> Sym {
        Sym::new(i)
    }

    #[test]
    fn single_vertex_history_is_bottom() {
        let t = HistoryTree::new();
        assert_eq!(t.compute_history(&Vec::new()), vec![Sym::BOTTOM]);
    }

    #[test]
    fn attach_and_derive_plain_chain() {
        // ⊥ with child 0, grandchild 1, no connecting paths: history
        // ⊥ 0 1 (truncated at rightmost leaf 1).
        let mut t = HistoryTree::new();
        let root_label = Vec::new();
        let tree = t.tree_mut(&root_label).unwrap();
        let a = tree.attach(tree.root(), s(0), vec![], vec![], 0, 0);
        tree.attach(a, s(1), vec![], vec![], 0, 1);
        assert_eq!(
            t.compute_history(&root_label),
            vec![Sym::BOTTOM, s(0), s(1)]
        );
    }

    #[test]
    fn siblings_merge_in_owner_seq_order_and_revisit_parent() {
        // Two emulators attach children of ⊥ concurrently: the m-tuple
        // record orders them; the DFS revisits ⊥ between them (the
        // register returns to ⊥ via the first child's ToParent path).
        let mut t = HistoryTree::new();
        let root_label = Vec::new();
        let tree = t.tree_mut(&root_label).unwrap();
        let root = tree.root();
        // Emulator 2 attaches symbol 1; emulator 0 attaches symbol 0.
        tree.attach(root, s(1), vec![], vec![s(2)], 2, 0);
        tree.attach(root, s(0), vec![], vec![], 0, 0);
        // Sibling order: (owner 0) then (owner 2). Full history:
        // ⊥ 0 ⊥ 1 — truncated at the rightmost leaf (owner 2's vertex).
        assert_eq!(
            t.compute_history(&root_label),
            vec![Sym::BOTTOM, s(0), Sym::BOTTOM, s(1)]
        );
    }

    #[test]
    fn from_parent_and_to_parent_paths_are_emitted() {
        // The paper's ":::abac" shape: moving from a to c via the
        // suspended-process path through a, and back.
        let mut t = HistoryTree::new();
        let root_label = Vec::new();
        let tree = t.tree_mut(&root_label).unwrap();
        let root = tree.root();
        let a = tree.attach(root, s(0), vec![], vec![], 0, 0);
        // Child of a carrying c=2, reached via the path "1 0" (the
        // register went a→1→0→2), returning via "0".
        let c = tree.attach(a, s(2), vec![s(1), s(0)], vec![s(0)], 1, 0);
        tree.attach(c, s(1), vec![], vec![], 1, 1);
        let full = tree.history(false);
        assert_eq!(
            full,
            vec![
                Sym::BOTTOM,
                s(0),
                s(1),
                s(0),
                s(2),
                s(1),
                s(2),
                s(0),
                s(0),
                Sym::BOTTOM
            ],
        );
        // Truncated at the rightmost leaf (the vertex with symbol 1).
        assert_eq!(
            t.compute_history(&root_label),
            vec![Sym::BOTTOM, s(0), s(1), s(0), s(2), s(1)],
        );
    }

    #[test]
    fn histories_are_stable_under_rightmost_extension() {
        // Attaching to the rightmost spine only appends: the derived
        // history of earlier readers stays a prefix.
        let mut t = HistoryTree::new();
        let root_label = Vec::new();
        let tree = t.tree_mut(&root_label).unwrap();
        let root = tree.root();
        let a = tree.attach(root, s(0), vec![], vec![], 0, 0);
        let h1 = t.compute_history(&root_label);
        let tree = t.tree_mut(&root_label).unwrap();
        tree.attach(a, s(1), vec![], vec![], 1, 0);
        let h2 = t.compute_history(&root_label);
        assert!(h2.starts_with(&h1), "{h1:?} not a prefix of {h2:?}");
        // And once more, attaching to the new rightmost leaf.
        let tree = t.tree_mut(&root_label).unwrap();
        let leaf = tree.rightmost_leaf();
        tree.attach(leaf, s(2), vec![], vec![], 0, 1);
        let h3 = t.compute_history(&root_label);
        assert!(h3.starts_with(&h2));
    }

    #[test]
    fn label_activation_and_multi_tree_history() {
        let mut t = HistoryTree::new();
        let root_label: Label = Vec::new();
        {
            let tree = t.tree_mut(&root_label).unwrap();
            let root = tree.root();
            tree.attach(root, s(0), vec![], vec![], 0, 0);
        }
        // Group splits on first value 0: label [0] activates; its tree
        // grows its own vertices.
        let l0 = t.activate(&root_label, s(0));
        {
            let tree = t.tree_mut(&l0).unwrap();
            let root = tree.root();
            tree.attach(root, s(1), vec![], vec![], 1, 0);
        }
        // History of label [0]: full DFS of t_⊥ (⊥ 0 ⊥), then t_[0]
        // truncated (0 1).
        assert_eq!(
            t.compute_history(&l0),
            vec![Sym::BOTTOM, s(0), Sym::BOTTOM, s(0), s(1)],
        );
        // Activation is idempotent.
        let l0b = t.activate(&root_label, s(0));
        assert_eq!(l0, l0b);
        assert_eq!(t.labels().len(), 2);
    }

    #[test]
    fn extend_to_leaf_follows_smallest_chain() {
        let mut t = HistoryTree::new();
        let root: Label = Vec::new();
        let l1 = t.activate(&root, s(1));
        let l0 = t.activate(&root, s(0));
        let l01 = t.activate(&l0, s(1));
        assert_eq!(t.extend_to_leaf(&root), l01, "smallest chain 0 then 1");
        assert_eq!(t.extend_to_leaf(&l1), l1, "already a leaf");
    }

    #[test]
    fn ancestor_walk_matches_figure_6() {
        let mut tree = SmallTree::new(Sym::BOTTOM);
        let root = tree.root();
        let a = tree.attach(root, s(0), vec![], vec![], 0, 0);
        let b = tree.attach(a, s(1), vec![], vec![], 0, 1);
        assert_eq!(tree.ancestors(b), vec![b, a, root]);
        assert_eq!(tree.depth(b), 2);
        assert_eq!(tree.rightmost_vertex_of(s(0)), Some(a));
        assert_eq!(tree.rightmost_vertex_of(s(7)), None);
    }

    #[test]
    #[should_panic(expected = "fresh non-⊥")]
    fn activation_rejects_repeated_symbols() {
        let mut t = HistoryTree::new();
        let root: Label = Vec::new();
        let l0 = t.activate(&root, s(0));
        let _ = t.activate(&l0, s(0));
    }
}
