//! The excess graph and its stable components (Definitions 1–3) and
//! the `UpdateC&S` thresholds (Figure 6).
//!
//! For every ordered pair of values `(a, b)` the emulation tracks how
//! many *suspended* virtual processes hold a pending `c&s(a → b)`
//! that is not yet demanded by the constructed history. Definition 1:
//!
//! * `p(a→b)` — transitions from `a` to `b` written in the history;
//! * `s(a→b)` — successful `c&s(a → b)` operations already emulated
//!   (suspended processes that were *released* against a transition);
//! * `d(a→b) = p − s` — history transitions not yet matched by a
//!   released process;
//! * `f(a→b)` — suspended, not-yet-released processes on the edge;
//! * `w(a→b) = f − d` — the **excess**: suspended processes still
//!   free to justify *future* transitions.
//!
//! `UpdateC&S` may route the history through a value only along edges
//! with enough excess; the *stable component* conditions (Definitions
//! 2–3) guarantee — via the move/jump game of Lemma 1.1
//! (`bso_combinatorics::game`) — that concurrent updates by up to `m`
//! emulators never overdraw an edge.

use bso_objects::Sym;

/// The excess graph over the size-`k` value domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExcessGraph {
    k: usize,
    /// weight[a_code][b_code] = w(a→b); may be negative transiently
    /// (an overdrawn edge — a bug the emulator asserts against).
    weight: Vec<Vec<i64>>,
}

impl ExcessGraph {
    /// Computes the excess graph per Definition 1.
    ///
    /// * `suspended` — one entry `(a, b)` per currently suspended,
    ///   not-released virtual process with pending `c&s(a → b)`;
    /// * `released` — one entry per released (successfully emulated)
    ///   process;
    /// * `history` — the full value sequence of the constructed run
    ///   (starting with ⊥).
    ///
    /// # Panics
    ///
    /// Panics if any symbol is outside the size-`k` domain.
    pub fn compute(
        k: usize,
        suspended: &[(Sym, Sym)],
        released: &[(Sym, Sym)],
        history: &[Sym],
    ) -> ExcessGraph {
        let mut g = ExcessGraph {
            k,
            weight: vec![vec![0; k]; k],
        };
        let idx = |s: Sym| {
            assert!(s.in_domain(k), "symbol {s} outside domain of size {k}");
            s.code() as usize
        };
        for &(a, b) in suspended {
            g.weight[idx(a)][idx(b)] += 1; // f
        }
        for &(a, b) in released {
            g.weight[idx(a)][idx(b)] += 1; // + s
        }
        for w in history.windows(2) {
            g.weight[idx(w[0])][idx(w[1])] -= 1; // − p
        }
        g
    }

    /// The domain size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The excess on edge `a → b`.
    pub fn excess(&self, a: Sym, b: Sym) -> i64 {
        self.weight[a.code() as usize][b.code() as usize]
    }

    /// Whether any edge is overdrawn (negative excess) — the history
    /// demands more transitions than suspended processes can supply: a
    /// broken emulation.
    pub fn is_overdrawn(&self) -> bool {
        self.weight.iter().flatten().any(|&w| w < 0)
    }

    /// The subgraph `G_x`: only edges with excess ≥ `x` (Definition
    /// 1's `Gˢₓ`), returned as an adjacency matrix.
    pub fn at_least(&self, x: i64) -> Vec<Vec<bool>> {
        self.weight
            .iter()
            .map(|row| row.iter().map(|&w| w >= x).collect())
            .collect()
    }

    /// The strongly connected components of `G_x`, each sorted; the
    /// maximal components `C_x` of Definition 1.
    pub fn components(&self, x: i64) -> Vec<Vec<Sym>> {
        let adj = self.at_least(x);
        components_of(&adj)
            .into_iter()
            .map(|c| c.into_iter().map(|i| Sym::from_code(i as u8)).collect())
            .collect()
    }

    /// The best *cycle width* through both `a` and `x` (Figure 6,
    /// line 6): the largest `w` such that some cycle containing both
    /// has minimum edge excess ≥ `w` — equivalently, the largest `w`
    /// with `a` and `x` in the same strongly connected component of
    /// `G_w`. Returns `None` if no such cycle exists at any positive
    /// width.
    pub fn cycle_width(&self, a: Sym, x: Sym) -> Option<i64> {
        let max_w = *self.weight.iter().flatten().max().unwrap_or(&0);
        let mut best = None;
        for w in 1..=max_w {
            let adj = self.at_least(w);
            if same_component(&adj, a.code() as usize, x.code() as usize) {
                best = Some(w);
            } else {
                break;
            }
        }
        best
    }
}

/// Strongly connected components of an adjacency matrix (simple
/// forward/backward reachability — `k` is tiny).
fn components_of(adj: &[Vec<bool>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut assigned = vec![false; n];
    let mut out = Vec::new();
    for v in 0..n {
        if assigned[v] {
            continue;
        }
        let fwd = reach(adj, v, false);
        let bwd = reach(adj, v, true);
        let comp: Vec<usize> = (0..n)
            .filter(|&u| fwd[u] && bwd[u] && !assigned[u])
            .collect();
        for &u in &comp {
            assigned[u] = true;
        }
        out.push(comp);
    }
    out
}

fn reach(adj: &[Vec<bool>], from: usize, reverse: bool) -> Vec<bool> {
    let n = adj.len();
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for u in 0..n {
            let edge = if reverse { adj[u][v] } else { adj[v][u] };
            if edge && !seen[u] {
                seen[u] = true;
                stack.push(u);
            }
        }
    }
    seen
}

fn same_component(adj: &[Vec<bool>], a: usize, b: usize) -> bool {
    if a == b {
        // A cycle through a single node needs a genuine round trip
        // (there are no self-edges in the value graph).
        return (0..adj.len()).any(|u| u != a && adj[a][u] && reach(adj, u, false)[a]);
    }
    reach(adj, a, false)[b] && reach(adj, b, false)[a]
}

/// `β_x = Σ_{i=2..x} m^i` (with `β_1 = 0`) — the excess levels of
/// Definitions 2–3.
pub fn beta(x: usize, m: usize) -> u128 {
    (2..=x as u32).map(|i| (m as u128).pow(i)).sum()
}

/// The `UpdateC&S` attachment threshold for a vertex at depth `d`:
/// `Σ_{g=1..d} g·m^g` (Figure 6, line 7).
pub fn attach_threshold(d: usize, m: usize) -> u128 {
    (1..=d as u32).map(|g| g as u128 * (m as u128).pow(g)).sum()
}

/// Definition 2 — a **stable component**: a strongly connected
/// component `C` of `G_β₁ = G_0`… of size `j` such that for every
/// `k−j+2 ≤ i ≤ k`, `C` splits into at most `i − (k−j+1)` maximal
/// components at excess level `β_{k−j+i}`. A single vertex is always
/// stable.
pub fn is_stable(g: &ExcessGraph, component: &[Sym], m: usize) -> bool {
    stability(g, component, m, 1)
}

/// Definition 3 — a **super stable component**: the same with indices
/// shifted by one (`k−j+3 < i ≤ k`, at most `i − (k−j+2)` components);
/// a two-vertex component is always super stable.
pub fn is_super_stable(g: &ExcessGraph, component: &[Sym], m: usize) -> bool {
    if component.len() <= 2 {
        return true;
    }
    stability(g, component, m, 2)
}

/// Common core of Definitions 2 and 3: `shift` = 1 for stable, 2 for
/// super stable.
#[allow(clippy::needless_range_loop)] // adjacency-matrix index walk
fn stability(g: &ExcessGraph, component: &[Sym], m: usize, shift: usize) -> bool {
    let j = component.len();
    if j <= shift {
        return true;
    }
    let k = g.k();
    // The induced subgraph on `component` only.
    let in_comp = |s: Sym| component.contains(&s);
    let lo = k - j + shift + 1;
    for i in lo..=k {
        let level = beta(k - j + i, m);
        let limit = i - (k - j + shift);
        // Components of the induced subgraph at excess ≥ level.
        let mut adj = g.at_least(level.min(i64::MAX as u128) as i64);
        for a in 0..k {
            for b in 0..k {
                if !in_comp(Sym::from_code(a as u8)) || !in_comp(Sym::from_code(b as u8)) {
                    adj[a][b] = false;
                }
            }
        }
        let comps = components_of(&adj)
            .into_iter()
            .filter(|c| c.iter().any(|&v| in_comp(Sym::from_code(v as u8))))
            .count();
        if comps > limit {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u8) -> Sym {
        Sym::new(i)
    }

    #[test]
    fn definition_1_accounting() {
        // k = 3: domain {⊥, 0, 1}. Two suspended on ⊥→0, one released
        // on ⊥→0, history ⊥ 0: w(⊥→0) = f − (p − s) = 2 − (1 − 1) = 2.
        let g = ExcessGraph::compute(
            3,
            &[(Sym::BOTTOM, s(0)), (Sym::BOTTOM, s(0))],
            &[(Sym::BOTTOM, s(0))],
            &[Sym::BOTTOM, s(0)],
        );
        assert_eq!(g.excess(Sym::BOTTOM, s(0)), 2);
        assert_eq!(g.excess(s(0), Sym::BOTTOM), 0);
        assert!(!g.is_overdrawn());
    }

    #[test]
    fn overdrawn_edges_are_detected() {
        // History demands a transition nobody is suspended on.
        let g = ExcessGraph::compute(3, &[], &[], &[Sym::BOTTOM, s(1)]);
        assert!(g.is_overdrawn());
        assert_eq!(g.excess(Sym::BOTTOM, s(1)), -1);
    }

    #[test]
    fn components_at_levels() {
        // A 2-cycle ⊥ ⇄ 0 with excess 3 each way; vertex 1 isolated.
        let susp: Vec<(Sym, Sym)> = std::iter::repeat_n((Sym::BOTTOM, s(0)), 3)
            .chain(std::iter::repeat_n((s(0), Sym::BOTTOM), 3))
            .collect();
        let g = ExcessGraph::compute(3, &susp, &[], &[Sym::BOTTOM]);
        let comps3 = g.components(3);
        assert!(comps3.contains(&vec![Sym::BOTTOM, s(0)]));
        assert!(comps3.contains(&vec![s(1)]));
        // At level 4 the cycle dissolves.
        let comps4 = g.components(4);
        assert!(comps4.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn cycle_width_is_the_bottleneck() {
        // ⊥→0 excess 5, 0→⊥ excess 2: the ⊥/0 cycle has width 2.
        let mut susp = vec![(Sym::BOTTOM, s(0)); 5];
        susp.extend(vec![(s(0), Sym::BOTTOM); 2]);
        let g = ExcessGraph::compute(3, &susp, &[], &[Sym::BOTTOM]);
        assert_eq!(g.cycle_width(Sym::BOTTOM, s(0)), Some(2));
        assert_eq!(g.cycle_width(Sym::BOTTOM, s(1)), None);
    }

    #[test]
    fn thresholds_match_figure_6() {
        // Σ_{g=1..d} g·m^g
        assert_eq!(attach_threshold(0, 3), 0);
        assert_eq!(attach_threshold(1, 3), 3);
        assert_eq!(attach_threshold(2, 3), 3 + 2 * 9);
        assert_eq!(attach_threshold(3, 2), 2 + 2 * 4 + 3 * 8);
        // β levels
        assert_eq!(beta(1, 5), 0);
        assert_eq!(beta(2, 5), 25);
        assert_eq!(beta(3, 5), 25 + 125);
    }

    #[test]
    fn singletons_and_pairs_are_stable() {
        let g = ExcessGraph::compute(4, &[], &[], &[Sym::BOTTOM]);
        assert!(is_stable(&g, &[Sym::BOTTOM], 3));
        assert!(is_super_stable(&g, &[Sym::BOTTOM, s(0)], 3));
    }

    #[test]
    fn rich_cycles_form_stable_components() {
        // k = 3, m = 2: a 2-cycle ⊥ ⇄ 0 with excess far above every β
        // level is a stable component of size 2.
        let m = 2;
        // The deepest level Definition 2 consults for j = 2, k = 3 is
        // β_{k−j+k} = β_4.
        let lots = beta(4, m) as usize + 5;
        let mut susp = vec![(Sym::BOTTOM, s(0)); lots];
        susp.extend(vec![(s(0), Sym::BOTTOM); lots]);
        let g = ExcessGraph::compute(3, &susp, &[], &[Sym::BOTTOM]);
        assert!(is_stable(&g, &[Sym::BOTTOM, s(0)], m));
        // A pauper component of size 2 (zero excess) fails Definition
        // 2's level conditions: it splits into 2 > 1 components at the
        // first required level.
        let g0 = ExcessGraph::compute(3, &[], &[], &[Sym::BOTTOM]);
        assert!(!is_stable(&g0, &[Sym::BOTTOM, s(0)], m));
        // ... but is vacuously super stable (|C| = 2).
        assert!(is_super_stable(&g0, &[Sym::BOTTOM, s(0)], m));
    }
}
