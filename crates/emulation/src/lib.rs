//! The Afek–Stupp reduction: emulating a bounded-compare&swap leader
//! election on read/write memory (Theorem 1, PODC 1994).
//!
//! The paper's impossibility proof is a *reduction by emulation*: if a
//! wait-free leader election `A` for Φ processes existed using one
//! `compare&swap-(k)` plus read/write registers, then `m = (k−1)!+1`
//! **emulators** — communicating through read/write memory only —
//! could cooperatively construct legal runs of `A`, splitting into at
//! most `(k−1)!` groups (one per *label*, the order of first values in
//! the compare&swap history), and adopt the decisions of their
//! constructed runs: a `(k−1)!`-set consensus among `(k−1)!+1`
//! processes out of read/write registers, which is impossible
//! (Borowsky–Gafni, Herlihy–Shavit, Saks–Zaharoglou).
//!
//! An impossibility cannot be "run", but the reduction is an
//! *algorithm*, and this crate executes it:
//!
//! * [`Reduction`] — `m` emulators, implemented as an ordinary
//!   [`bso_sim::Protocol`] over **read/write objects only** (one
//!   atomic-snapshot object of single-writer slots; the driver asserts
//!   `is_read_write_only`), jointly construct runs of a real election
//!   algorithm `A` (`LabelElection`, `CasOnlyElection`, …). Emulators
//!   split into *branches* when they concurrently extend the emulated
//!   compare&swap history differently — the executable counterpart of
//!   the paper's group splitting. Each emulator leaves with the
//!   decision of its constructed run.
//! * [`validate`] — the executable content of the paper's Lemma 1.2:
//!   every per-branch constructed run is replayed through the
//!   linearizability checker against `A`'s own object specifications;
//!   a non-legal run is a bug, not a proof.
//! * [`tree`], [`excess`] — the PODC '94-specific data structures in
//!   their own right: the history tree `T` of small trees `t` with
//!   `FromParent`/`ToParent` paths and m-tuple sibling records
//!   (Figures 1, 4), and the excess graph with its stable components
//!   (Definitions 1–3) whose key invariant rests on the move/jump game
//!   of Lemma 1.1 (`bso_combinatorics::game`).
//!
//! What the executed reduction *shows*: with `A = LabelElection`, the
//! compare&swap history of every constructed run is a permutation
//! prefix, so the emulators' decisions take at most `(k−1)!` distinct
//! values no matter how many emulators run or how adversarially they
//! are scheduled — the quantitative heart of Claim 1. The final
//! impossibility step (no read/write `(k−1)!`-set consensus among
//! `(k−1)!+1` processes) is cited, not executed; it is exactly the
//! part of the proof that no program can exhibit.
//!
//! # Example
//!
//! ```
//! use bso_emulation::Reduction;
//! use bso_protocols::LabelElection;
//!
//! // Emulate a 6-process election (k = 4) by 3 emulators, 2 virtual
//! // processes each, under a seeded random schedule.
//! let a = LabelElection::new(6, 4).unwrap();
//! let report = Reduction::new(a, 3).run_seeded(7).unwrap();
//! assert!(report.distinct_decisions() <= 6); // ≤ (k−1)! labels
//! report.validate().unwrap(); // every constructed run is legal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulator error paths are cold; boxing RunError would only obscure them.
#![allow(clippy::result_large_err)]

mod branch;
mod emulator;
pub mod pingpong;
pub mod rich;

pub mod excess;
mod reduction;
pub mod tree;
pub mod validate;

pub use branch::{Branch, Step};
pub use emulator::{EmulationProtocol, EmulatorState, Record};
pub use reduction::{Reduction, ReductionReport};
