//! Value encoding of [`RichRecord`]s for publication in the shared
//! snapshot slots.

use bso_objects::{ObjectId, Op, OpKind, Sym, Value};

use super::RichRecord;
use crate::tree::Label;

fn enc_label(l: &Label) -> Value {
    Value::Seq(l.iter().map(|&s| Value::Sym(s)).collect())
}

fn dec_label(v: &Value) -> Label {
    v.as_seq()
        .expect("label encoding")
        .iter()
        .map(|x| x.as_sym().expect("label symbol"))
        .collect()
}

fn enc_syms(p: &[Sym]) -> Value {
    Value::Seq(p.iter().map(|&s| Value::Sym(s)).collect())
}

fn dec_syms(v: &Value) -> Vec<Sym> {
    v.as_seq()
        .expect("path encoding")
        .iter()
        .map(|x| x.as_sym().expect("path symbol"))
        .collect()
}

fn enc_op(op: &Op) -> Value {
    let obj = Value::Int(op.obj.0 as i64);
    match &op.kind {
        OpKind::Read => Value::Seq(vec![obj, Value::Int(0)]),
        OpKind::Write(v) => Value::Seq(vec![obj, Value::Int(1), v.clone()]),
        OpKind::Cas { expect, new } => {
            Value::Seq(vec![obj, Value::Int(2), expect.clone(), new.clone()])
        }
        OpKind::SnapshotScan => Value::Seq(vec![obj, Value::Int(3)]),
        OpKind::SnapshotUpdate(v) => Value::Seq(vec![obj, Value::Int(4), v.clone()]),
        other => panic!("operation {other} is not emulatable"),
    }
}

fn dec_op(v: &Value) -> Op {
    let parts = v.as_seq().expect("op encoding");
    let obj = ObjectId(parts[0].as_int().expect("obj") as usize);
    let kind = match parts[1].as_int().expect("tag") {
        0 => OpKind::Read,
        1 => OpKind::Write(parts[2].clone()),
        2 => OpKind::Cas {
            expect: parts[2].clone(),
            new: parts[3].clone(),
        },
        3 => OpKind::SnapshotScan,
        4 => OpKind::SnapshotUpdate(parts[2].clone()),
        t => panic!("unknown op tag {t}"),
    };
    Op::new(obj, kind)
}

/// Encodes a record list as one slot value.
pub fn encode_slot(records: &[RichRecord]) -> Value {
    Value::Seq(records.iter().map(encode_record).collect())
}

fn encode_record(r: &RichRecord) -> Value {
    match r {
        RichRecord::TreeNode {
            label,
            parent,
            sym,
            from_parent,
            to_parent,
            seq,
        } => {
            let parent = match parent {
                None => Value::Nil,
                Some((o, s)) => Value::pair(Value::Pid(*o), Value::Int(*s as i64)),
            };
            Value::Seq(vec![
                Value::Int(0),
                enc_label(label),
                parent,
                Value::Sym(*sym),
                enc_syms(from_parent),
                enc_syms(to_parent),
                Value::Int(*seq as i64),
            ])
        }
        RichRecord::Activate { label } => Value::Seq(vec![Value::Int(1), enc_label(label)]),
        RichRecord::Suspend {
            vp,
            a,
            b,
            label,
            hist_pos,
            seq,
        } => Value::Seq(vec![
            Value::Int(2),
            Value::Pid(*vp),
            Value::Sym(*a),
            Value::Sym(*b),
            enc_label(label),
            Value::Int(*hist_pos as i64),
            Value::Int(*seq as i64),
        ]),
        RichRecord::Release { seq } => Value::Seq(vec![Value::Int(3), Value::Int(*seq as i64)]),
        RichRecord::VOp {
            vp,
            op,
            resp,
            label,
        } => Value::Seq(vec![
            Value::Int(4),
            Value::Pid(*vp),
            enc_op(op),
            resp.clone(),
            enc_label(label),
        ]),
        RichRecord::Decide { vp, value, label } => Value::Seq(vec![
            Value::Int(5),
            Value::Pid(*vp),
            value.clone(),
            enc_label(label),
        ]),
    }
}

/// Decodes one published slot.
///
/// # Panics
///
/// Panics on malformed encodings (emulator corruption).
pub fn decode_slot(v: &Value) -> Vec<RichRecord> {
    match v.as_seq() {
        None => Vec::new(),
        Some(items) => items.iter().map(decode_record).collect(),
    }
}

fn decode_record(v: &Value) -> RichRecord {
    let parts = v.as_seq().expect("record encoding");
    match parts[0].as_int().expect("record tag") {
        0 => RichRecord::TreeNode {
            label: dec_label(&parts[1]),
            parent: match &parts[2] {
                Value::Nil => None,
                p => {
                    let (o, s) = p.as_pair().expect("parent ref");
                    Some((o.as_pid().expect("owner"), s.as_int().expect("seq") as u64))
                }
            },
            sym: parts[3].as_sym().expect("sym"),
            from_parent: dec_syms(&parts[4]),
            to_parent: dec_syms(&parts[5]),
            seq: parts[6].as_int().expect("seq") as u64,
        },
        1 => RichRecord::Activate {
            label: dec_label(&parts[1]),
        },
        2 => RichRecord::Suspend {
            vp: parts[1].as_pid().expect("vp"),
            a: parts[2].as_sym().expect("a"),
            b: parts[3].as_sym().expect("b"),
            label: dec_label(&parts[4]),
            hist_pos: parts[5].as_int().expect("hist_pos") as usize,
            seq: parts[6].as_int().expect("seq") as u64,
        },
        3 => RichRecord::Release {
            seq: parts[1].as_int().expect("seq") as u64,
        },
        4 => RichRecord::VOp {
            vp: parts[1].as_pid().expect("vp"),
            op: dec_op(&parts[2]),
            resp: parts[3].clone(),
            label: dec_label(&parts[4]),
        },
        5 => RichRecord::Decide {
            vp: parts[1].as_pid().expect("vp"),
            value: parts[2].clone(),
            label: dec_label(&parts[3]),
        },
        t => panic!("unknown record tag {t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            RichRecord::TreeNode {
                label: vec![Sym::new(0)],
                parent: Some((2, 7)),
                sym: Sym::new(1),
                from_parent: vec![Sym::new(0)],
                to_parent: vec![],
                seq: 3,
            },
            RichRecord::TreeNode {
                label: vec![],
                parent: None,
                sym: Sym::new(0),
                from_parent: vec![],
                to_parent: vec![Sym::BOTTOM],
                seq: 0,
            },
            RichRecord::Activate {
                label: vec![Sym::new(1)],
            },
            RichRecord::Suspend {
                vp: 4,
                a: Sym::BOTTOM,
                b: Sym::new(1),
                label: vec![],
                hist_pos: 2,
                seq: 9,
            },
            RichRecord::Release { seq: 9 },
            RichRecord::VOp {
                vp: 1,
                op: Op::cas(ObjectId(0), Sym::BOTTOM.into(), Sym::new(0).into()),
                resp: Value::Sym(Sym::BOTTOM),
                label: vec![Sym::new(0)],
            },
            RichRecord::Decide {
                vp: 2,
                value: Value::Pid(2),
                label: vec![],
            },
        ];
        let decoded = decode_slot(&encode_slot(&records));
        assert_eq!(decoded, records);
        assert!(decode_slot(&Value::Nil).is_empty());
    }
}
