//! Run validation — the executable content of the paper's Lemma 1.2.
//!
//! Lemma 1.2 states that for every maximal label λ, the projection
//! `R|λ` of the emulation onto the virtual operations with compatible
//! labels *is a legal run of `A`*. Here "legal" is checked
//! mechanically:
//!
//! 1. Every emulated virtual operation is assigned a **real-time
//!    interval**: from the emulator's snapshot scan that informed it
//!    to the snapshot update that published it. (An operation's
//!    linearization point must be choosable inside this window.)
//! 2. For every **maximal branch** (no published branch extends it),
//!    the operations with compatible (prefix) branch tags are fed to
//!    the Wing–Gong linearizability checker against `A`'s *own*
//!    object specifications — compare&swap register included. A
//!    successful check exhibits a total order in which every response
//!    (including every claimed successful compare&swap) is exactly
//!    what real objects would have returned: a legal run.
//! 3. Decisions within a branch must agree and name a participating
//!    virtual process (the leader-election specification of §2).
//!
//! A validation failure is an emulation bug, never accepted silently.

use std::fmt;

use bso_objects::{Layout, OpKind, Value};
use bso_sim::linearizability::{check_history, NotLinearizable};
use bso_sim::record::RecordedOp;
use bso_sim::{EventKind, RunResult};

use crate::{Branch, Record};

/// Why a constructed run failed validation.
#[derive(Debug)]
pub enum ValidationError {
    /// A branch's operation history has no linearization.
    NotLegal {
        /// The offending branch.
        branch: Branch,
        /// The checker's complaint.
        source: NotLinearizable,
    },
    /// Two decisions within one branch disagree.
    Disagreement {
        /// The offending branch.
        branch: Branch,
        /// The two decisions.
        values: (Value, Value),
    },
    /// A decision names a virtual process that never acted in the
    /// branch.
    InvalidDecision {
        /// The offending branch.
        branch: Branch,
        /// The decision.
        value: Value,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NotLegal { branch, source } => {
                write!(f, "branch {branch:?} is not a legal run: {source}")
            }
            ValidationError::Disagreement { branch, values } => write!(
                f,
                "branch {branch:?} decided both {} and {}",
                values.0, values.1
            ),
            ValidationError::InvalidDecision { branch, value } => {
                write!(f, "branch {branch:?} decided non-participant {value}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Statistics of a successful validation.
#[derive(Clone, Debug)]
pub struct ValidationSummary {
    /// Number of maximal branches validated.
    pub branches: usize,
    /// Total virtual operations fed to the linearizability checker.
    pub ops_checked: usize,
    /// Total decisions checked.
    pub decisions_checked: usize,
}

/// Extracts each emulator's final published slot from the run trace.
pub fn final_slots(m: usize, result: &RunResult) -> Vec<Vec<Record>> {
    let mut slots = vec![Vec::new(); m];
    for e in result.trace.events() {
        if let EventKind::Applied { op, .. } = &e.kind {
            if let OpKind::SnapshotUpdate(v) = &op.kind {
                slots[e.pid] = Record::decode_slot(v);
            }
        }
    }
    slots
}

/// One emulated virtual operation with its real-time interval.
struct TimedRecord {
    record: Record,
    invoked_at: u64,
    responded_at: u64,
}

/// Assigns intervals to every published record by walking the trace:
/// record `i` of emulator `j` was published by `j`'s update carrying
/// `> i` records; its informing scan is the scan preceding that update.
fn timed_records(result: &RunResult, slots: &[Vec<Record>]) -> Vec<TimedRecord> {
    let mut out = Vec::new();
    let mut published = vec![0usize; slots.len()];
    let mut last_scan = vec![0u64; slots.len()];
    for e in result.trace.events() {
        if let EventKind::Applied { op, .. } = &e.kind {
            match &op.kind {
                OpKind::SnapshotScan => last_scan[e.pid] = e.seq as u64,
                OpKind::SnapshotUpdate(v) => {
                    let count = v.as_seq().map_or(0, |s| s.len());
                    for record in &slots[e.pid][published[e.pid]..count] {
                        out.push(TimedRecord {
                            record: record.clone(),
                            invoked_at: last_scan[e.pid],
                            responded_at: e.seq as u64,
                        });
                    }
                    published[e.pid] = count;
                }
                _ => {}
            }
        }
    }
    out
}

/// The maximal branches among all published record tags.
fn maximal_branches(slots: &[Vec<Record>]) -> Vec<Branch> {
    let mut tags: Vec<Branch> = slots.iter().flatten().map(|r| r.branch().clone()).collect();
    tags.sort();
    tags.dedup();
    tags.iter()
        .filter(|b| !tags.iter().any(|o| b.is_prefix_of(o) && o.len() > b.len()))
        .cloned()
        .collect()
}

/// Validates every maximal constructed branch of an emulation run.
///
/// # Errors
///
/// The first [`ValidationError`] found.
pub fn validate_report(
    a_layout: &Layout,
    phi: usize,
    result: &RunResult,
    slots: &[Vec<Record>],
) -> Result<ValidationSummary, ValidationError> {
    let timed = timed_records(result, slots);
    let branches = maximal_branches(slots);
    let mut ops_checked = 0;
    let mut decisions_checked = 0;
    for branch in &branches {
        let mut history: Vec<RecordedOp> = Vec::new();
        let mut participants: Vec<usize> = Vec::new();
        let mut decision: Option<Value> = None;
        for t in &timed {
            if !t.record.branch().is_prefix_of(branch) {
                continue;
            }
            match &t.record {
                Record::Op { vp, op, resp, .. } => {
                    assert!(*vp < phi, "vp out of range");
                    participants.push(*vp);
                    history.push(RecordedOp {
                        pid: *vp,
                        op: op.clone(),
                        resp: resp.clone(),
                        invoked_at: t.invoked_at,
                        responded_at: t.responded_at,
                    });
                }
                Record::Decision { vp, value, .. } => {
                    participants.push(*vp);
                    match &decision {
                        None => decision = Some(value.clone()),
                        Some(prev) if prev == value => {}
                        Some(prev) => {
                            return Err(ValidationError::Disagreement {
                                branch: branch.clone(),
                                values: (prev.clone(), value.clone()),
                            })
                        }
                    }
                    decisions_checked += 1;
                }
            }
        }
        ops_checked += history.len();
        check_history(a_layout, &history).map_err(|source| ValidationError::NotLegal {
            branch: branch.clone(),
            source,
        })?;
        if let Some(v) = decision {
            let valid = v.as_pid().is_some_and(|w| participants.contains(&w));
            if !valid {
                return Err(ValidationError::InvalidDecision {
                    branch: branch.clone(),
                    value: v,
                });
            }
        }
    }
    Ok(ValidationSummary {
        branches: branches.len(),
        ops_checked,
        decisions_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;
    use bso_objects::Sym;

    #[test]
    fn maximal_branch_selection() {
        let mut a = Branch::root();
        a.push(Step {
            from: Sym::BOTTOM,
            to: Sym::new(0),
            emu: 0,
            vp: 0,
        });
        let mut ab = a.clone();
        ab.push(Step {
            from: Sym::new(0),
            to: Sym::new(1),
            emu: 1,
            vp: 1,
        });
        let mut ac = a.clone();
        ac.push(Step {
            from: Sym::new(0),
            to: Sym::new(2),
            emu: 2,
            vp: 2,
        });
        let slots = vec![
            vec![Record::Decision {
                vp: 0,
                value: Value::Pid(0),
                branch: a.clone(),
            }],
            vec![Record::Decision {
                vp: 1,
                value: Value::Pid(1),
                branch: ab.clone(),
            }],
            vec![Record::Decision {
                vp: 2,
                value: Value::Pid(2),
                branch: ac.clone(),
            }],
        ];
        let max = maximal_branches(&slots);
        assert_eq!(max.len(), 2);
        assert!(max.contains(&ab) && max.contains(&ac));
        assert!(!max.contains(&a), "a is a prefix of both");
    }
}
