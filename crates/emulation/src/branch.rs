use bso_objects::{Sym, Value};

/// One successful compare&swap in an emulated run: who (which emulator
/// and which of its virtual processes) changed the register from
/// `from` to `to`.
///
/// A step is the emulation's unit of *splitting*: two emulators that
/// concurrently append different steps at the same position continue
/// to construct different runs of `A` from there on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Step {
    /// The register value being replaced.
    pub from: Sym,
    /// The value installed.
    pub to: Sym,
    /// The emulator that emulated the success.
    pub emu: usize,
    /// The virtual process whose operation succeeded.
    pub vp: usize,
}

impl Step {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::Sym(self.from),
            Value::Sym(self.to),
            Value::Pid(self.emu),
            Value::Pid(self.vp),
        ])
    }

    fn from_value(v: &Value) -> Step {
        let parts = v.as_seq().expect("step encoding");
        Step {
            from: parts[0].as_sym().expect("from"),
            to: parts[1].as_sym().expect("to"),
            emu: parts[2].as_pid().expect("emu"),
            vp: parts[3].as_pid().expect("vp"),
        }
    }
}

/// A branch: the sequence of successful compare&swap steps of one
/// constructed run of `A` — the emulation's run identity.
///
/// The *label* of a branch (the paper's term) is the sequence of first
/// occurrences of values in it; for an algorithm that never reuses
/// values (such as `LabelElection`) the label *is* the value sequence,
/// which is how the `(k−1)!` bound on distinct constructed runs (and
/// hence decisions) materializes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Branch {
    steps: Vec<Step>,
}

impl Branch {
    /// The empty branch (run with no successful compare&swap yet).
    pub fn root() -> Branch {
        Branch::default()
    }

    /// The steps, in history order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The number of successful compare&swap operations.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no compare&swap has succeeded yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The current register value of this branch's run (⊥ initially).
    pub fn current(&self) -> Sym {
        self.steps.last().map_or(Sym::BOTTOM, |s| s.to)
    }

    /// Extends the branch by one step.
    ///
    /// # Panics
    ///
    /// Panics if `step.from` is not the branch's current value — that
    /// would make the emulated history illegal.
    pub fn push(&mut self, step: Step) {
        assert_eq!(step.from, self.current(), "history discontinuity");
        self.steps.push(step);
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Branch) -> bool {
        self.len() <= other.len() && other.steps[..self.len()] == self.steps[..]
    }

    /// Whether the two branches are *compatible*: one is a prefix of
    /// the other. An operation tagged with branch `β` belongs to every
    /// run whose branch extends `β`.
    pub fn compatible(&self, other: &Branch) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// The branch's **label**: the sequence of first occurrences of
    /// register values (the paper's Section 3.1). Starts implicitly
    /// with ⊥, which is omitted.
    pub fn label(&self) -> Vec<Sym> {
        let mut seen = vec![Sym::BOTTOM];
        let mut label = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.to) {
                seen.push(s.to);
                label.push(s.to);
            }
        }
        label
    }

    /// The value sequence of the history (targets of the steps).
    pub fn value_sequence(&self) -> Vec<Sym> {
        self.steps.iter().map(|s| s.to).collect()
    }

    /// Encodes the branch as a [`Value`] for publication in shared
    /// memory.
    pub fn to_value(&self) -> Value {
        Value::Seq(self.steps.iter().map(Step::to_value).collect())
    }

    /// Decodes a published branch.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings (indicates emulator corruption).
    pub fn from_value(v: &Value) -> Branch {
        let steps = v
            .as_seq()
            .expect("branch encoding")
            .iter()
            .map(Step::from_value)
            .collect();
        Branch { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(from: u8, to: u8, emu: usize) -> Step {
        let f = if from == 0 {
            Sym::BOTTOM
        } else {
            Sym::new(from - 1)
        };
        Step {
            from: f,
            to: Sym::new(to - 1),
            emu,
            vp: emu * 10,
        }
    }

    #[test]
    fn push_enforces_continuity() {
        let mut b = Branch::root();
        assert_eq!(b.current(), Sym::BOTTOM);
        b.push(step(0, 1, 0));
        b.push(step(1, 2, 1));
        assert_eq!(b.current(), Sym::new(1));
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "history discontinuity")]
    fn discontinuous_push_rejected() {
        let mut b = Branch::root();
        b.push(step(1, 2, 0)); // register holds ⊥, not 0
    }

    #[test]
    fn prefix_and_compatibility() {
        let mut a = Branch::root();
        a.push(step(0, 1, 0));
        let mut b = a.clone();
        b.push(step(1, 2, 1));
        let mut c = a.clone();
        c.push(step(1, 3, 2));
        assert!(a.is_prefix_of(&b) && a.compatible(&b));
        assert!(b.compatible(&a));
        assert!(!b.compatible(&c), "diverged branches are incompatible");
        assert!(Branch::root().compatible(&b));
    }

    #[test]
    fn label_is_first_occurrences() {
        // History ⊥→1, 1→2, 2→1? — values may repeat in general runs;
        // the label keeps only first occurrences.
        let mut b = Branch::root();
        b.push(Step {
            from: Sym::BOTTOM,
            to: Sym::new(0),
            emu: 0,
            vp: 0,
        });
        b.push(Step {
            from: Sym::new(0),
            to: Sym::new(1),
            emu: 1,
            vp: 9,
        });
        b.push(Step {
            from: Sym::new(1),
            to: Sym::new(0),
            emu: 0,
            vp: 1,
        });
        assert_eq!(b.label(), vec![Sym::new(0), Sym::new(1)]);
        assert_eq!(
            b.value_sequence(),
            vec![Sym::new(0), Sym::new(1), Sym::new(0)]
        );
    }

    #[test]
    fn value_roundtrip() {
        let mut b = Branch::root();
        b.push(step(0, 2, 3));
        b.push(step(2, 1, 1));
        assert_eq!(Branch::from_value(&b.to_value()), b);
        assert_eq!(
            Branch::from_value(&Branch::root().to_value()),
            Branch::root()
        );
    }
}
