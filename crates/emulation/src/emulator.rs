//! The emulators: `m` read/write-only processes cooperatively
//! constructing legal runs of a compare&swap election `A`.
//!
//! Corresponds to the paper's Figure 3 main loop, adapted as follows
//! (every adaptation is an *executable* choice, documented here and in
//! DESIGN.md):
//!
//! * Emulator shared state is one atomic-snapshot object with a
//!   single-writer slot per emulator (the paper's swmr registers +
//!   `SnapShot(T, G)`); each iteration is scan → think → publish.
//! * Splitting: the paper's groups split on the first occurrence of
//!   new compare&swap values; here a branch records *every* successful
//!   step (the coarser splitting of the FOCS '93 companion \[1\],
//!   which the paper describes as the simple base case). Because our
//!   election algorithms never reuse values, the branch *is* its
//!   label, and the ≤ (k−1)! bound on distinct labels — the paper's
//!   quantitative point — is preserved and observable.
//! * The suspension/rebalancing machinery (Figures 5–6) exists to make
//!   splitting lazier when values *do* repeat; its data structures are
//!   implemented and tested in [`crate::tree`] and [`crate::excess`],
//!   with Lemma 1.1 in `bso_combinatorics::game`.
//!
//! Each emulator owns a fixed set of virtual processes (v-processes) of
//! `A` and is the only one to simulate their steps (as in the paper:
//! "the steps of a v-process in `A` are simulated only by the emulator
//! that owns it"). Reads and writes of `A`'s read/write objects are
//! emulated through branch-tagged records ("each value written is
//! tagged by the label of the emulator at the time of the write; a
//! read returns the latest value whose label is a prefix or an
//! extension of the reading emulator's label").

use std::collections::BTreeMap;

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_sim::{Action, Pid, Protocol};
use bso_telemetry::{Counter, Histogram, Registry, TraceArg, TraceSink, TraceWorker};

use crate::{Branch, Step};

/// Telemetry handles for the simple emulation (the `emul.*`
/// namespace). Handles are created up front so all metrics appear in a
/// snapshot even at zero; on a disabled registry every call is a no-op.
#[derive(Clone, Debug)]
struct EmulTel {
    /// Think steps taken (one per scan→think→publish iteration).
    think: Counter,
    /// Foreign branch steps adopted from other emulators' records.
    adopted_steps: Counter,
    /// Simple virtual operations emulated (reads, writes, failing c&s).
    simple_ops: Counter,
    /// Successful compare&swap emulations — each one splits the runs.
    splits: Counter,
    /// Virtual-process decisions adopted.
    decisions: Counter,
    /// Branch length at each split (run-splitting depth profile).
    branch_len: Histogram,
    /// Structured-event track for split/decision instants.
    trace: TraceWorker,
}

impl EmulTel {
    fn new(registry: &Registry) -> EmulTel {
        EmulTel {
            think: registry.counter("emul.think"),
            adopted_steps: registry.counter("emul.adopted_steps"),
            simple_ops: registry.counter("emul.simple_ops"),
            splits: registry.counter("emul.splits"),
            decisions: registry.counter("emul.decisions"),
            branch_len: registry.histogram("emul.branch_len"),
            trace: TraceSink::default().worker("emul"),
        }
    }
}

/// One published entry of an emulator's slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Record {
    /// A virtual operation of `A` emulated with the given response,
    /// in the run(s) extending `branch`.
    Op {
        /// The virtual process that performed it.
        vp: usize,
        /// The operation, in `A`'s object space.
        op: Op,
        /// The emulated response.
        resp: Value,
        /// The emulator's branch at emulation time (for successful
        /// compare&swap steps: *including* the new step).
        branch: Branch,
    },
    /// A virtual process reached a decision; the publishing emulator
    /// adopts it.
    Decision {
        /// The deciding virtual process.
        vp: usize,
        /// The decided value.
        value: Value,
        /// The branch in whose run the decision happened.
        branch: Branch,
    },
}

impl Record {
    /// The branch tag of this record.
    pub fn branch(&self) -> &Branch {
        match self {
            Record::Op { branch, .. } | Record::Decision { branch, .. } => branch,
        }
    }

    /// The virtual process of this record.
    pub fn vp(&self) -> usize {
        match self {
            Record::Op { vp, .. } | Record::Decision { vp, .. } => *vp,
        }
    }

    fn encode_op(op: &Op) -> Value {
        let obj = Value::Int(op.obj.0 as i64);
        match &op.kind {
            OpKind::Read => Value::Seq(vec![obj, Value::Int(0)]),
            OpKind::Write(v) => Value::Seq(vec![obj, Value::Int(1), v.clone()]),
            OpKind::Cas { expect, new } => {
                Value::Seq(vec![obj, Value::Int(2), expect.clone(), new.clone()])
            }
            OpKind::SnapshotScan => Value::Seq(vec![obj, Value::Int(3)]),
            OpKind::SnapshotUpdate(v) => Value::Seq(vec![obj, Value::Int(4), v.clone()]),
            OpKind::Swap(v) => Value::Seq(vec![obj, Value::Int(5), v.clone()]),
            other => panic!("operation {other} is not emulatable (A must be cas+read/write)"),
        }
    }

    fn decode_op(v: &Value) -> Op {
        let parts = v.as_seq().expect("op encoding");
        let obj = ObjectId(parts[0].as_int().expect("obj id") as usize);
        let kind = match parts[1].as_int().expect("op tag") {
            0 => OpKind::Read,
            1 => OpKind::Write(parts[2].clone()),
            2 => OpKind::Cas {
                expect: parts[2].clone(),
                new: parts[3].clone(),
            },
            3 => OpKind::SnapshotScan,
            4 => OpKind::SnapshotUpdate(parts[2].clone()),
            5 => OpKind::Swap(parts[2].clone()),
            t => panic!("unknown op tag {t}"),
        };
        Op::new(obj, kind)
    }

    /// Encodes the record for publication.
    pub fn to_value(&self) -> Value {
        match self {
            Record::Op {
                vp,
                op,
                resp,
                branch,
            } => Value::Seq(vec![
                Value::Int(0),
                Value::Pid(*vp),
                Self::encode_op(op),
                resp.clone(),
                branch.to_value(),
            ]),
            Record::Decision { vp, value, branch } => Value::Seq(vec![
                Value::Int(1),
                Value::Pid(*vp),
                value.clone(),
                branch.to_value(),
            ]),
        }
    }

    /// Decodes a published record.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings.
    pub fn from_value(v: &Value) -> Record {
        let parts = v.as_seq().expect("record encoding");
        match parts[0].as_int().expect("record tag") {
            0 => Record::Op {
                vp: parts[1].as_pid().expect("vp"),
                op: Self::decode_op(&parts[2]),
                resp: parts[3].clone(),
                branch: Branch::from_value(&parts[4]),
            },
            1 => Record::Decision {
                vp: parts[1].as_pid().expect("vp"),
                value: parts[2].clone(),
                branch: Branch::from_value(&parts[3]),
            },
            t => panic!("unknown record tag {t}"),
        }
    }

    /// Decodes a whole published slot.
    pub fn decode_slot(v: &Value) -> Vec<Record> {
        match v.as_seq() {
            None => Vec::new(),
            Some(items) => items.iter().map(Record::from_value).collect(),
        }
    }
}

/// The status of one owned virtual process.
#[derive(Clone, PartialEq, Eq, Debug)]
enum VpStatus {
    Active,
    Decided(Value),
}

/// Local state of one emulator.
#[derive(Clone, Debug)]
pub struct EmulatorState<S> {
    emu: usize,
    branch: Branch,
    /// (global vp id, state machine state, status) of owned vps.
    vps: Vec<(usize, S, VpStatus)>,
    /// Own records (mirror of the own slot, plus not-yet-published
    /// tail).
    records: Vec<Record>,
    phase: Phase,
    /// A decision to adopt once the current publish completes (the
    /// decision record must be visible to others before the emulator
    /// halts).
    pending_decision: Option<Value>,
}

#[derive(Clone, Debug)]
enum Phase {
    /// About to scan the emulator snapshot.
    Scan,
    /// About to publish the own slot.
    Publish,
    /// About to decide.
    Decide(Value),
}

/// The `m`-emulator protocol. Runs on **read/write memory only** (one
/// snapshot object of single-writer slots), yet constructs runs of the
/// compare&swap algorithm `A`.
#[derive(Clone, Debug)]
pub struct EmulationProtocol<A: Protocol> {
    a: A,
    m: usize,
    cas_obj: ObjectId,
    k: usize,
    /// vp id → owning emulator.
    owner: Vec<usize>,
    tel: EmulTel,
}

impl<A: Protocol> EmulationProtocol<A> {
    const SLOTS: ObjectId = ObjectId(0);

    /// Wraps the election algorithm `A` for emulation by `m`
    /// emulators; v-processes are dealt round-robin (vp `i` belongs to
    /// emulator `i % m`).
    ///
    /// # Panics
    ///
    /// Panics if `A`'s layout does not consist of exactly one
    /// `compare&swap-(k)` plus read/write objects, or if `m` is 0 or
    /// exceeds the number of v-processes (every emulator needs at
    /// least one, as in the paper's Φ/m assignment).
    pub fn new(a: A, m: usize) -> EmulationProtocol<A> {
        let phi = a.processes();
        assert!(
            m >= 1 && m <= phi,
            "need 1 <= m <= Φ (Φ = {phi}), got m = {m}"
        );
        let layout = a.layout();
        let mut cas = None;
        for (id, init) in layout.iter() {
            match init {
                ObjectInit::CasK { k } => {
                    assert!(cas.is_none(), "A must use exactly one compare&swap-(k)");
                    cas = Some((id, *k));
                }
                ObjectInit::Register(_) | ObjectInit::Snapshot { .. } => {}
                other => panic!("A uses non-read/write object {other:?}"),
            }
        }
        let (cas_obj, k) = cas.expect("A must use a compare&swap-(k)");
        let owner = (0..phi).map(|vp| vp % m).collect();
        EmulationProtocol {
            a,
            m,
            cas_obj,
            k,
            owner,
            tel: EmulTel::new(&Registry::default()),
        }
    }

    /// Redirects this emulation's `emul.*` telemetry into `registry`
    /// (the default is the global `BSO_TELEMETRY`-gated registry).
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        let trace = self.tel.trace.clone();
        self.tel = EmulTel::new(registry);
        self.tel.trace = trace;
        self
    }

    /// Redirects this emulation's structured trace events into `sink`
    /// (the default is the global `BSO_TRACE`-gated sink).
    #[must_use]
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.tel.trace = sink.worker("emul");
        self
    }

    /// The emulated algorithm.
    pub fn algorithm(&self) -> &A {
        &self.a
    }

    /// The compare&swap domain size `k` of `A`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `A`'s compare&swap object id.
    pub fn cas_object(&self) -> ObjectId {
        self.cas_obj
    }

    /// The emulator owning virtual process `vp`.
    pub fn owner_of(&self, vp: usize) -> usize {
        self.owner[vp]
    }

    /// Emulates a read of `A`'s read/write object `obj` (register read,
    /// or one snapshot slot) against the branch-filtered records.
    ///
    /// Only writes whose branch is compatible with `branch` are
    /// visible; the latest one wins. Register writers must be unique
    /// per object (the paper's w.l.o.g. swmr assumption) — the writer's
    /// publication order is its program order.
    fn read_rw(
        layout_init: &ObjectInit,
        obj: ObjectId,
        branch: &Branch,
        all_records: &[Vec<Record>],
        slot: Option<usize>,
    ) -> Value {
        let mut latest: Option<&Value> = None;
        let mut writer: Option<usize> = None;
        for recs in all_records {
            for r in recs {
                if let Record::Op {
                    vp, op, branch: b, ..
                } = r
                {
                    if op.obj != obj || !b.compatible(branch) {
                        continue;
                    }
                    let written = match (&op.kind, slot) {
                        (OpKind::Write(v), None) => Some(v),
                        (OpKind::SnapshotUpdate(v), Some(s)) if *vp == s => Some(v),
                        (OpKind::SnapshotUpdate(_), Some(_)) => None,
                        _ => None,
                    };
                    if let Some(v) = written {
                        if slot.is_none() {
                            match writer {
                                None => writer = Some(*vp),
                                Some(w) => assert_eq!(
                                    w, *vp,
                                    "register {obj} has multiple writers; A must use \
                                     swmr registers"
                                ),
                            }
                        }
                        latest = Some(v);
                    }
                }
            }
        }
        match latest {
            Some(v) => v.clone(),
            None => match (layout_init, slot) {
                (ObjectInit::Register(v0), None) => v0.clone(),
                (ObjectInit::Snapshot { .. }, Some(_)) => Value::Nil,
                _ => Value::Nil,
            },
        }
    }

    /// One thinking step: given the freshly scanned view, advance the
    /// emulation by exactly one virtual operation (or adopt a
    /// decision). Returns the new record to publish, or the emulator's
    /// decision.
    fn think(&self, st: &mut EmulatorState<A::State>, view: &Value) -> Result<Record, Value> {
        self.tel.think.inc();
        let slots = view.as_seq().expect("snapshot view");
        let mut all_records: Vec<Vec<Record>> = slots.iter().map(Record::decode_slot).collect();
        // The own slot may lag behind local records (the tail is
        // published after this think step); local knowledge wins.
        all_records[st.emu] = st.records.clone();

        // 1. Adopt foreign extensions of the branch, one step at a
        //    time, deterministically (smallest step first).
        loop {
            let mut candidate: Option<Step> = None;
            for recs in &all_records {
                for r in recs {
                    let b = r.branch();
                    if st.branch.is_prefix_of(b) && b.len() > st.branch.len() {
                        let next = b.steps()[st.branch.len()].clone();
                        if candidate.as_ref().is_none_or(|c| next < *c) {
                            candidate = Some(next);
                        }
                    }
                }
            }
            match candidate {
                Some(step) => {
                    self.tel.adopted_steps.inc();
                    st.branch.push(step);
                }
                None => break,
            }
        }
        let cs = st.branch.current();

        // 2. Adopt a decision if one of the owned v-processes is ready.
        for (vp, vps, status) in st.vps.iter() {
            if matches!(status, VpStatus::Active) {
                if let Action::Decide(v) = self.a.next_action(vps) {
                    return Err(self.finish_vp(st, *vp, v));
                }
            }
        }

        let layout = self.a.layout();

        // 3. Emulate one *simple* virtual operation: a read/write, a
        //    compare&swap read, or a compare&swap that fails against
        //    the branch's current value (Figure 3, EmulateSimpleOp).
        let mut blocked: Vec<(usize, Sym)> = Vec::new(); // (vp index, target)
        for i in 0..st.vps.len() {
            let (vp, state, status) = &st.vps[i];
            if !matches!(status, VpStatus::Active) {
                continue;
            }
            let op = match self.a.next_action(state) {
                Action::Invoke(op) => op,
                Action::Decide(_) => unreachable!("handled above"),
            };
            let resp = if op.obj == self.cas_obj {
                match &op.kind {
                    OpKind::Read => Value::Sym(cs),
                    OpKind::Cas { expect, .. } => {
                        if *expect == Value::Sym(cs) {
                            // Potential success: not simple.
                            let target = match &op.kind {
                                OpKind::Cas { new, .. } => {
                                    new.as_sym().expect("cas writes symbols")
                                }
                                _ => unreachable!(),
                            };
                            blocked.push((i, target));
                            continue;
                        }
                        Value::Sym(cs) // failing compare&swap
                    }
                    other => panic!("unsupported compare&swap op {other}"),
                }
            } else {
                let init = &layout.objects()[op.obj.0];
                match &op.kind {
                    OpKind::Read => Self::read_rw(init, op.obj, &st.branch, &all_records, None),
                    OpKind::SnapshotScan => {
                        let n = match init {
                            ObjectInit::Snapshot { slots } => *slots,
                            other => panic!("scan of non-snapshot {other:?}"),
                        };
                        Value::Seq(
                            (0..n)
                                .map(|s| {
                                    Self::read_rw(init, op.obj, &st.branch, &all_records, Some(s))
                                })
                                .collect(),
                        )
                    }
                    OpKind::Write(_) | OpKind::SnapshotUpdate(_) => Value::Nil,
                    other => panic!("unsupported read/write op {other}"),
                }
            };
            let vp = *vp;
            let record = Record::Op {
                vp,
                op,
                resp: resp.clone(),
                branch: st.branch.clone(),
            };
            self.a.on_response(&mut st.vps[i].1, resp);
            st.records.push(record.clone());
            self.tel.simple_ops.inc();
            return Ok(record);
        }

        // 4. Every active owned v-process is blocked on a potentially
        //    successful c&s(cs → ·): emulate the most popular one as a
        //    success — this is where runs split (the paper's group
        //    splitting; here at the granularity of [1]).
        let mut popularity: BTreeMap<Sym, Vec<usize>> = BTreeMap::new();
        for (i, target) in &blocked {
            popularity.entry(*target).or_default().push(*i);
        }
        let (target, who) = popularity
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .unwrap_or_else(|| {
                panic!(
                    "emulator {} has no active v-process and none decided — \
                     v-process starvation",
                    st.emu
                )
            });
        let i = who[0];
        let (vp, _, _) = st.vps[i];
        let step = Step {
            from: cs,
            to: target,
            emu: st.emu,
            vp,
        };
        st.branch.push(step);
        self.tel.splits.inc();
        self.tel.branch_len.record(st.branch.len() as u64);
        if self.tel.trace.is_enabled() {
            self.tel.trace.instant_with(
                "emul.split",
                [
                    ("emu", TraceArg::from(st.emu)),
                    ("vp", TraceArg::from(vp)),
                    ("from", TraceArg::from(u64::from(cs.code()))),
                    ("to", TraceArg::from(u64::from(target.code()))),
                    ("branch_len", TraceArg::from(st.branch.len())),
                ],
            );
        }
        let op = match self.a.next_action(&st.vps[i].1) {
            Action::Invoke(op) => op,
            Action::Decide(_) => unreachable!(),
        };
        // A successful c&s returns the previous value (= expect = cs).
        let resp = Value::Sym(cs);
        let record = Record::Op {
            vp,
            op,
            resp: resp.clone(),
            branch: st.branch.clone(),
        };
        self.a.on_response(&mut st.vps[i].1, resp);
        st.records.push(record.clone());
        Ok(record)
    }

    fn finish_vp(&self, st: &mut EmulatorState<A::State>, vp: usize, v: Value) -> Value {
        self.tel.decisions.inc();
        if self.tel.trace.is_enabled() {
            self.tel.trace.instant_with(
                "emul.decide",
                [
                    ("emu", TraceArg::from(st.emu)),
                    ("vp", TraceArg::from(vp)),
                    ("value", TraceArg::from(v.to_string())),
                ],
            );
        }
        for entry in st.vps.iter_mut() {
            if entry.0 == vp {
                entry.2 = VpStatus::Decided(v.clone());
            }
        }
        st.records.push(Record::Decision {
            vp,
            value: v.clone(),
            branch: st.branch.clone(),
        });
        v
    }

    fn encode_records(records: &[Record]) -> Value {
        Value::Seq(records.iter().map(Record::to_value).collect())
    }
}

impl<A: Protocol> Protocol for EmulationProtocol<A> {
    type State = EmulatorState<A::State>;

    fn processes(&self) -> usize {
        self.m
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Snapshot { slots: self.m });
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> EmulatorState<A::State> {
        // Each emulator instantiates its owned v-processes of A with
        // their election inputs (their own identities).
        let vps = (0..self.a.processes())
            .filter(|vp| self.owner[*vp] == pid)
            .map(|vp| (vp, self.a.init(vp, &Value::Pid(vp)), VpStatus::Active))
            .collect();
        EmulatorState {
            emu: pid,
            branch: Branch::root(),
            vps,
            records: Vec::new(),
            phase: Phase::Scan,
            pending_decision: None,
        }
    }

    fn next_action(&self, state: &EmulatorState<A::State>) -> Action {
        match &state.phase {
            Phase::Scan => Action::Invoke(Op::new(Self::SLOTS, OpKind::SnapshotScan)),
            Phase::Publish => Action::Invoke(Op::new(
                Self::SLOTS,
                OpKind::SnapshotUpdate(Self::encode_records(&state.records)),
            )),
            Phase::Decide(v) => Action::Decide(v.clone()),
        }
    }

    fn on_response(&self, state: &mut EmulatorState<A::State>, resp: Value) {
        match &state.phase {
            Phase::Scan => {
                // `think` pushed either an op record (Ok) or a decision
                // record (Err) onto `state.records`; publish it, and if
                // it was a decision, halt right after the publish.
                if let Err(decision) = self.think(state, &resp) {
                    state.pending_decision = Some(decision);
                }
                state.phase = Phase::Publish;
            }
            Phase::Publish => {
                state.phase = match state.pending_decision.take() {
                    Some(v) => Phase::Decide(v),
                    None => Phase::Scan,
                };
            }
            Phase::Decide(_) => {}
        }
    }
}
