//! The full PODC '94 emulation (Figures 3, 5, 6): suspension,
//! rebalancing, and tree-routed history updates.
//!
//! The simple emulation of [`crate::EmulationProtocol`] splits the
//! emulators on *every* conflicting successful compare&swap — enough
//! for algorithms that never reuse register values, where branch =
//! label. The paper's machinery exists for the general case: when `A`
//! can drive the register through the same value repeatedly, groups
//! must split **only on first occurrences** (at most `(k−1)!` labels),
//! and every repeated transition in the constructed history must be
//! *paid for* by a suspended virtual process:
//!
//! * **Suspension** (Fig. 3 lines 4–5): when `quota` of an emulator's
//!   active v-processes all have a pending `c&s(a → b)` and none of
//!   its v-processes is suspended on that edge, it suspends `quota` of
//!   them — freezing operations that future history transitions can
//!   consume.
//! * **Rebalancing / release** (Fig. 5): a suspended v-process on
//!   `(a, b)` may be released — its `c&s(a → b)` emulated as a
//!   *success* — once the history contains at least `margin`
//!   transitions `a → b`, after its suspension point, that no released
//!   process has consumed. The margin (paper: `m`) makes concurrent
//!   releases by different emulators safe.
//! * **UpdateC&S** (Fig. 6): when only potential successes remain, the
//!   emulator extends the history. A *fresh* value splits the group
//!   (activates a deeper label); a *reused* value must be routed
//!   through a cycle of the excess graph whose minimum excess clears
//!   the depth-dependent threshold `Σ g·base^g`, and is attached to
//!   the history tree with the cycle's two path halves as
//!   `FromParent`/`ToParent` — the "`…abac`" weave of §3.1.1. The
//!   thresholds are what Lemma 1.1's move/jump game bounds; base = `m`
//!   is the paper's choice.
//!
//! Correctness is *checked, not assumed*: [`RichReport::validate`]
//! reconstructs every maximal label's virtual-operation families and
//! asks [`bso_sim::linearizability::check_run_legality`] for an
//! interleaving that matches `A`'s sequential object specifications.
//! Note this is deliberately **not** real-time linearizability: the
//! paper's Lemma 1.2 constructs runs by *inserting* suspended
//! operations at earlier points than the emulation's wall clock ("we
//! do not show a specific run of `A` that was emulated, but rather we
//! prove that there is at least one run of `A` that the emulation has
//! emulated").
//!
//! The emulation can also **stall** honestly: with too few virtual
//! processes per emulator the suspension quotas cannot be met and no
//! progress rule applies — which is precisely the paper's quantitative
//! point (Φ must be large for the reduction to run), measured in
//! `examples/rich_emulation.rs`.

use std::collections::BTreeMap;

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_sim::{Action, Pid, Protocol, RunError, Scheduler, Simulation};
use bso_telemetry::{Counter, Histogram, Registry, TraceArg, TraceSink, TraceWorker};

use crate::excess::{attach_threshold, ExcessGraph};
use crate::tree::{HistoryTree, Label};

/// Telemetry handles for the rich emulation (the `rich.*` namespace).
/// Handles are created up front so all metrics appear in a snapshot
/// even at zero; on a disabled registry every call is a no-op.
#[derive(Clone, Debug)]
struct RichTel {
    /// Think steps taken.
    think: Counter,
    /// Suspensions created (eager quota, replacement, or lazy).
    suspensions: Counter,
    /// Suspensions released as emulated successes.
    releases: Counter,
    /// Rebalance (Fig. 5) evaluations.
    rebalance_attempts: Counter,
    /// Think steps that made no progress (the Φ-too-small regime).
    stalls: Counter,
    /// Widths of excess-graph cycles evaluated in UpdateC&S.
    cycle_width: Histogram,
    /// Virtual operations per maximal label (recorded by
    /// [`RichReport::validate`]).
    label_run_len: Histogram,
    /// Structured-event track for suspend/stall/split instants.
    trace: TraceWorker,
}

impl RichTel {
    fn new(registry: &Registry) -> RichTel {
        RichTel {
            think: registry.counter("rich.think"),
            suspensions: registry.counter("rich.suspensions"),
            releases: registry.counter("rich.releases"),
            rebalance_attempts: registry.counter("rich.rebalance.attempts"),
            stalls: registry.counter("rich.stalls"),
            cycle_width: registry.histogram("rich.excess.cycle_width"),
            label_run_len: registry.histogram("rich.label_run_len"),
            trace: TraceSink::default().worker("rich"),
        }
    }
}

/// Tuning of the rich emulation.
///
/// The paper's parameters guarantee progress for *any* `A` with
/// Φ = O(k^(k²+3)) virtual processes; the demo parameters shrink the
/// bookkeeping so small instances complete. Soundness never depends on
/// the parameters — every constructed run is legality-checked — only
/// *progress* does, which is exactly the paper's quantitative point
/// (measured in the Φ-sweep tests).
#[derive(Clone, Debug)]
pub struct RichConfig {
    /// Per-edge suspension batch size (paper: `m·k²`).
    pub suspend_quota: usize,
    /// Unmatched transitions required before a release (paper: `m` —
    /// so that all `m` emulators releasing concurrently still each
    /// find a transition; with fewer emulators per edge a smaller
    /// margin is safe and the validator confirms it).
    pub release_margin: usize,
    /// Base of the attach threshold `Σ g·base^g` (paper: `m`).
    pub threshold_base: usize,
    /// Whether a release requires a replacement active v-process on
    /// the same edge (Fig. 5 condition (3); the paper needs it for its
    /// counting, demos with one v-process per edge cannot satisfy it).
    pub require_replacement: bool,
    /// Just-in-time suspension inside `UpdateC&S` when the chosen
    /// target is unbacked (demo configurations): freezes one v-process
    /// per history transition instead of `quota` per edge — the
    /// eager/lazy trade-off behind the paper's Φ requirement.
    pub lazy_suspend: bool,
}

impl RichConfig {
    /// The paper's parameters for `m` emulators over a domain of size
    /// `k`.
    pub fn paper(m: usize, k: usize) -> RichConfig {
        RichConfig {
            suspend_quota: m * k * k,
            release_margin: m,
            threshold_base: m,
            require_replacement: true,
            lazy_suspend: false,
        }
    }

    /// Small parameters for demonstrations with few virtual processes.
    /// The release margin is left to the adaptive rule (the number of
    /// emulators holding unreleased suspensions on the edge).
    pub fn demo() -> RichConfig {
        RichConfig {
            suspend_quota: usize::MAX, // eager suspension off
            release_margin: 0,         // adaptive
            threshold_base: 1,
            require_replacement: false,
            lazy_suspend: true,
        }
    }
}

/// One published entry of a rich emulator's slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RichRecord {
    /// A vertex attached to the small tree of `label`.
    TreeNode {
        /// The tree's label.
        label: Label,
        /// Parent vertex: `None` = the tree's root, else the
        /// `(owner, seq)` of another published vertex.
        parent: Option<(usize, u64)>,
        /// The new vertex's symbol.
        sym: Sym,
        /// Connecting path from the parent's symbol (exclusive).
        from_parent: Vec<Sym>,
        /// Connecting path back to the parent's symbol (exclusive).
        to_parent: Vec<Sym>,
        /// The attaching emulator's vertex counter.
        seq: u64,
    },
    /// Activation of a deeper label (group split on a first value).
    Activate {
        /// The new label (parent label plus the fresh symbol).
        label: Label,
    },
    /// A virtual process was suspended on edge `(a, b)`.
    Suspend {
        /// The suspended virtual process.
        vp: usize,
        /// The pending operation's expected value.
        a: Sym,
        /// The pending operation's new value.
        b: Sym,
        /// The emulator's label at suspension time.
        label: Label,
        /// Number of history transitions at suspension time.
        hist_pos: usize,
        /// The owner's suspension counter.
        seq: u64,
    },
    /// The owner released its suspension number `seq` (the v-process's
    /// `c&s` was emulated as a success).
    Release {
        /// The owner's suspension counter being released.
        seq: u64,
    },
    /// An emulated virtual operation.
    VOp {
        /// The virtual process.
        vp: usize,
        /// The operation in `A`'s object space.
        op: Op,
        /// The emulated response.
        resp: Value,
        /// The emulator's label at emulation time.
        label: Label,
    },
    /// A virtual process decided; the emulator adopts the value.
    Decide {
        /// The deciding virtual process.
        vp: usize,
        /// The decision.
        value: Value,
        /// The emulator's label.
        label: Label,
    },
}

mod encode;
pub use encode::decode_slot;

/// Status of an owned virtual process.
#[derive(Clone, PartialEq, Eq, Debug)]
enum VpStat {
    Active,
    /// Frozen on a pending `c&s(a → b)`, suspension counter `seq`.
    Suspended {
        seq: u64,
    },
    Decided,
}

/// Local state of one rich emulator.
#[derive(Clone, Debug)]
pub struct RichState<S> {
    emu: usize,
    label: Label,
    vps: Vec<(usize, S, VpStat)>,
    records: Vec<RichRecord>,
    susp_seq: u64,
    node_seq: u64,
    phase: RichPhase,
    pending_decision: Option<Value>,
    /// Diagnostic: why the last think step made no progress.
    pub last_stall: Option<String>,
    /// Hash of the last scanned view that led to a stall (fast path:
    /// an unchanged view cannot unstall the emulator, so the expensive
    /// re-merge is skipped).
    stalled_view: Option<u64>,
}

#[derive(Clone, Debug)]
enum RichPhase {
    Scan,
    Publish,
    Decide(Value),
}

/// The merged view of all emulators' published records.
struct MergedView {
    tree: HistoryTree,
    /// All suspensions: (owner, record).
    suspensions: Vec<(usize, SuspInfo)>,
    records: Vec<Vec<RichRecord>>,
}

#[derive(Clone, Debug)]
struct SuspInfo {
    a: Sym,
    b: Sym,
    label: Label,
    hist_pos: usize,
    released: bool,
}

/// The `m`-emulator rich emulation over a compare&swap algorithm `A`.
#[derive(Clone, Debug)]
pub struct RichEmulation<A: Protocol> {
    a: A,
    m: usize,
    cas_obj: ObjectId,
    k: usize,
    owner: Vec<usize>,
    config: RichConfig,
    tel: RichTel,
}

impl<A: Protocol> RichEmulation<A> {
    const SLOTS: ObjectId = ObjectId(0);

    /// Wraps `a` for rich emulation by `m` emulators.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not one-compare&swap-plus-read/write, or `m`
    /// is out of range.
    pub fn new(a: A, m: usize, config: RichConfig) -> RichEmulation<A> {
        let phi = a.processes();
        assert!(
            m >= 1 && m <= phi,
            "need 1 <= m <= Φ (Φ = {phi}), got m = {m}"
        );
        let layout = a.layout();
        let mut cas = None;
        for (id, init) in layout.iter() {
            match init {
                ObjectInit::CasK { k } => {
                    assert!(cas.is_none(), "A must use exactly one compare&swap-(k)");
                    cas = Some((id, *k));
                }
                ObjectInit::Register(_) | ObjectInit::Snapshot { .. } => {}
                other => panic!("A uses non-read/write object {other:?}"),
            }
        }
        let (cas_obj, k) = cas.expect("A must use a compare&swap-(k)");
        let owner = (0..phi).map(|vp| vp % m).collect();
        RichEmulation {
            a,
            m,
            cas_obj,
            k,
            owner,
            config,
            tel: RichTel::new(&Registry::default()),
        }
    }

    /// Redirects this emulation's `rich.*` telemetry into `registry`
    /// (the default is the global `BSO_TELEMETRY`-gated registry).
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        let trace = self.tel.trace.clone();
        self.tel = RichTel::new(registry);
        self.tel.trace = trace;
        self
    }

    /// Redirects this emulation's structured trace events into `sink`
    /// (the default is the global `BSO_TRACE`-gated sink).
    #[must_use]
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.tel.trace = sink.worker("rich");
        self
    }

    /// The emulated algorithm.
    pub fn algorithm(&self) -> &A {
        &self.a
    }

    /// The configuration in force.
    pub fn config(&self) -> &RichConfig {
        &self.config
    }

    /// Builds the merged view from a snapshot of all slots.
    fn merge(&self, st: &RichState<A::State>, view: &Value) -> MergedView {
        let slots = view.as_seq().expect("snapshot view");
        let mut records: Vec<Vec<RichRecord>> = slots.iter().map(decode_slot).collect();
        records[st.emu] = st.records.clone();

        // Tree: activations first, then vertices until fixpoint (a
        // vertex's parent may be another emulator's vertex).
        let tree = build_tree(&records);

        // Suspensions with release flags.
        let mut suspensions = Vec::new();
        for (o, recs) in records.iter().enumerate() {
            let released: Vec<u64> = recs
                .iter()
                .filter_map(|r| match r {
                    RichRecord::Release { seq } => Some(*seq),
                    _ => None,
                })
                .collect();
            for r in recs {
                if let RichRecord::Suspend {
                    vp: _,
                    a,
                    b,
                    label,
                    hist_pos,
                    seq,
                } = r
                {
                    suspensions.push((
                        o,
                        SuspInfo {
                            a: *a,
                            b: *b,
                            label: label.clone(),
                            hist_pos: *hist_pos,
                            released: released.contains(seq),
                        },
                    ));
                }
            }
        }
        MergedView {
            tree,
            suspensions,
            records,
        }
    }

    /// Emulates a read of `A`'s read/write object against
    /// label-filtered records (the paper's tagged register lists).
    fn read_rw(
        layout_init: &ObjectInit,
        obj: ObjectId,
        label: &Label,
        records: &[Vec<RichRecord>],
        slot: Option<usize>,
    ) -> Value {
        let compat =
            |l: &Label| l.len() <= label.len() && label.starts_with(l) || l.starts_with(label);
        let mut latest: Option<&Value> = None;
        for recs in records {
            for r in recs {
                if let RichRecord::VOp {
                    vp, op, label: l, ..
                } = r
                {
                    if op.obj != obj || !compat(l) {
                        continue;
                    }
                    let written = match (&op.kind, slot) {
                        (OpKind::Write(v), None) => Some(v),
                        (OpKind::SnapshotUpdate(v), Some(s)) if *vp == s => Some(v),
                        _ => None,
                    };
                    if let Some(v) = written {
                        latest = Some(v);
                    }
                }
            }
        }
        match latest {
            Some(v) => v.clone(),
            None => match (layout_init, slot) {
                (ObjectInit::Register(v0), None) => v0.clone(),
                _ => Value::Nil,
            },
        }
    }

    /// One thinking step. `Ok(true)` = progress (publish), `Ok(false)`
    /// = stall (re-scan), `Err(v)` = the emulator decided `v`.
    fn think(&self, st: &mut RichState<A::State>, view: &Value) -> Result<bool, Value> {
        self.tel.think.inc();
        let merged = self.merge(st, view);
        st.last_stall = None;

        // Label extension (ComputeHistory line 1).
        st.label = merged.tree.extend_to_leaf(&st.label);
        let h = merged.tree.compute_history(&st.label);
        let cs = *h.last().expect("history starts at ⊥");
        let transitions = h.len() - 1;

        // Decisions first.
        for i in 0..st.vps.len() {
            let (vp, state, stat) = &st.vps[i];
            if matches!(stat, VpStat::Active) {
                if let Action::Decide(v) = self.a.next_action(state) {
                    let vp = *vp;
                    let v = v.clone();
                    st.vps[i].2 = VpStat::Decided;
                    st.records.push(RichRecord::Decide {
                        vp,
                        value: v.clone(),
                        label: st.label.clone(),
                    });
                    return Err(v);
                }
            }
        }

        // Suspension step (Fig. 3 lines 4–5).
        let mut by_edge: BTreeMap<(Sym, Sym), Vec<usize>> = BTreeMap::new();
        for (i, (_, state, stat)) in st.vps.iter().enumerate() {
            if !matches!(stat, VpStat::Active) {
                continue;
            }
            if let Action::Invoke(op) = self.a.next_action(state) {
                if op.obj == self.cas_obj {
                    if let OpKind::Cas { expect, new } = &op.kind {
                        let a = expect.as_sym().expect("cas of symbols");
                        let b = new.as_sym().expect("cas of symbols");
                        by_edge.entry((a, b)).or_default().push(i);
                    }
                }
            }
        }
        let mut suspended_now = false;
        for ((a, b), idxs) in &by_edge {
            if idxs.len() < self.config.suspend_quota {
                continue;
            }
            let mine_unreleased = merged
                .suspensions
                .iter()
                .any(|(o, s)| *o == st.emu && s.a == *a && s.b == *b && !s.released);
            if mine_unreleased {
                continue;
            }
            for &i in idxs.iter().take(self.config.suspend_quota) {
                let seq = st.susp_seq;
                st.susp_seq += 1;
                st.vps[i].2 = VpStat::Suspended { seq };
                st.records.push(RichRecord::Suspend {
                    vp: st.vps[i].0,
                    a: *a,
                    b: *b,
                    label: st.label.clone(),
                    hist_pos: transitions,
                    seq,
                });
                self.tel.suspensions.inc();
                if self.tel.trace.is_enabled() {
                    self.tel.trace.instant_with(
                        "rich.suspend",
                        [
                            ("emu", TraceArg::from(st.emu)),
                            ("vp", TraceArg::from(st.vps[i].0)),
                            ("a", TraceArg::from(u64::from(a.code()))),
                            ("b", TraceArg::from(u64::from(b.code()))),
                        ],
                    );
                }
                suspended_now = true;
            }
        }

        // Simple op (Fig. 3 lines 6–7).
        let layout = self.a.layout();
        for i in 0..st.vps.len() {
            let (vp, state, stat) = &st.vps[i];
            if !matches!(stat, VpStat::Active) {
                continue;
            }
            let op = match self.a.next_action(state) {
                Action::Invoke(op) => op,
                Action::Decide(_) => unreachable!("handled above"),
            };
            let resp = if op.obj == self.cas_obj {
                match &op.kind {
                    OpKind::Read => Value::Sym(cs),
                    OpKind::Cas { expect, .. } if *expect != Value::Sym(cs) => {
                        Value::Sym(cs) // failing compare&swap
                    }
                    _ => continue, // potential success: not simple
                }
            } else {
                let init = &layout.objects()[op.obj.0];
                match &op.kind {
                    OpKind::Read => Self::read_rw(init, op.obj, &st.label, &merged.records, None),
                    OpKind::SnapshotScan => {
                        let n = match init {
                            ObjectInit::Snapshot { slots } => *slots,
                            other => panic!("scan of non-snapshot {other:?}"),
                        };
                        Value::Seq(
                            (0..n)
                                .map(|s| {
                                    Self::read_rw(init, op.obj, &st.label, &merged.records, Some(s))
                                })
                                .collect(),
                        )
                    }
                    OpKind::Write(_) | OpKind::SnapshotUpdate(_) => Value::Nil,
                    other => panic!("unsupported read/write op {other}"),
                }
            };
            let vp = *vp;
            st.records.push(RichRecord::VOp {
                vp,
                op,
                resp: resp.clone(),
                label: st.label.clone(),
            });
            self.a.on_response(&mut st.vps[i].1, resp);
            return Ok(true);
        }

        // CanRebalance (Fig. 5).
        if self.try_rebalance(st, &merged, &h)? {
            return Ok(true);
        }

        // UpdateC&S (Fig. 6).
        if self.try_update(st, &merged, &h, cs)? {
            return Ok(true);
        }

        if suspended_now {
            return Ok(true); // publish the suspensions at least
        }
        self.tel.stalls.inc();
        if self.tel.trace.is_enabled() {
            self.tel
                .trace
                .instant_with("rich.stall", [("emu", TraceArg::from(st.emu))]);
        }
        st.last_stall = Some(format!(
            "emulator {}: no simple op, no release possible, no update possible \
             (label {:?}, cs {cs}, {} active vps)",
            st.emu,
            st.label,
            st.vps
                .iter()
                .filter(|v| matches!(v.2, VpStat::Active))
                .count()
        ));
        Ok(false)
    }

    /// Figure 5. Returns `Ok(true)` if a suspended v-process was
    /// released.
    fn try_rebalance(
        &self,
        st: &mut RichState<A::State>,
        merged: &MergedView,
        h: &[Sym],
    ) -> Result<bool, Value> {
        self.tel.rebalance_attempts.inc();
        let compat = |l: &Label| st.label.starts_with(l) || l.starts_with(&st.label);
        // Released consumption and holder counts per edge
        // (label-compatible). `holders` = distinct emulators with
        // unreleased suspensions on the edge: the number of releases
        // that can race unseen, so the *effective* margin is
        // max(configured, holders) — the paper's `m` is exactly the
        // worst case of `holders`.
        let mut released: BTreeMap<(Sym, Sym), usize> = BTreeMap::new();
        let mut holder_set: BTreeMap<(Sym, Sym), Vec<usize>> = BTreeMap::new();
        for (o, s) in &merged.suspensions {
            if !compat(&s.label) {
                continue;
            }
            if s.released {
                *released.entry((s.a, s.b)).or_default() += 1;
            } else {
                let hs = holder_set.entry((s.a, s.b)).or_default();
                if !hs.contains(o) {
                    hs.push(*o);
                }
            }
        }
        // My suspended, unreleased v-processes in suspension order.
        let mut mine: Vec<usize> = (0..st.vps.len())
            .filter(|&i| matches!(st.vps[i].2, VpStat::Suspended { .. }))
            .collect();
        mine.sort_by_key(|&i| match st.vps[i].2 {
            VpStat::Suspended { seq } => seq,
            _ => unreachable!(),
        });
        for i in mine {
            let seq = match st.vps[i].2 {
                VpStat::Suspended { seq } => seq,
                _ => unreachable!(),
            };
            // The own records are authoritative: a suspension made
            // earlier in this very think step is not yet in `merged`.
            let info = st
                .records
                .iter()
                .find_map(|r| match r {
                    RichRecord::Suspend {
                        a,
                        b,
                        label,
                        hist_pos,
                        seq: s,
                        ..
                    } if *s == seq => Some(SuspInfo {
                        a: *a,
                        b: *b,
                        label: label.clone(),
                        hist_pos: *hist_pos,
                        released: false,
                    }),
                    _ => None,
                })
                .expect("own suspension must be recorded");
            // Transitions (a → b) at positions ≥ the suspension point.
            let after = h
                .windows(2)
                .enumerate()
                .filter(|(p, w)| *p >= info.hist_pos && w[0] == info.a && w[1] == info.b)
                .count();
            let consumed = released.get(&(info.a, info.b)).copied().unwrap_or(0);
            let holders = holder_set
                .get(&(info.a, info.b))
                .map_or(1, |hs| hs.len().max(1));
            let margin = self.config.release_margin.max(holders);
            if after < consumed + margin {
                continue;
            }
            // Condition (3): a replacement active v-process on the
            // same edge (required by the paper's counting; optional in
            // demo configurations).
            let replacement = (0..st.vps.len()).find(|&j| {
                matches!(st.vps[j].2, VpStat::Active)
                    && match self.a.next_action(&st.vps[j].1) {
                        Action::Invoke(op) => {
                            op.obj == self.cas_obj
                                && matches!(
                                    &op.kind,
                                    OpKind::Cas { expect, new }
                                        if *expect == Value::Sym(info.a)
                                            && *new == Value::Sym(info.b)
                                )
                        }
                        _ => false,
                    }
            });
            if self.config.require_replacement && replacement.is_none() {
                continue;
            }
            if let Some(j) = replacement {
                // Suspend the replacement…
                let rseq = st.susp_seq;
                st.susp_seq += 1;
                st.vps[j].2 = VpStat::Suspended { seq: rseq };
                st.records.push(RichRecord::Suspend {
                    vp: st.vps[j].0,
                    a: info.a,
                    b: info.b,
                    label: st.label.clone(),
                    hist_pos: h.len() - 1,
                    seq: rseq,
                });
                self.tel.suspensions.inc();
                if self.tel.trace.is_enabled() {
                    self.tel.trace.instant_with(
                        "rich.suspend",
                        [
                            ("emu", TraceArg::from(st.emu)),
                            ("vp", TraceArg::from(st.vps[j].0)),
                            ("a", TraceArg::from(u64::from(info.a.code()))),
                            ("b", TraceArg::from(u64::from(info.b.code()))),
                        ],
                    );
                }
            }
            // …release the matched one with a success response…
            st.records.push(RichRecord::Release { seq });
            self.tel.releases.inc();
            if self.tel.trace.is_enabled() {
                self.tel.trace.instant_with(
                    "rich.release",
                    [
                        ("emu", TraceArg::from(st.emu)),
                        ("vp", TraceArg::from(st.vps[i].0)),
                    ],
                );
            }
            let op = match self.a.next_action(&st.vps[i].1) {
                Action::Invoke(op) => op,
                Action::Decide(_) => unreachable!("suspended vps are pre-cas"),
            };
            let resp = Value::Sym(info.a);
            st.records.push(RichRecord::VOp {
                vp: st.vps[i].0,
                op,
                resp: resp.clone(),
                label: st.label.clone(),
            });
            st.vps[i].2 = VpStat::Active;
            self.a.on_response(&mut st.vps[i].1, resp);
            return Ok(true);
        }
        Ok(false)
    }

    /// Figure 6. Returns `Ok(true)` if the history was extended.
    fn try_update(
        &self,
        st: &mut RichState<A::State>,
        merged: &MergedView,
        h: &[Sym],
        cs: Sym,
    ) -> Result<bool, Value> {
        // Candidate targets x: the most popular pending c&s(cs → x) of
        // my active v-processes (Fig. 6 line 5), falling back to the
        // edges my own suspended v-processes hold out of cs (needed
        // when an algorithm has so few v-processes per edge that all
        // of them got suspended — e.g. CasOnlyElection has exactly one
        // per edge).
        let compat = |l: &Label| st.label.starts_with(l) || l.starts_with(&st.label);
        let mut pop: BTreeMap<Sym, usize> = BTreeMap::new();
        for (_, state, stat) in &st.vps {
            if !matches!(stat, VpStat::Active) {
                continue;
            }
            if let Action::Invoke(op) = self.a.next_action(state) {
                if op.obj == self.cas_obj {
                    if let OpKind::Cas { expect, new } = &op.kind {
                        if *expect == Value::Sym(cs) {
                            *pop.entry(new.as_sym().expect("symbol")).or_default() += 1;
                        }
                    }
                }
            }
        }
        let mut candidates: Vec<Sym> = {
            let mut v: Vec<(usize, Sym)> = pop.into_iter().map(|(s, c)| (c, s)).collect();
            v.sort_by(|a, b| b.cmp(a));
            v.into_iter().map(|(_, s)| s).collect()
        };
        for (o, s) in &merged.suspensions {
            if *o == st.emu && !s.released && s.a == cs && !candidates.contains(&s.b) {
                candidates.push(s.b);
            }
        }
        // A history transition cs → x must be payable by a suspended
        // v-process (otherwise the constructed run could never contain
        // the success that moves the register): keep only backed
        // candidates.
        let backing = |x: Sym| {
            merged
                .suspensions
                .iter()
                .any(|(_, s)| !s.released && s.a == cs && s.b == x && compat(&s.label))
        };
        // Lazy just-in-time suspension (demo configurations): if the
        // preferred target is unbacked but one of my own active
        // v-processes is pending on exactly that edge, suspend it now —
        // the paper's eager quota banks suspensions in advance for the
        // same purpose, at a much higher Φ cost.
        if self.config.lazy_suspend {
            if let Some(&x) = candidates.iter().find(|&&x| !backing(x)) {
                if let Some(i) = (0..st.vps.len()).find(|&i| {
                    matches!(st.vps[i].2, VpStat::Active)
                        && match self.a.next_action(&st.vps[i].1) {
                            Action::Invoke(op) => {
                                op.obj == self.cas_obj
                                    && matches!(
                                        &op.kind,
                                        OpKind::Cas { expect, new }
                                            if *expect == Value::Sym(cs)
                                                && *new == Value::Sym(x)
                                    )
                            }
                            _ => false,
                        }
                }) {
                    let seq = st.susp_seq;
                    st.susp_seq += 1;
                    st.vps[i].2 = VpStat::Suspended { seq };
                    st.records.push(RichRecord::Suspend {
                        vp: st.vps[i].0,
                        a: cs,
                        b: x,
                        label: st.label.clone(),
                        hist_pos: h.len() - 1,
                        seq,
                    });
                    self.tel.suspensions.inc();
                }
            }
        }
        let my_fresh_suspensions: Vec<(Sym, Sym)> = st
            .records
            .iter()
            .filter_map(|r| match r {
                RichRecord::Suspend { a, b, .. } => Some((*a, *b)),
                _ => None,
            })
            .collect();
        let backed = |x: Sym| backing(x) || my_fresh_suspensions.contains(&(cs, x));
        candidates.retain(|&x| backed(x));
        let Some(&x) = candidates.first() else {
            return Ok(false);
        };
        let mut suspended = Vec::new();
        let mut released = Vec::new();
        for (_, s) in &merged.suspensions {
            if !compat(&s.label) {
                continue;
            }
            if s.released {
                released.push((s.a, s.b));
            } else {
                suspended.push((s.a, s.b));
            }
        }
        let excess = ExcessGraph::compute(self.k, &suspended, &released, h);

        let tree = merged.tree.tree(&st.label).expect("own label active");
        let mut parent = tree
            .rightmost_vertex_of(cs)
            .expect("cs lies on the rightmost spine");
        loop {
            let depth = tree.depth(parent);
            let threshold = attach_threshold(depth, self.config.threshold_base);
            let psym = tree.node(parent).sym;
            // Attaching x under a vertex carrying the same symbol would
            // need a nonempty self-roundtrip; we conservatively walk
            // past such ancestors instead.
            let width = if psym == x {
                0
            } else {
                excess.cycle_width(psym, x).unwrap_or(0).max(0) as u128
            };
            if width > 0 {
                self.tel
                    .cycle_width
                    .record(width.min(u128::from(u64::MAX)) as u64);
            }
            if width >= threshold && width > 0 {
                // Attach x under `parent` with the cycle's two halves.
                let level = width.min(i64::MAX as u128) as i64;
                let from_parent = path_interior(&excess, psym, x, level);
                let to_parent = path_interior(&excess, x, psym, level);
                let seq = st.node_seq;
                st.node_seq += 1;
                let parent_ref = node_ref(tree, parent, st.emu);
                st.records.push(RichRecord::TreeNode {
                    label: st.label.clone(),
                    parent: parent_ref,
                    sym: x,
                    from_parent,
                    to_parent,
                    seq,
                });
                self.fail_actives(st, x);
                return Ok(true);
            }
            match tree.parent(parent) {
                Some(p) => parent = p,
                None => {
                    // At the root: x must be a fresh first value —
                    // activate the deeper label (group split).
                    let first_occurrences: Vec<Sym> = {
                        let mut seen = vec![Sym::BOTTOM];
                        for &s in h {
                            if !seen.contains(&s) {
                                seen.push(s);
                            }
                        }
                        seen
                    };
                    if first_occurrences.contains(&x) {
                        // Reused value without enough excess: stall.
                        return Ok(false);
                    }
                    st.records.push(RichRecord::Activate {
                        label: {
                            let mut l = st.label.clone();
                            l.push(x);
                            l
                        },
                    });
                    let mut l = st.label.clone();
                    l.push(x);
                    st.label = l;
                    if self.tel.trace.is_enabled() {
                        self.tel.trace.instant_with(
                            "rich.group_split",
                            [
                                ("emu", TraceArg::from(st.emu)),
                                ("sym", TraceArg::from(u64::from(x.code()))),
                                ("depth", TraceArg::from(st.label.len())),
                            ],
                        );
                    }
                    self.fail_actives(st, x);
                    return Ok(true);
                }
            }
        }
    }

    /// Figure 6 line 15: fail every active v-process whose pending
    /// compare&swap now misses the new current value `x`.
    fn fail_actives(&self, st: &mut RichState<A::State>, x: Sym) {
        for i in 0..st.vps.len() {
            if !matches!(st.vps[i].2, VpStat::Active) {
                continue;
            }
            if let Action::Invoke(op) = self.a.next_action(&st.vps[i].1) {
                if op.obj == self.cas_obj {
                    if let OpKind::Cas { expect, .. } = &op.kind {
                        if *expect != Value::Sym(x) {
                            let resp = Value::Sym(x);
                            st.records.push(RichRecord::VOp {
                                vp: st.vps[i].0,
                                op: op.clone(),
                                resp: resp.clone(),
                                label: st.label.clone(),
                            });
                            self.a.on_response(&mut st.vps[i].1, resp);
                        }
                    }
                }
            }
        }
    }
}

fn ensure_active(tree: &mut HistoryTree, label: &Label) {
    for i in 0..label.len() {
        let parent: Label = label[..i].to_vec();
        if tree.tree(&label[..=i].to_vec()).is_none() {
            tree.activate(&parent, label[i]);
        }
    }
}

/// Shortest path interior (endpoints excluded) from `from` to `to` in
/// `G_{≥level}`.
fn path_interior(g: &ExcessGraph, from: Sym, to: Sym, level: i64) -> Vec<Sym> {
    let k = g.k();
    let mut prev: Vec<Option<Sym>> = vec![None; k];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    prev[from.code() as usize] = Some(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            break;
        }
        for c in 0..k as u8 {
            let u = Sym::from_code(c);
            if g.excess(v, u) >= level && prev[c as usize].is_none() && u != from {
                prev[c as usize] = Some(v);
                queue.push_back(u);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let p = prev[cur.code() as usize].expect("path must exist in the cycle");
        if p != from {
            path.push(p);
        }
        cur = p;
    }
    path.reverse();
    path
}

/// Resolves a vertex to its published reference.
fn node_ref(
    tree: &crate::tree::SmallTree,
    id: crate::tree::NodeId,
    _me: usize,
) -> Option<(usize, u64)> {
    if id == tree.root() {
        None
    } else {
        let n = tree.node(id);
        Some((n.owner, n.seq))
    }
}

impl<A: Protocol> Protocol for RichEmulation<A> {
    type State = RichState<A::State>;

    fn processes(&self) -> usize {
        self.m
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Snapshot { slots: self.m });
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> RichState<A::State> {
        let vps = (0..self.a.processes())
            .filter(|vp| self.owner[*vp] == pid)
            .map(|vp| (vp, self.a.init(vp, &Value::Pid(vp)), VpStat::Active))
            .collect();
        RichState {
            emu: pid,
            label: Vec::new(),
            vps,
            records: Vec::new(),
            susp_seq: 0,
            node_seq: 0,
            phase: RichPhase::Scan,
            pending_decision: None,
            last_stall: None,
            stalled_view: None,
        }
    }

    fn next_action(&self, state: &RichState<A::State>) -> Action {
        match &state.phase {
            RichPhase::Scan => Action::Invoke(Op::new(Self::SLOTS, OpKind::SnapshotScan)),
            RichPhase::Publish => Action::Invoke(Op::new(
                Self::SLOTS,
                OpKind::SnapshotUpdate(encode::encode_slot(&state.records)),
            )),
            RichPhase::Decide(v) => Action::Decide(v.clone()),
        }
    }

    fn on_response(&self, state: &mut RichState<A::State>, resp: Value) {
        match &state.phase {
            RichPhase::Scan => {
                let view_hash = {
                    use std::hash::{DefaultHasher, Hash, Hasher};
                    let mut h = DefaultHasher::new();
                    resp.hash(&mut h);
                    h.finish()
                };
                if state.stalled_view == Some(view_hash) {
                    // Unchanged world, same stall: spin cheaply.
                    return;
                }
                match self.think(state, &resp) {
                    Err(decision) => {
                        state.pending_decision = Some(decision);
                        state.stalled_view = None;
                        state.phase = RichPhase::Publish;
                    }
                    Ok(true) => {
                        state.stalled_view = None;
                        state.phase = RichPhase::Publish;
                    }
                    Ok(false) => {
                        state.stalled_view = Some(view_hash);
                        state.phase = RichPhase::Scan;
                    }
                }
            }
            RichPhase::Publish => {
                state.phase = match state.pending_decision.take() {
                    Some(v) => RichPhase::Decide(v),
                    None => RichPhase::Scan,
                };
            }
            RichPhase::Decide(_) => {}
        }
    }
}

/// Outcome of driving a rich emulation to quiescence (or stall).
#[derive(Clone, Debug)]
pub struct RichReport {
    /// The raw simulation result.
    pub result: bso_sim::RunResult,
    /// Final published records per emulator.
    pub slots: Vec<Vec<RichRecord>>,
    /// Whether the run stalled (step limit before all emulators
    /// decided) — the paper's "not enough virtual processes" regime.
    pub stalled: bool,
    a_layout: Layout,
    cas_obj: ObjectId,
    phi: usize,
    tel: RichTel,
}

impl RichReport {
    /// The distinct labels among all published records.
    pub fn labels(&self) -> Vec<Label> {
        let mut out: Vec<Label> = self
            .slots
            .iter()
            .flatten()
            .filter_map(|r| match r {
                RichRecord::VOp { label, .. }
                | RichRecord::Decide { label, .. }
                | RichRecord::Suspend { label, .. }
                | RichRecord::TreeNode { label, .. } => Some(label.clone()),
                RichRecord::Activate { label } => Some(label.clone()),
                RichRecord::Release { .. } => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The maximal labels (no other label extends them).
    pub fn maximal_labels(&self) -> Vec<Label> {
        let labels = self.labels();
        labels
            .iter()
            .filter(|l| !labels.iter().any(|o| o.len() > l.len() && o.starts_with(l)))
            .cloned()
            .collect()
    }

    /// Validates every maximal label's constructed run: is there an
    /// interleaving of the per-v-process operation sequences matching
    /// `A`'s sequential object specifications (run legality, the
    /// executable Lemma 1.2 — without real-time constraints, see the
    /// module docs)?
    ///
    /// As in the paper's proof, history transitions whose successful
    /// compare&swap was never *released* are accounted to suspended
    /// v-processes: the pending operation of a (suspension-ordered)
    /// suspended process is **mapped into the run** as its final
    /// operation — frozen in the emulation, present in the constructed
    /// run.
    ///
    /// # Errors
    ///
    /// The first label whose run is not legal (including unbacked
    /// history transitions).
    pub fn validate(&self) -> Result<usize, String> {
        let tree = build_tree(&self.slots);
        let mut checked = 0;
        for label in self.maximal_labels() {
            let compat = |l: &Label| label.starts_with(l.as_slice());
            let h = tree.compute_history(&label);
            let mut by_vp: BTreeMap<usize, Vec<(usize, Op, Value)>> = BTreeMap::new();
            // Successful compare&swaps already present (releases).
            let mut present: BTreeMap<(Sym, Sym), usize> = BTreeMap::new();
            for recs in &self.slots {
                for r in recs {
                    if let RichRecord::VOp {
                        vp,
                        op,
                        resp,
                        label: l,
                    } = r
                    {
                        if !compat(l) {
                            continue;
                        }
                        if let OpKind::Cas { expect, new } = &op.kind {
                            if resp == expect {
                                let a = expect.as_sym().expect("symbol");
                                let b = new.as_sym().expect("symbol");
                                *present.entry((a, b)).or_default() += 1;
                            }
                        }
                        by_vp
                            .entry(*vp)
                            .or_default()
                            .push((*vp, op.clone(), resp.clone()));
                    }
                }
            }
            // Map pending suspended operations onto unmatched
            // transitions, earliest suspension first.
            let mut trans: BTreeMap<(Sym, Sym), usize> = BTreeMap::new();
            for w in h.windows(2) {
                *trans.entry((w[0], w[1])).or_default() += 1;
            }
            let released: Vec<(usize, u64)> = self
                .slots
                .iter()
                .enumerate()
                .flat_map(|(o, recs)| {
                    recs.iter().filter_map(move |r| match r {
                        RichRecord::Release { seq } => Some((o, *seq)),
                        _ => None,
                    })
                })
                .collect();
            let mut suspensions: Vec<(usize, usize, Sym, Sym, &Label, usize, u64)> = self
                .slots
                .iter()
                .enumerate()
                .flat_map(|(o, recs)| {
                    recs.iter().filter_map(move |r| match r {
                        RichRecord::Suspend {
                            vp,
                            a,
                            b,
                            label,
                            hist_pos,
                            seq,
                        } => Some((o, *vp, *a, *b, label, *hist_pos, *seq)),
                        _ => None,
                    })
                })
                .collect();
            suspensions.sort_by_key(|&(o, vp, _, _, _, hist_pos, seq)| (hist_pos, o, vp, seq));
            let mut used: Vec<(usize, u64)> = Vec::new();
            for (&(a, b), &t) in &trans {
                let have = present.get(&(a, b)).copied().unwrap_or(0);
                if t <= have {
                    continue;
                }
                let mut needed = t - have;
                for &(o, vp, sa, sb, l, _, seq) in &suspensions {
                    if needed == 0 {
                        break;
                    }
                    if sa != a
                        || sb != b
                        || !compat(l)
                        || released.contains(&(o, seq))
                        || used.contains(&(o, seq))
                    {
                        continue;
                    }
                    // Map the frozen pending success into the run.
                    used.push((o, seq));
                    by_vp.entry(vp).or_default().push((
                        vp,
                        Op::cas(self.cas_obj, Value::Sym(a), Value::Sym(b)),
                        Value::Sym(a),
                    ));
                    needed -= 1;
                }
                if needed > 0 {
                    return Err(format!(
                        "label {label:?}: {needed} unbacked transition(s) {a}→{b} — \
                         the history is not payable by suspended v-processes"
                    ));
                }
            }
            let ops: Vec<Vec<(usize, Op, Value)>> = by_vp.into_values().collect();
            let label_ops = ops.iter().map(Vec::len).sum::<usize>();
            self.tel.label_run_len.record(label_ops as u64);
            checked += label_ops;
            bso_sim::linearizability::check_run_legality(&self.a_layout, &ops)
                .map_err(|e| format!("label {label:?} (history {h:?}): {e}"))?;
            let _ = self.phi;
        }
        Ok(checked)
    }

    /// The decisions recorded per maximal label (for election targets:
    /// these must agree within each label).
    pub fn decisions_by_label(&self) -> Vec<(Label, Vec<Value>)> {
        self.maximal_labels()
            .into_iter()
            .map(|label| {
                let vals = self
                    .slots
                    .iter()
                    .flatten()
                    .filter_map(|r| match r {
                        RichRecord::Decide {
                            value, label: l, ..
                        } if label.starts_with(l.as_slice()) => Some(value.clone()),
                        _ => None,
                    })
                    .collect();
                (label, vals)
            })
            .collect()
    }
}

/// Drives a [`RichEmulation`] under a scheduler; a step-limit hit or a
/// global no-publish round (every enabled emulator scanning without
/// progress) is reported as a stall, not an error.
///
/// # Errors
///
/// Propagates non-stall [`RunError`]s (illegal operations).
pub fn run_rich<A: Protocol>(
    emu: &RichEmulation<A>,
    sched: &mut dyn Scheduler,
    max_steps: usize,
) -> Result<RichReport, RunError> {
    run_rich_with_plan(emu, sched, max_steps, bso_sim::CrashPlan::none())
}

/// Like [`run_rich`], but with a fail-stop adversary: emulators named
/// in `plan` crash after their planned number of steps. A crash counts
/// as progress for stall detection (the world changed — an emulator
/// left it), and everything the victim published before dying stays
/// readable, so the surviving emulators' branches still validate.
///
/// # Errors
///
/// Propagates non-stall [`RunError`]s (illegal operations).
pub fn run_rich_with_plan<A: Protocol>(
    emu: &RichEmulation<A>,
    sched: &mut dyn Scheduler,
    max_steps: usize,
    plan: bso_sim::CrashPlan,
) -> Result<RichReport, RunError> {
    let inputs: Vec<Value> = (0..emu.processes()).map(Value::Pid).collect();
    let mut sim = Simulation::new(emu, &inputs).with_crash_plan(plan);
    assert!(sim.memory().is_read_write_only());
    // Manual drive with stall detection: if 4·m consecutive steps pass
    // without any publish or decision, every emulator has re-scanned an
    // unchanged world — nothing will ever change again.
    let mut taken = 0usize;
    let mut quiet = 0usize;
    let mut stalled = false;
    loop {
        let enabled = sim.enabled();
        if enabled.is_empty() {
            break;
        }
        if taken >= max_steps || quiet > 4 * emu.processes() + 4 {
            stalled = true;
            break;
        }
        let pid = sched.pick(&enabled);
        let progressed = match sim.step(pid)? {
            bso_sim::EventKind::Applied { op, .. } => {
                matches!(op.kind, OpKind::SnapshotUpdate(_))
            }
            bso_sim::EventKind::Decided(_) | bso_sim::EventKind::Crashed => true,
        };
        taken += 1;
        if progressed {
            quiet = 0;
        } else {
            quiet += 1;
        }
    }
    let result = sim.result();
    let slots = {
        let mut slots = vec![Vec::new(); emu.processes()];
        for e in result.trace.events() {
            if let bso_sim::EventKind::Applied { op, .. } = &e.kind {
                if let OpKind::SnapshotUpdate(v) = &op.kind {
                    slots[e.pid] = decode_slot(v);
                }
            }
        }
        slots
    };
    Ok(RichReport {
        result,
        slots,
        stalled,
        a_layout: emu.algorithm().layout(),
        cas_obj: emu.cas_obj,
        phi: emu.algorithm().processes(),
        tel: emu.tel.clone(),
    })
}

/// Rebuilds the merged history tree from published records (used by
/// the validator and available for inspection).
pub fn build_tree(slots: &[Vec<RichRecord>]) -> HistoryTree {
    let mut tree = HistoryTree::new();
    for recs in slots {
        for r in recs {
            if let RichRecord::Activate { label } = r {
                let parent: Label = label[..label.len() - 1].to_vec();
                ensure_active(&mut tree, &parent);
                tree.activate(&parent, *label.last().expect("nonempty label"));
            }
        }
    }
    let mut ids: BTreeMap<(Vec<Sym>, usize, u64), crate::tree::NodeId> = BTreeMap::new();
    let mut pending: Vec<(usize, &RichRecord)> = slots
        .iter()
        .enumerate()
        .flat_map(|(o, recs)| {
            recs.iter()
                .filter(|r| matches!(r, RichRecord::TreeNode { .. }))
                .map(move |r| (o, r))
        })
        .collect();
    pending.sort_by_key(|(o, r)| match r {
        RichRecord::TreeNode { seq, .. } => (*o, *seq),
        _ => unreachable!(),
    });
    let mut progress = true;
    while progress && !pending.is_empty() {
        progress = false;
        pending.retain(|(o, r)| {
            let RichRecord::TreeNode {
                label,
                parent,
                sym,
                from_parent,
                to_parent,
                seq,
            } = r
            else {
                unreachable!()
            };
            ensure_active(&mut tree, label);
            let parent_id = match parent {
                None => Some(tree.tree(label).expect("active").root()),
                Some((po, ps)) => ids.get(&(label.clone(), *po, *ps)).copied(),
            };
            match parent_id {
                None => true,
                Some(pid) => {
                    let t = tree.tree_mut(label).expect("active");
                    let id = t.attach(pid, *sym, from_parent.clone(), to_parent.clone(), *o, *seq);
                    ids.insert((label.clone(), *o, *seq), id);
                    progress = true;
                    false
                }
            }
        });
    }
    assert!(
        pending.is_empty(),
        "orphaned tree vertices in published records"
    );
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingpong::PingPong;

    fn s(i: u8) -> Sym {
        Sym::new(i)
    }

    #[test]
    fn config_constructors() {
        let p = RichConfig::paper(3, 4);
        assert_eq!(p.suspend_quota, 48);
        assert_eq!(p.release_margin, 3);
        assert_eq!(p.threshold_base, 3);
        assert!(p.require_replacement && !p.lazy_suspend);
        let d = RichConfig::demo();
        assert!(d.lazy_suspend && !d.require_replacement);
        assert_eq!(d.release_margin, 0);
    }

    #[test]
    fn path_interior_follows_excess_edges() {
        // ⊥ → 0 → 1 with plenty of excess everywhere.
        let mut susp = vec![(Sym::BOTTOM, s(0)); 3];
        susp.extend(vec![(s(0), s(1)); 3]);
        susp.extend(vec![(s(1), Sym::BOTTOM); 3]);
        let g = ExcessGraph::compute(3, &susp, &[], &[Sym::BOTTOM]);
        // Path ⊥ → 1 must go through 0 at level 2.
        assert_eq!(path_interior(&g, Sym::BOTTOM, s(1), 2), vec![s(0)]);
        // Direct edge 0 → 1: empty interior.
        assert_eq!(path_interior(&g, s(0), s(1), 2), Vec::<Sym>::new());
    }

    #[test]
    fn build_tree_resolves_cross_emulator_parents() {
        let root_label: Label = Vec::new();
        let slots = vec![
            vec![RichRecord::TreeNode {
                label: root_label.clone(),
                parent: None,
                sym: s(0),
                from_parent: vec![],
                to_parent: vec![],
                seq: 0,
            }],
            vec![RichRecord::TreeNode {
                label: root_label.clone(),
                parent: Some((0, 0)), // child of emulator 0's vertex
                sym: s(1),
                from_parent: vec![],
                to_parent: vec![],
                seq: 0,
            }],
        ];
        let tree = build_tree(&slots);
        assert_eq!(
            tree.compute_history(&root_label),
            vec![Sym::BOTTOM, s(0), s(1)]
        );
    }

    #[test]
    #[should_panic(expected = "orphaned tree vertices")]
    fn build_tree_rejects_orphans() {
        let slots = vec![vec![RichRecord::TreeNode {
            label: Vec::new(),
            parent: Some((7, 9)), // never published
            sym: s(0),
            from_parent: vec![],
            to_parent: vec![],
            seq: 0,
        }]];
        let _ = build_tree(&slots);
    }

    #[test]
    fn rejects_more_emulators_than_vps() {
        let a = PingPong::new(2, 3, 1);
        let result = std::panic::catch_unwind(|| RichEmulation::new(a, 3, RichConfig::demo()));
        assert!(result.is_err());
    }

    #[test]
    fn crashed_emulators_do_not_stall_or_corrupt_the_rich_engine() {
        use bso_sim::scheduler::RandomSched;
        // Crash one emulator mid-run under several seeds: the crash
        // counts as progress (no spurious stall), the victim's
        // published records stay in its slot, and the survivor's
        // branches still validate.
        for seed in 0..10 {
            for victim in 0..2 {
                let a = PingPong::new(4, 3, 1);
                let emu = RichEmulation::new(a, 2, RichConfig::demo());
                let report = run_rich_with_plan(
                    &emu,
                    &mut RandomSched::new(seed),
                    100_000,
                    bso_sim::CrashPlan::none().crash(victim, 2),
                )
                .unwrap();
                report.validate().unwrap();
                assert!(
                    report.result.decisions[victim].is_none(),
                    "seed {seed}: the victim decided after crashing"
                );
            }
        }
    }

    #[test]
    fn telemetry_counts_rich_activity() {
        use bso_sim::scheduler::RandomSched;
        let reg = Registry::enabled();
        let a = PingPong::new(4, 3, 1);
        let emu = RichEmulation::new(a, 2, RichConfig::demo()).with_telemetry(&reg);
        let report = run_rich(&emu, &mut RandomSched::new(5), 100_000).unwrap();
        report.validate().unwrap();
        assert!(reg.counter("rich.think").get() > 0);
        assert!(reg.counter("rich.rebalance.attempts").get() > 0);
        assert!(reg.histogram("rich.label_run_len").count() > 0);
        // All seven rich.* handles exist in the snapshot even if some
        // stayed at zero for this configuration.
        assert!(reg.snapshot().len() >= 7);
    }

    #[test]
    fn report_label_accessors() {
        use bso_sim::scheduler::RandomSched;
        let a = PingPong::new(4, 3, 1);
        let emu = RichEmulation::new(a, 2, RichConfig::demo());
        let report = run_rich(&emu, &mut RandomSched::new(5), 100_000).unwrap();
        let labels = report.labels();
        let maximal = report.maximal_labels();
        assert!(!maximal.is_empty());
        for m in &maximal {
            assert!(labels.contains(m));
            assert!(!labels.iter().any(|l| l.len() > m.len() && l.starts_with(m)));
        }
    }
}
