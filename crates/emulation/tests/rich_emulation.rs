//! Integration tests for the full PODC '94 emulation (suspension,
//! rebalancing, tree-routed history updates).

use bso_emulation::pingpong::PingPong;
use bso_emulation::rich::{run_rich, RichConfig, RichEmulation, RichRecord};
use bso_protocols::{CasOnlyElection, LabelElection};
use bso_sim::scheduler::{BurstSched, RandomSched};

#[test]
fn rich_emulates_cas_only_election() {
    // A = Burns election: every v-process performs exactly one c&s, so
    // each edge has exactly one v-process globally. An emulator whose
    // first-value activation goes through releases its own suspension
    // (it is the edge's only holder) and decides; an emulator dragged
    // onto another group's label is left with only stale frozen
    // v-processes and stalls — the paper's under-provisioning regime
    // (with Φ = O(k^(k²+3)) there would always be active v-processes
    // left). Some emulator must always decide, and every constructed
    // run must be legal with agreeing decisions.
    let mut total_decided = 0;
    for seed in 0..12 {
        let a = CasOnlyElection::new(4, 5).unwrap();
        let emu = RichEmulation::new(a, 2, RichConfig::demo());
        let report = run_rich(&emu, &mut RandomSched::new(seed), 60_000).unwrap();
        let decided = report.result.decisions.iter().flatten().count();
        assert!(decided >= 1, "seed {seed}: nobody decided");
        total_decided += decided;
        let checked = report
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(checked > 0);
        // Every label's decisions agree (election consistency per run).
        for (label, decisions) in report.decisions_by_label() {
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: disagreement in label {label:?}: {decisions:?}"
            );
        }
    }
    assert!(total_decided >= 12);
}

#[test]
fn rich_emulates_label_election() {
    // A = LabelElection(6, 4): values are never reused, so the rich
    // machinery degenerates to label splitting through the
    // tree/suspension plumbing. Every level of the election funnels
    // one v-process per emulator into suspension; with three
    // v-processes per emulator some seeds freeze everyone before a
    // decider survives (under-provisioning — see the module docs), but
    // legality and the (k−1)! label bound must hold regardless, and
    // deciders must exist in most runs.
    let mut decided_runs = 0;
    for seed in 0..12 {
        let a = LabelElection::new(6, 4).unwrap();
        let emu = RichEmulation::new(a, 2, RichConfig::demo());
        let report = run_rich(&emu, &mut RandomSched::new(seed), 100_000).unwrap();
        report
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.maximal_labels().len() <= 6); // (4−1)!
        if report.result.decisions.iter().any(Option::is_some) {
            decided_runs += 1;
        }
        for (label, decisions) in report.decisions_by_label() {
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: disagreement in label {label:?}: {decisions:?}"
            );
        }
    }
    assert!(
        decided_runs >= 6,
        "only {decided_runs}/12 runs had any decider"
    );
}

#[test]
fn rich_emulates_value_reuse() {
    // A = PingPong: transitions recur; the history must be routed
    // through excess-graph cycles (internal tree vertices appear) and
    // still validate. Stalls are legitimate (the paper's
    // under-provisioning regime) but must stay the minority at this Φ,
    // and even stalled prefixes must validate.
    let mut saw_cycle_attach = false;
    let mut completed = 0;
    // Eager banking (quota 2) builds the excess the cycle attaches
    // need; the lazy fallback keeps degenerate edges moving.
    let cfg = RichConfig {
        suspend_quota: 2,
        ..RichConfig::demo()
    };
    for seed in 0..20 {
        let a = PingPong::new(12, 3, 2);
        let emu = RichEmulation::new(a, 2, cfg.clone());
        let report = run_rich(&emu, &mut RandomSched::new(seed), 150_000).unwrap();
        report
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Labels stay within (k−1)! = 2 even though the register is
        // driven through its values repeatedly.
        assert!(report.maximal_labels().len() <= 2, "seed {seed}");
        if !report.stalled {
            assert!(
                report.result.decisions.iter().all(Option::is_some),
                "seed {seed}"
            );
            completed += 1;
        }
        saw_cycle_attach |= report
            .slots
            .iter()
            .flatten()
            .any(|r| matches!(r, RichRecord::TreeNode { .. }));
    }
    assert!(completed >= 16, "only {completed}/20 schedules completed");
    assert!(
        saw_cycle_attach,
        "no schedule ever attached a tree vertex — value reuse untested"
    );
}

#[test]
fn rich_under_bursty_schedules() {
    for seed in 0..8 {
        let a = PingPong::new(8, 3, 2);
        let emu = RichEmulation::new(a, 2, RichConfig::demo());
        let report = run_rich(&emu, &mut BurstSched::new(seed, 5), 150_000).unwrap();
        // Stalled or not, the constructed prefix must be legal.
        report
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn validator_rejects_tampered_runs() {
    // The legality checker is the safety net for every documented
    // deviation — make sure it actually has teeth: corrupting a single
    // emulated response must fail validation.
    use bso_objects::{OpKind, Value};
    let a = PingPong::new(12, 3, 2);
    let cfg = RichConfig {
        suspend_quota: 2,
        ..RichConfig::demo()
    };
    let emu = RichEmulation::new(a, 2, cfg);
    let mut report = run_rich(&emu, &mut RandomSched::new(3), 400_000).unwrap();
    report.validate().expect("untampered run is legal");
    // A single fabricated success can be absorbed (legality is
    // existential: the run just becomes a different legal one). Two
    // fabricated successes out of ⊥ cannot: the register holds ⊥
    // exactly once, ever (PingPong's successor never returns to ⊥).
    let bot = Value::Sym(bso_objects::Sym::BOTTOM);
    let mut tampered = 0;
    for recs in report.slots.iter_mut() {
        for r in recs.iter_mut() {
            if tampered >= 2 {
                break;
            }
            if let RichRecord::VOp { op, resp, .. } = r {
                if let OpKind::Cas { expect, .. } = &op.kind {
                    if *expect == bot && resp != expect {
                        *resp = bot.clone();
                        tampered += 1;
                    }
                }
            }
        }
    }
    assert!(
        tampered >= 2,
        "need two ⊥-expecting failures to tamper with"
    );
    assert!(
        report.validate().is_err(),
        "tampered run must fail validation"
    );
}

#[test]
fn paper_parameters_stall_on_small_phi() {
    // The paper's quotas (m·k² per edge) cannot be met with few
    // v-processes: the emulation stalls — the executable face of
    // "Φ must be large for the reduction to run".
    let a = PingPong::new(4, 3, 2);
    let emu = RichEmulation::new(a, 2, RichConfig::paper(2, 3));
    let report = run_rich(&emu, &mut RandomSched::new(1), 50_000).unwrap();
    assert!(report.stalled, "paper quotas should stall at Φ = 4");
}

#[test]
fn phi_sweep_finds_the_provisioning_frontier() {
    // With quota q, an emulator needs at least q v-processes per
    // contended edge to suspend; sweep Φ upward until emulation
    // completes — a miniature of the paper's counting.
    let quota = 3;
    let cfg = RichConfig {
        suspend_quota: quota,
        release_margin: 1,
        threshold_base: 1,
        require_replacement: false,
        lazy_suspend: false,
    };
    let mut completed_at = None;
    for phi in [2usize, 4, 8, 16, 24] {
        let a = PingPong::new(phi, 3, 1);
        let emu = RichEmulation::new(a, 2, cfg.clone());
        let mut ok = true;
        for seed in 0..5 {
            let report = run_rich(&emu, &mut RandomSched::new(seed), 150_000).unwrap();
            if report.stalled {
                ok = false;
                break;
            }
            report
                .validate()
                .unwrap_or_else(|e| panic!("phi {phi} seed {seed}: {e}"));
        }
        if ok {
            completed_at = Some(phi);
            break;
        }
    }
    let phi = completed_at.expect("some Φ must suffice");
    assert!(
        phi >= quota,
        "completion below the quota would be suspicious"
    );
}
