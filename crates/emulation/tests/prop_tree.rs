//! Property tests for the history tree (Figures 1/4).

use bso_emulation::tree::{HistoryTree, Label, SmallTree};
use bso_objects::Sym;
use proptest::prelude::*;

proptest! {
    /// Rightmost-spine extension is append-only: derived histories are
    /// prefix-stable under the attach pattern `UpdateC&S` uses when it
    /// extends the current leaf.
    #[test]
    fn rightmost_extension_is_append_only(
        syms in proptest::collection::vec(0u8..4, 1..12),
    ) {
        let mut t = HistoryTree::new();
        let label: Label = Vec::new();
        let mut prev = t.compute_history(&label);
        for (i, s) in syms.into_iter().enumerate() {
            let tree = t.tree_mut(&label).unwrap();
            let leaf = tree.rightmost_leaf();
            // Skip same-symbol leaf extensions (the driver does too).
            if tree.node(leaf).sym == Sym::new(s) {
                continue;
            }
            tree.attach(leaf, Sym::new(s), vec![], vec![], 0, i as u64);
            let cur = t.compute_history(&label);
            prop_assert!(cur.starts_with(&prev), "{prev:?} → {cur:?}");
            prop_assert!(cur.len() == prev.len() + 1);
            prev = cur;
        }
    }

    /// The derived history always starts at the tree's root symbol and
    /// ends at the rightmost leaf's symbol, whatever the shape.
    #[test]
    fn history_endpoints(
        attaches in proptest::collection::vec((0u8..4, 0usize..6, 0usize..3), 0..12),
    ) {
        let mut tree = SmallTree::new(Sym::BOTTOM);
        for (i, (s, parent_salt, owner)) in attaches.into_iter().enumerate() {
            let parent = bso_emulation::tree::NodeId(parent_salt % tree.len());
            tree.attach(parent, Sym::new(s), vec![], vec![], owner, i as u64);
        }
        let h = tree.history(true);
        prop_assert_eq!(h[0], Sym::BOTTOM);
        let rightmost = tree.rightmost_leaf();
        prop_assert_eq!(*h.last().unwrap(), tree.node(rightmost).sym);
        // Truncated history is a prefix of the full traversal.
        let full = tree.history(false);
        prop_assert!(full.starts_with(&h));
    }

    /// Label activation keeps compute_history consistent: the deeper
    /// label's history extends the parent tree's full traversal.
    #[test]
    fn activation_appends_full_parent_traversal(
        first in 0u8..3,
        second in 0u8..3,
    ) {
        prop_assume!(first != second);
        let mut t = HistoryTree::new();
        let root: Label = Vec::new();
        let l1 = t.activate(&root, Sym::new(first));
        let l2 = t.activate(&l1, Sym::new(second));
        let h = t.compute_history(&l2);
        // ⊥ (full t_⊥), first (full t_first), second (truncated root).
        prop_assert_eq!(h, vec![Sym::BOTTOM, Sym::new(first), Sym::new(second)]);
    }
}
