//! Property tests for the history tree (Figures 1/4).
//!
//! Seeded random-input loops (no external property-testing crate): each
//! case is reproducible from the fixed seed.

use bso_emulation::tree::{HistoryTree, Label, SmallTree};
use bso_objects::rng::SplitMix64;
use bso_objects::Sym;

/// Rightmost-spine extension is append-only: derived histories are
/// prefix-stable under the attach pattern `UpdateC&S` uses when it
/// extends the current leaf.
#[test]
fn rightmost_extension_is_append_only() {
    let mut rng = SplitMix64::new(101);
    for case in 0..200 {
        let syms: Vec<u8> = (0..rng.range_usize(1, 12))
            .map(|_| rng.range_u8(0, 4))
            .collect();
        let mut t = HistoryTree::new();
        let label: Label = Vec::new();
        let mut prev = t.compute_history(&label);
        for (i, s) in syms.into_iter().enumerate() {
            let tree = t.tree_mut(&label).unwrap();
            let leaf = tree.rightmost_leaf();
            // Skip same-symbol leaf extensions (the driver does too).
            if tree.node(leaf).sym == Sym::new(s) {
                continue;
            }
            tree.attach(leaf, Sym::new(s), vec![], vec![], 0, i as u64);
            let cur = t.compute_history(&label);
            assert!(cur.starts_with(&prev), "case {case}: {prev:?} → {cur:?}");
            assert!(cur.len() == prev.len() + 1, "case {case}");
            prev = cur;
        }
    }
}

/// The derived history always starts at the tree's root symbol and ends
/// at the rightmost leaf's symbol, whatever the shape.
#[test]
fn history_endpoints() {
    let mut rng = SplitMix64::new(202);
    for case in 0..200 {
        let attaches: Vec<(u8, usize, usize)> = (0..rng.usize_below(12))
            .map(|_| (rng.range_u8(0, 4), rng.usize_below(6), rng.usize_below(3)))
            .collect();
        let mut tree = SmallTree::new(Sym::BOTTOM);
        for (i, (s, parent_salt, owner)) in attaches.into_iter().enumerate() {
            let parent = bso_emulation::tree::NodeId(parent_salt % tree.len());
            tree.attach(parent, Sym::new(s), vec![], vec![], owner, i as u64);
        }
        let h = tree.history(true);
        assert_eq!(h[0], Sym::BOTTOM, "case {case}");
        let rightmost = tree.rightmost_leaf();
        assert_eq!(*h.last().unwrap(), tree.node(rightmost).sym, "case {case}");
        // Truncated history is a prefix of the full traversal.
        let full = tree.history(false);
        assert!(full.starts_with(&h), "case {case}");
    }
}

/// Label activation keeps compute_history consistent: the deeper
/// label's history extends the parent tree's full traversal.
#[test]
fn activation_appends_full_parent_traversal() {
    for first in 0u8..3 {
        for second in 0u8..3 {
            if first == second {
                continue;
            }
            let mut t = HistoryTree::new();
            let root: Label = Vec::new();
            let l1 = t.activate(&root, Sym::new(first));
            let l2 = t.activate(&l1, Sym::new(second));
            let h = t.compute_history(&l2);
            // ⊥ (full t_⊥), first (full t_first), second (truncated root).
            assert_eq!(h, vec![Sym::BOTTOM, Sym::new(first), Sym::new(second)]);
        }
    }
}
