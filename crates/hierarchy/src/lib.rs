//! Herlihy's hierarchy, machine-checked.
//!
//! The paper refines the *top* of Herlihy's hierarchy by a space
//! parameter; this crate reproduces the hierarchy facts its
//! introduction builds on, each backed by an executable witness:
//!
//! | object | consensus number | possible side (model-checked) | impossible side (refuted candidates) |
//! |---|---|---|---|
//! | read/write register | 1 | trivial (n = 1) | [`candidates::RwElection`], `RwConsensus` — FLP \[9, 13, 18\] |
//! | test&set | 2 | `TasConsensus` | [`candidates::TasThreeCandidate`] \[10, 13, 18\] |
//! | fetch&add | 2 | `FaaConsensus` | (same argument as test&set) |
//! | sticky register | ∞ | `StickyConsensus` (any n) | — \[20\] |
//! | compare&swap (unbounded) | ∞ | `CasConsensus` (any n) | — \[10\] |
//! | `compare&swap-(k)` + registers | ∞ — *but only `n_k` ≤ O(k^(k²+3)) processes can use **one** of them* | `CasKConsensus` up to (k−1)! | the paper's Theorem 1 (see `bso-emulation`) |
//!
//! A universally quantified impossibility ("no protocol exists") is not
//! enumerable, but the valency argument behind these results is an
//! effective procedure against each *given* candidate:
//! `bso_sim::refute` explores all schedules and returns either an
//! agreement/validity counterexample or a state-graph cycle (a
//! schedule on which some process runs forever). This crate curates
//! natural candidates and exposes [`refutations::demonstrate`], which
//! refutes each one and returns the witnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod km;
pub mod refutations;
mod table;

pub use table::{consensus_number, hierarchy_table, ConsensusNumber, HierarchyRow, ObjectKind};
