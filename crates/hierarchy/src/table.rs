use std::fmt;

/// A level of Herlihy's hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsensusNumber {
    /// The object solves consensus for exactly this many processes.
    Exactly(usize),
    /// The object solves consensus for any number of processes.
    Infinite,
}

impl fmt::Display for ConsensusNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusNumber::Exactly(n) => write!(f, "{n}"),
            ConsensusNumber::Infinite => write!(f, "∞"),
        }
    }
}

/// The object types whose hierarchy positions this workspace
/// reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjectKind {
    /// Atomic read/write register.
    Register,
    /// Test&set bit.
    TestAndSet,
    /// Fetch&add counter.
    FetchAdd,
    /// Write-once (sticky) register.
    Sticky,
    /// Unbounded compare&swap register.
    CompareSwap,
    /// Bounded `compare&swap-(k)` (with read/write registers
    /// available).
    CompareSwapK {
        /// The domain size.
        k: usize,
    },
    /// General bounded read-modify-write register `rmw-(k)` — the
    /// paper's §4 generalization target.
    RmwK {
        /// The domain size.
        k: usize,
    },
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Register => write!(f, "read/write register"),
            ObjectKind::TestAndSet => write!(f, "test&set"),
            ObjectKind::FetchAdd => write!(f, "fetch&add"),
            ObjectKind::Sticky => write!(f, "sticky register"),
            ObjectKind::CompareSwap => write!(f, "compare&swap"),
            ObjectKind::CompareSwapK { k } => write!(f, "compare&swap-({k})"),
            ObjectKind::RmwK { k } => write!(f, "rmw-({k})"),
        }
    }
}

/// One row of the reproduced hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyRow {
    /// The object type.
    pub object: ObjectKind,
    /// Its consensus number (Herlihy \[10\]).
    pub consensus_number: ConsensusNumber,
    /// The paper's refinement: with **one** instance of the object
    /// (plus unbounded read/write registers), how many processes can
    /// elect a leader. `None` = unbounded.
    pub single_object_election_ceiling: Option<String>,
    /// Which protocol/refutation in this workspace witnesses the row.
    pub witness: &'static str,
}

/// The consensus number of each object kind.
///
/// # Example
///
/// ```
/// use bso_hierarchy::{consensus_number, ConsensusNumber, ObjectKind};
/// assert_eq!(consensus_number(ObjectKind::TestAndSet), ConsensusNumber::Exactly(2));
/// assert_eq!(
///     consensus_number(ObjectKind::CompareSwapK { k: 3 }),
///     ConsensusNumber::Infinite
/// );
/// ```
pub fn consensus_number(object: ObjectKind) -> ConsensusNumber {
    match object {
        ObjectKind::Register => ConsensusNumber::Exactly(1),
        ObjectKind::TestAndSet | ObjectKind::FetchAdd => ConsensusNumber::Exactly(2),
        // "an object (compare&swap) whose consensus number is ∞, even
        // when it can hold only three values" — Section 1. The paper's
        // point is that the consensus-number measure is blind to space:
        // *many* compare&swap-(k) objects solve consensus among any n,
        // while ONE of them caps the processes at n_k.
        // An rmw-(k) with a full function set subsumes compare&swap-(k).
        ObjectKind::Sticky
        | ObjectKind::CompareSwap
        | ObjectKind::CompareSwapK { .. }
        | ObjectKind::RmwK { .. } => ConsensusNumber::Infinite,
    }
}

/// The reproduced hierarchy, with the paper's space refinement in the
/// last column.
pub fn hierarchy_table() -> Vec<HierarchyRow> {
    use bso_combinatorics::bounds;
    let k = 4; // representative bounded domain for the table
    vec![
        HierarchyRow {
            object: ObjectKind::Register,
            consensus_number: consensus_number(ObjectKind::Register),
            single_object_election_ceiling: Some("1".into()),
            witness: "bso_hierarchy::refutations (RwConsensus / RwElection refuted)",
        },
        HierarchyRow {
            object: ObjectKind::TestAndSet,
            consensus_number: consensus_number(ObjectKind::TestAndSet),
            single_object_election_ceiling: Some("2".into()),
            witness: "TasConsensus verified; TasThreeCandidate refuted",
        },
        HierarchyRow {
            object: ObjectKind::FetchAdd,
            consensus_number: consensus_number(ObjectKind::FetchAdd),
            single_object_election_ceiling: Some("2".into()),
            witness: "FaaConsensus verified",
        },
        HierarchyRow {
            object: ObjectKind::Sticky,
            consensus_number: consensus_number(ObjectKind::Sticky),
            single_object_election_ceiling: None,
            witness: "StickyConsensus verified (any n)",
        },
        HierarchyRow {
            object: ObjectKind::CompareSwap,
            consensus_number: consensus_number(ObjectKind::CompareSwap),
            single_object_election_ceiling: None,
            witness: "CasConsensus verified (any n)",
        },
        HierarchyRow {
            object: ObjectKind::RmwK { k },
            consensus_number: consensus_number(ObjectKind::RmwK { k }),
            single_object_election_ceiling: Some(format!(
                "{} alone, write-once (Burns–Cruz–Loui [5])",
                k - 1
            )),
            witness: "RmwOnlyElection verified; CasOnlyElection is its c&s instance",
        },
        HierarchyRow {
            object: ObjectKind::CompareSwapK { k },
            consensus_number: consensus_number(ObjectKind::CompareSwapK { k }),
            single_object_election_ceiling: Some(format!(
                "n_{k}: {} ≤ n_{k} ≤ {} (Theorem 1)",
                bounds::nk_algorithmic(k),
                bounds::nk_upper(k).expect("k=4 fits u128")
            )),
            witness: "LabelElection verified up to (k−1)!; bso-emulation (Theorem 1)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent_with_consensus_numbers() {
        for row in hierarchy_table() {
            assert_eq!(row.consensus_number, consensus_number(row.object));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConsensusNumber::Exactly(2).to_string(), "2");
        assert_eq!(ConsensusNumber::Infinite.to_string(), "∞");
        assert_eq!(
            ObjectKind::CompareSwapK { k: 5 }.to_string(),
            "compare&swap-(5)"
        );
    }

    #[test]
    fn bounded_cas_is_still_at_the_top() {
        // The hierarchy is blind to k — that blindness is the paper's
        // motivation.
        for k in 3..10 {
            assert_eq!(
                consensus_number(ObjectKind::CompareSwapK { k }),
                ConsensusNumber::Infinite
            );
        }
    }
}
