//! Natural — doomed — candidate protocols, kept as refuter targets.
//!
//! Each candidate is the protocol a practitioner might plausibly write
//! for a task its objects cannot support. The refuter
//! (`bso_sim::refute`) finds the schedule that breaks each one; the
//! violation *kind* is itself informative (agreement violations for
//! premature deciders, wait-freedom cycles for spinners).

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{Action, Pid, Protocol};

/// Read/write leader election for two processes: write your id, read
/// the peer, elect the smaller *announced* id. Doomed by FLP /
/// Loui–Abu-Amara: on the schedule where both announce before either
/// reads, both see each other and agree — but when one runs solo first
/// it elects itself while the other, running later, elects the
/// minimum: disagreement.
#[derive(Clone, Debug)]
pub struct RwElection;

/// Local state of [`RwElection`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RwElectionState {
    /// About to announce the own id.
    Announce {
        /// Own pid.
        pid: Pid,
    },
    /// About to read the peer's slot.
    ReadPeer {
        /// Own pid.
        pid: Pid,
    },
    /// About to decide.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for RwElection {
    type State = RwElectionState;

    fn processes(&self) -> usize {
        2
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::Register(Value::Nil), 2);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> RwElectionState {
        RwElectionState::Announce { pid }
    }

    fn next_action(&self, state: &RwElectionState) -> Action {
        match state {
            RwElectionState::Announce { pid } => {
                Action::Invoke(Op::write(ObjectId(*pid), Value::Pid(*pid)))
            }
            RwElectionState::ReadPeer { pid } => Action::Invoke(Op::read(ObjectId(1 - *pid))),
            RwElectionState::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, state: &mut RwElectionState, resp: Value) {
        *state = match state.clone() {
            RwElectionState::Announce { pid } => RwElectionState::ReadPeer { pid },
            RwElectionState::ReadPeer { pid } => {
                let winner = match resp.as_pid() {
                    None => pid,           // peer not announced: I win
                    Some(q) => pid.min(q), // both announced: minimum
                };
                RwElectionState::Done { winner }
            }
            done => done,
        };
    }
}

/// Three-process consensus from one test&set bit: the winner announces
/// its input in a result register and decides; losers poll the result
/// register until it appears.
///
/// Agreement and validity actually hold — what fails is
/// **wait-freedom**: a loser polls forever while the winner stalls.
/// The refuter reports the state-graph cycle. (This is the standard
/// intuition for why test&set has consensus number exactly 2: with two
/// processes the loser can identify the winner and read its
/// *pre-announced* input, with three it cannot.)
#[derive(Clone, Debug)]
pub struct TasThreeCandidate;

/// Local state of [`TasThreeCandidate`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TasThreeState {
    /// About to grab the bit.
    Grab {
        /// Own input.
        input: Value,
    },
    /// Won: about to publish the input in the result register.
    Publish {
        /// Own input.
        input: Value,
    },
    /// Lost: polling the result register.
    Poll,
    /// About to decide.
    Done {
        /// The agreed value.
        value: Value,
    },
}

impl Protocol for TasThreeCandidate {
    type State = TasThreeState;

    fn processes(&self) -> usize {
        3
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet); // o0
        l.push(ObjectInit::Register(Value::Nil)); // o1: result
        l
    }

    fn init(&self, _pid: Pid, input: &Value) -> TasThreeState {
        TasThreeState::Grab {
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &TasThreeState) -> Action {
        match state {
            TasThreeState::Grab { .. } => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
            TasThreeState::Publish { input } => {
                Action::Invoke(Op::write(ObjectId(1), input.clone()))
            }
            TasThreeState::Poll => Action::Invoke(Op::read(ObjectId(1))),
            TasThreeState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut TasThreeState, resp: Value) {
        *state = match state.clone() {
            TasThreeState::Grab { input } => {
                if resp == Value::Bool(false) {
                    TasThreeState::Publish { input }
                } else {
                    TasThreeState::Poll
                }
            }
            TasThreeState::Publish { input } => TasThreeState::Done { value: input },
            TasThreeState::Poll => match resp {
                Value::Nil => TasThreeState::Poll, // spin
                v => TasThreeState::Done { value: v },
            },
            done => done,
        };
    }
}

/// Three-process *eager* test&set consensus: like the two-process
/// protocol, losers read a pre-announced slot — but with three
/// processes a loser cannot tell **which** of the other two won, so
/// this candidate has the loser adopt the smallest announced input.
/// The refuter finds the disagreeing schedule.
#[derive(Clone, Debug)]
pub struct TasThreeEagerCandidate;

/// Local state of [`TasThreeEagerCandidate`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TasEagerState {
    /// About to announce the own input.
    Announce {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// About to grab the bit.
    Grab {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// Lost: reading the other announcements (index = next slot).
    Collect {
        /// Own pid.
        pid: Pid,
        /// Next announcement slot to read.
        idx: usize,
        /// Announcements seen so far.
        seen: Vec<Value>,
    },
    /// About to decide.
    Done {
        /// The chosen value.
        value: Value,
    },
}

impl Protocol for TasThreeEagerCandidate {
    type State = TasEagerState;

    fn processes(&self) -> usize {
        3
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet); // o0
        l.push_n(ObjectInit::Register(Value::Nil), 3); // o1..o3
        l
    }

    fn init(&self, pid: Pid, input: &Value) -> TasEagerState {
        TasEagerState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &TasEagerState) -> Action {
        match state {
            TasEagerState::Announce { pid, input } => {
                Action::Invoke(Op::write(ObjectId(1 + pid), input.clone()))
            }
            TasEagerState::Grab { .. } => Action::Invoke(Op::new(ObjectId(0), OpKind::TestAndSet)),
            TasEagerState::Collect { idx, .. } => Action::Invoke(Op::read(ObjectId(1 + idx))),
            TasEagerState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut TasEagerState, resp: Value) {
        *state = match state.clone() {
            TasEagerState::Announce { pid, input } => TasEagerState::Grab { pid, input },
            TasEagerState::Grab { pid, input } => {
                if resp == Value::Bool(false) {
                    TasEagerState::Done { value: input }
                } else {
                    TasEagerState::Collect {
                        pid,
                        idx: 0,
                        seen: Vec::new(),
                    }
                }
            }
            TasEagerState::Collect { pid, idx, mut seen } => {
                if idx != pid && !resp.is_nil() {
                    seen.push(resp);
                }
                if idx + 1 < 3 {
                    TasEagerState::Collect {
                        pid,
                        idx: idx + 1,
                        seen,
                    }
                } else {
                    let value = seen
                        .into_iter()
                        .min()
                        .expect("someone must have announced before winning");
                    TasEagerState::Done { value }
                }
            }
            done => done,
        };
    }
}

/// Three-process *eager* fetch&add consensus: like
/// [`TasThreeEagerCandidate`] but arbitrating with a fetch&add counter
/// (rank 0 wins). Fetch&add also has consensus number 2, so the
/// refuter finds the disagreeing schedule the same way.
#[derive(Clone, Debug)]
pub struct FaaThreeEagerCandidate;

impl Protocol for FaaThreeEagerCandidate {
    type State = TasEagerState;

    fn processes(&self) -> usize {
        3
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::FetchAdd(0)); // o0
        l.push_n(ObjectInit::Register(Value::Nil), 3); // o1..o3
        l
    }

    fn init(&self, pid: Pid, input: &Value) -> TasEagerState {
        TasEagerState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &TasEagerState) -> Action {
        match state {
            TasEagerState::Grab { .. } => Action::Invoke(Op::new(ObjectId(0), OpKind::FetchAdd(1))),
            other => TasThreeEagerCandidate.next_action(other),
        }
    }

    fn on_response(&self, state: &mut TasEagerState, resp: Value) {
        if let TasEagerState::Grab { pid, input } = state.clone() {
            *state = if resp == Value::Int(0) {
                TasEagerState::Done { value: input }
            } else {
                TasEagerState::Collect {
                    pid,
                    idx: 0,
                    seen: Vec::new(),
                }
            };
        } else {
            TasThreeEagerCandidate.on_response(state, resp);
        }
    }
}

/// Three-process queue consensus candidate: a pre-loaded queue hands a
/// winner token to one process; the two losers adopt the smallest
/// announced input — with three processes a loser cannot identify the
/// winner, and the refuter exhibits the disagreement (queues, like
/// test&set, have consensus number exactly 2).
#[derive(Clone, Debug)]
pub struct QueueThreeCandidate;

impl Protocol for QueueThreeCandidate {
    type State = TasEagerState;

    fn processes(&self) -> usize {
        3
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Queue(vec![
            Value::Int(1),
            Value::Int(0),
            Value::Int(0),
        ]));
        l.push_n(ObjectInit::Register(Value::Nil), 3);
        l
    }

    fn init(&self, pid: Pid, input: &Value) -> TasEagerState {
        TasEagerState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &TasEagerState) -> Action {
        match state {
            TasEagerState::Grab { .. } => Action::Invoke(Op::new(ObjectId(0), OpKind::Dequeue)),
            other => TasThreeEagerCandidate.next_action(other),
        }
    }

    fn on_response(&self, state: &mut TasEagerState, resp: Value) {
        if let TasEagerState::Grab { pid, input } = state.clone() {
            *state = if resp == Value::Int(1) {
                TasEagerState::Done { value: input }
            } else {
                TasEagerState::Collect {
                    pid,
                    idx: 0,
                    seen: Vec::new(),
                }
            };
        } else {
            TasThreeEagerCandidate.on_response(state, resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{scheduler, Simulation};

    #[test]
    fn candidates_run_fine_on_friendly_schedules() {
        // Round-robin hides the bugs — which is exactly the point of
        // adversarial exploration.
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let mut sim = Simulation::new(&RwElection, &[Value::Pid(0), Value::Pid(1)]);
        let res = sim.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        bso_sim::checker::check_election(&res).unwrap();

        let inputs3 = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let mut sim = Simulation::new(&TasThreeCandidate, &inputs3);
        let res = sim.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        bso_sim::checker::check_consensus(&res, &inputs3).unwrap();

        let _ = inputs;
    }
}
