//! The Kleinberg–Mullainathan direction: election power ⇒ consensus
//! power (related work, §1 of the paper).
//!
//! > "Kleinberg and Mullainathan show that if n processes can elect a
//! > leader with one copy of object O (without any other registers!)
//! > then this object can solve binary consensus among at most ⌊n/2⌋
//! > processes."
//!
//! The transformation: give every consensus process *two* election
//! identities — one per input bit — and have it run the election as
//! the identity matching its actual input. The elected identity's
//! parity is the agreed bit:
//!
//! * agreement — the election is consistent, so all processes learn
//!   the same leader;
//! * validity — identity `2q + b` participates only if process `q`'s
//!   input is `b`, so the winning parity is a participant's input;
//! * wait-freedom — inherited from the election.
//!
//! [`BinaryFromElection`] instantiates this over
//! [`bso_protocols::RmwOnlyElection`] — an election using **one**
//! `rmw-(k)` object and nothing else, exactly the KM setting — so
//! `⌊(k−1)/2⌋` processes reach binary consensus from one `rmw-(k)`.

use bso_objects::{Layout, Value};
use bso_protocols::RmwOnlyElection;
use bso_sim::{Action, Pid, Protocol};

/// Binary consensus among `n` processes from one `rmw-(k)` object,
/// via the KM two-identities-per-process transformation.
#[derive(Clone, Debug)]
pub struct BinaryFromElection {
    n: usize,
    election: RmwOnlyElection,
}

impl BinaryFromElection {
    /// Binary consensus among `n` processes using one `rmw-(k)`.
    ///
    /// # Errors
    ///
    /// Propagates the election's ceiling: needs `2n ≤ k − 1` election
    /// identities.
    pub fn new(n: usize, k: usize) -> Result<BinaryFromElection, String> {
        if n == 0 {
            return Err("need at least one process".into());
        }
        let election = RmwOnlyElection::new(2 * n, k)?;
        Ok(BinaryFromElection { n, election })
    }

    /// The election identity process `p` runs with input bit `b`.
    pub fn identity(&self, p: Pid, bit: bool) -> Pid {
        2 * p + usize::from(bit)
    }

    fn bit_of(input: &Value) -> bool {
        match input {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            other => panic!("binary consensus takes Bool/Int inputs, got {other}"),
        }
    }
}

/// Local state: the simulated election identity's state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KmState {
    inner: bso_protocols::RmwOnlyState,
}

impl Protocol for BinaryFromElection {
    type State = KmState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        self.election.layout() // one rmw-(k), nothing else
    }

    fn init(&self, pid: Pid, input: &Value) -> KmState {
        let identity = self.identity(pid, Self::bit_of(input));
        KmState {
            inner: self.election.init(identity, &Value::Pid(identity)),
        }
    }

    fn next_action(&self, state: &KmState) -> Action {
        match self.election.next_action(&state.inner) {
            Action::Invoke(op) => Action::Invoke(op),
            Action::Decide(v) => {
                // The elected identity's parity is the agreed bit.
                let w = v.as_pid().expect("election decides an identity");
                Action::Decide(Value::Int((w % 2) as i64))
            }
        }
    }

    fn on_response(&self, state: &mut KmState, resp: Value) {
        self.election.on_response(&mut state.inner, resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{Explorer, TaskSpec};

    fn verify(n: usize, k: usize, inputs: Vec<Value>) {
        let proto = BinaryFromElection::new(n, k).unwrap();
        let report = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Consensus(inputs.clone()))
            .run();
        assert!(
            report.outcome.is_verified(),
            "n={n} k={k}: {:?}",
            report.outcome
        );
    }

    #[test]
    fn two_processes_from_one_rmw_5() {
        // ⌊(5−1)/2⌋ = 2 processes, all four input combinations.
        for (a, b) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            verify(2, 5, vec![Value::Int(a), Value::Int(b)]);
        }
    }

    #[test]
    fn three_processes_from_one_rmw_7() {
        verify(3, 7, vec![Value::Int(1), Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn ceiling_follows_the_election() {
        // 2n identities must fit in k−1.
        assert!(BinaryFromElection::new(2, 4).is_err()); // 4 > 3
        assert!(BinaryFromElection::new(2, 5).is_ok());
        assert!(BinaryFromElection::new(0, 5).is_err());
    }

    #[test]
    fn identities_interleave_bits() {
        let p = BinaryFromElection::new(3, 7).unwrap();
        assert_eq!(p.identity(0, false), 0);
        assert_eq!(p.identity(0, true), 1);
        assert_eq!(p.identity(2, true), 5);
    }
}
