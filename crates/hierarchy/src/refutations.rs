//! Running the refuter against the curated candidates.
//!
//! Each demonstration explores every schedule of a candidate protocol
//! and returns the concrete counterexample — the executable content of
//! the hierarchy's impossible entries.

use bso_objects::Value;
use bso_sim::refute::{refute_consensus, refute_election, Verdict};
use bso_sim::ViolationKind;

use crate::candidates::{
    FaaThreeEagerCandidate, QueueThreeCandidate, RwElection, TasThreeCandidate,
    TasThreeEagerCandidate,
};

/// One refuted candidate.
#[derive(Clone, Debug)]
pub struct Demonstration {
    /// Which candidate was refuted.
    pub candidate: &'static str,
    /// The hierarchy fact it illustrates.
    pub fact: &'static str,
    /// What kind of violation the refuter found.
    pub violation: ViolationKind,
    /// The counterexample schedule (pid per step).
    pub schedule: Vec<usize>,
    /// States explored to find it.
    pub states: usize,
}

fn demonstrate_one(candidate: &'static str, fact: &'static str, verdict: Verdict) -> Demonstration {
    match verdict {
        Verdict::Refuted(r) => Demonstration {
            candidate,
            fact,
            violation: r.violation.kind,
            schedule: r.violation.schedule,
            states: r.states,
        },
        other => panic!("{candidate} was supposed to be refuted, got {other:?}"),
    }
}

/// Refutes every curated candidate and returns the witnesses.
///
/// # Panics
///
/// Panics if any candidate survives — that would mean the candidate
/// (or the refuter) contradicts a theorem.
#[allow(clippy::vec_init_then_push)] // one block per refuted candidate reads best
pub fn demonstrate() -> Vec<Demonstration> {
    let mut out = Vec::new();
    out.push(demonstrate_one(
        "RwElection (2 processes, read/write registers only)",
        "registers alone cannot elect a leader even for n = 2 [9, 13, 18]",
        refute_election(&RwElection, 10_000_000),
    ));
    out.push(demonstrate_one(
        "RwConsensus (2 processes, read/write registers only)",
        "registers alone cannot reach consensus for n = 2 (FLP [9])",
        refute_consensus(
            &bso_protocols::consensus::RwConsensus,
            &[Value::Int(1), Value::Int(2)],
            10_000_000,
        ),
    ));
    out.push(demonstrate_one(
        "TasThreeCandidate (3 processes, one test&set, polling losers)",
        "test&set solves consensus for 2 but not 3 processes [10, 13, 18]",
        refute_consensus(
            &TasThreeCandidate,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            10_000_000,
        ),
    ));
    out.push(demonstrate_one(
        "TasThreeEagerCandidate (3 processes, one test&set, eager losers)",
        "test&set solves consensus for 2 but not 3 processes [10, 13, 18]",
        refute_consensus(
            &TasThreeEagerCandidate,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            10_000_000,
        ),
    ));
    out.push(demonstrate_one(
        "FaaThreeEagerCandidate (3 processes, one fetch&add)",
        "fetch&add has consensus number 2 (Herlihy [10])",
        refute_consensus(
            &FaaThreeEagerCandidate,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            10_000_000,
        ),
    ));
    out.push(demonstrate_one(
        "QueueThreeCandidate (3 processes, one pre-loaded queue)",
        "FIFO queues have consensus number 2 (Herlihy [10])",
        refute_consensus(
            &QueueThreeCandidate,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            10_000_000,
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::checker;
    use bso_sim::scheduler::Scripted;
    use bso_sim::Simulation;
    use bso_sim::{DedupMode, ExploreOutcome, Explorer, Protocol, RunChecker, TaskSpec};

    #[test]
    fn all_candidates_fall() {
        let demos = demonstrate();
        assert_eq!(demos.len(), 6);
        for d in &demos {
            assert!(!d.schedule.is_empty() || d.violation == ViolationKind::NotWaitFree);
            assert!(d.states > 0);
        }
        // The polling candidate fails on wait-freedom, the eager one on
        // agreement — different faces of the same impossibility.
        assert_eq!(demos[2].violation, ViolationKind::NotWaitFree);
        assert_eq!(demos[3].violation, ViolationKind::Agreement);
    }

    #[test]
    fn rw_election_counterexample_replays() {
        let demos = demonstrate();
        let d = &demos[0];
        if d.violation == ViolationKind::NotWaitFree {
            return; // cycles don't replay to a violated terminal state
        }
        let proto = RwElection;
        let inputs = vec![Value::Pid(0), Value::Pid(1)];
        let mut sim = Simulation::new(&proto, &inputs);
        let res = sim
            .run(&mut Scripted::new(d.schedule.clone()), 1_000)
            .unwrap();
        assert!(checker::check_election(&res).is_err());
    }

    /// Serial and parallel exploration (in both dedup modes) must agree
    /// on every curated candidate: same verdict, same violation kind,
    /// and a parallel counterexample that genuinely replays. The
    /// *schedule* may legitimately differ — with several workers the
    /// first violation discovered depends on thread timing — but the
    /// witness it encodes must be real.
    fn assert_parallel_agrees<P>(name: &str, proto: &P, spec: TaskSpec)
    where
        P: Protocol + Sync,
        P::State: Clone + std::hash::Hash + Eq + Send,
    {
        let inputs: Vec<Value> = match &spec {
            TaskSpec::Consensus(ins) => ins.clone(),
            _ => (0..proto.processes()).map(Value::Pid).collect(),
        };
        let base = Explorer::new(proto)
            .inputs(&inputs)
            .max_states(10_000_000)
            .spec(spec.clone());
        let serial = base.clone().run();
        let ExploreOutcome::Violated(expected) = &serial.outcome else {
            panic!(
                "{name}: serial exploration was supposed to refute, got {:?}",
                serial.outcome
            );
        };
        for dedup in [DedupMode::Exact, DedupMode::Fingerprint] {
            let parallel = base.clone().parallel(true).workers(4).dedup(dedup).run();
            let ExploreOutcome::Violated(found) = &parallel.outcome else {
                panic!(
                    "{name} ({dedup:?}): parallel disagrees with serial: {:?}",
                    parallel.outcome
                );
            };
            assert_eq!(expected.kind, found.kind, "{name} ({dedup:?})");
            assert_eq!(parallel.stats.workers, 4, "{name} ({dedup:?})");
            if found.kind == ViolationKind::NotWaitFree {
                continue; // cycles don't replay to a violated terminal state
            }
            let mut sim = Simulation::new(proto, &inputs);
            let res = sim
                .run(&mut Scripted::new(found.schedule.clone()), 1_000_000)
                .unwrap();
            // The exploration-level spec judges the replayed run
            // directly (`RunChecker for TaskSpec`).
            assert!(
                spec.check(&res).is_err(),
                "{name} ({dedup:?}): counterexample must replay"
            );
        }
    }

    #[test]
    fn parallel_exploration_agrees_on_every_candidate() {
        let ins3 = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_parallel_agrees("RwElection", &RwElection, TaskSpec::Election);
        assert_parallel_agrees(
            "RwConsensus",
            &bso_protocols::consensus::RwConsensus,
            TaskSpec::Consensus(vec![Value::Int(1), Value::Int(2)]),
        );
        assert_parallel_agrees(
            "TasThreeCandidate",
            &TasThreeCandidate,
            TaskSpec::Consensus(ins3.clone()),
        );
        assert_parallel_agrees(
            "TasThreeEagerCandidate",
            &TasThreeEagerCandidate,
            TaskSpec::Consensus(ins3.clone()),
        );
        assert_parallel_agrees(
            "FaaThreeEagerCandidate",
            &FaaThreeEagerCandidate,
            TaskSpec::Consensus(ins3.clone()),
        );
        assert_parallel_agrees(
            "QueueThreeCandidate",
            &QueueThreeCandidate,
            TaskSpec::Consensus(ins3),
        );
    }

    #[test]
    fn possible_side_of_each_level_verified() {
        use bso_protocols::consensus::{CasConsensus, FaaConsensus, TasConsensus};
        let inputs2 = vec![Value::Int(5), Value::Int(9)];
        for report in [
            Explorer::new(&TasConsensus)
                .inputs(&inputs2)
                .spec(TaskSpec::Consensus(inputs2.clone()))
                .run(),
            Explorer::new(&FaaConsensus)
                .inputs(&inputs2)
                .spec(TaskSpec::Consensus(inputs2.clone()))
                .run(),
        ] {
            assert!(report.outcome.is_verified());
        }
        // On a fully verified instance serial and parallel exploration
        // must agree on the *entire* report, not just the verdict:
        // state and terminal counts and the exact wait-freedom witness
        // are properties of the state graph, not of the execution mode.
        let inputs5: Vec<Value> = (0..5).map(Value::Int).collect();
        let proto = CasConsensus::new(5);
        let base = Explorer::new(&proto)
            .inputs(&inputs5)
            .spec(TaskSpec::Consensus(inputs5.clone()));
        let serial = base.clone().run();
        let parallel = base.parallel(true).workers(4).run();
        assert!(serial.outcome.is_verified());
        assert!(parallel.outcome.is_verified());
        assert_eq!(serial.states, parallel.states);
        assert_eq!(serial.terminals, parallel.terminals);
        assert_eq!(serial.max_steps_per_proc, parallel.max_steps_per_proc);
        assert_eq!(serial.stats.workers, 1);
        assert_eq!(parallel.stats.workers, 4);
    }
}
