//! The `bso-wire/v2` framed binary protocol.
//!
//! Requests and responses travel as length-prefixed binary frames over
//! any byte stream (the server speaks it over TCP):
//!
//! ```text
//! frame    := len:u32le body
//! body     := version:u8 opcode:u8 req_id:u64le payload sum:u32le   (v2)
//! body     := version:u8 opcode:u8 req_id:u64le payload             (v1)
//! ```
//!
//! `len` counts the body bytes only and is capped at [`MAX_FRAME`]; a
//! peer claiming more is rejected *before* any allocation, mirroring
//! the nesting-depth hardening of the `bso-telemetry` JSON parser.
//! `sum` is the FNV-1a digest ([`checksum`]) of every body byte before
//! it (version through payload), verified — right after the version
//! gate, before any payload interpretation — on every v2 decode:
//! a frame the wire damaged in flight surfaces as a typed
//! [`WireError::Corrupt`] instead of silently decoding to a wrong
//! value, which is what keeps exactly-once retries honest under byte
//! corruption (any single corrupted body byte is detected, including
//! corruption of the digest itself).
//! `req_id` is a client-chosen correlation id: clients may pipeline
//! any number of requests before reading responses, and the server may
//! answer them in any order (shards complete independently), so the id
//! is what ties a response back to its request.
//!
//! ## Versioning and the `Hello` handshake
//!
//! Every body leads with its version byte. v2 keeps v1's payload
//! layout bit-for-bit, appends the integrity digest described above,
//! and adds the [`Request::Hello`] / [`Response::Hello`] negotiation
//! pair plus the [`ErrorCode::Version`] refusal. The codecs here *decode* any version in
//! [`MIN_DECODE_VERSION`]`..=`[`VERSION`] (the layouts coincide) and
//! can encode at either version ([`encode_response_at`]), which is what
//! makes graceful rejection possible: a `bso-server` speaks v2 only,
//! but when a v1 client shows up the server answers — *in v1 framing
//! the old client can still parse* — with a typed
//! [`ErrorCode::Version`] error naming the version it wants, then
//! closes. That replaces the malformed-frame kill a version mismatch
//! used to be. A v2 client opens with `Hello { version: 2 }` and the
//! server answers `Hello` with the negotiated version (the handshake is
//! optional; any other first frame at v2 is simply served).
//!
//! ## Requests
//!
//! | opcode | request | payload |
//! |---|---|---|
//! | `0x01` | [`Request::Apply`] | `pid:u32le` `obj:u32le` opkind |
//! | `0x02` | [`Request::OpenElection`] | `k:u32le` |
//! | `0x03` | [`Request::Elect`] | `session:u32le` `pid:u32le` |
//! | `0x04` | [`Request::Ping`] | — |
//! | `0x05` | [`Request::Hello`] | `version:u8` (v2+) |
//! | `0x06` | [`Request::Introspect`] | — (v2+) |
//! | `0x07` | [`Request::TracedApply`] | `trace_id:u64le` `span_id:u64le` `pid:u32le` `obj:u32le` opkind (v2+) |
//! | `0x08` | [`Request::Resume`] | `token:u64le` `last_acked:u64le` (v2+) |
//! | `0x09` | [`Request::DeadlineApply`] | `budget_us:u32le` `pid:u32le` `obj:u32le` opkind (v2+) |
//! | `0x0A` | [`Request::FetchRouting`] | — (v2+) |
//! | `0x0B` | [`Request::UpdateRouting`] | `epoch:u64le` ranges `len:u32le` utf-8 table (v2+) |
//! | `0x0C` | [`Request::DetachRanges`] | `epoch:u64le` ranges (v2+) |
//! | `0x0D` | [`Request::ExportObject`] | `obj:u32le` (v2+) |
//! | `0x0E` | [`Request::InstallObject`] | `obj:u32le` value (v2+) |
//! | `0x0F` | [`Request::ExportSession`] | `session:u32le` (v2+) |
//! | `0x10` | [`Request::InstallSession`] | `session:u32le` `k:u32le` value (v2+) |
//!
//! where `ranges := count:u32le (lo:u64le hi:u64le)*` is a list of
//! inclusive object-id ranges. Opcodes `0x0A`–`0x10` are the cluster
//! plane (`bso-routing/v1`): routing-table distribution, migration
//! drain, and serialized object/session state transfer between
//! servers. See `DESIGN.md` §3.15.
//!
//! The v2-only opcodes (`Hello`, `Introspect`, `TracedApply`,
//! `Resume`, `DeadlineApply`, and the cluster plane) still *decode* at a v1 version byte —
//! the layouts coincide — but a server refuses to serve them below
//! [`VERSION`], answering the typed [`ErrorCode::Version`] rejection
//! in the client's own framing.
//!
//! ## Responses
//!
//! | opcode | response | payload |
//! |---|---|---|
//! | `0x81` | [`Response::Ok`] | value |
//! | `0x82` | [`Response::Err`] | `code:u8` `len:u32le` utf-8 message |
//! | `0x83` | [`Response::Session`] | `session:u32le` |
//! | `0x84` | [`Response::Hello`] | `version:u8` (v2+) |
//! | `0x85` | [`Response::Introspect`] | `len:u32le` utf-8 JSON (v2+) |
//! | `0x86` | [`Response::Resumed`] | `token:u64le` `cached:u32le` (v2+) |
//! | `0x87` | [`Response::Routing`] | `epoch:u64le` `len:u32le` utf-8 JSON (v2+) |
//!
//! ## Session resumption and exactly-once retries
//!
//! A client that wants its retries to be safe binds its connection to
//! a *session token* with [`Request::Resume`] (a client-chosen `u64`,
//! plus the highest request id below which everything was already
//! acknowledged). The server keeps a bounded per-token reply cache:
//! an operation on a bound connection that was already applied answers
//! from the cache instead of applying again, so a retry after a lost
//! response observes exactly the original effect. After a reconnect
//! the client re-sends `Resume` with the same token, then re-issues
//! its unacknowledged requests under their original request ids. See
//! `DESIGN.md` §3.14 for the full protocol and its retry table.
//!
//! ## Values and operations
//!
//! [`Value`]s are tagged: `0` Nil, `1` Bool(`u8`), `2` Int(`i64le`),
//! `3` Sym(code `u8`), `4` Pid(`u64le`), `5` Pair(value value), `6`
//! Seq(`count:u32le` values). Nesting is capped at
//! [`MAX_VALUE_DEPTH`] and sequence counts at [`MAX_SEQ_LEN`] — both
//! on *encode and decode*, so a malicious frame can neither recurse
//! the decoder to death nor make it allocate a phantom gigabyte.
//! [`bso_objects::OpKind`]s are tagged `0..=12` in declaration order
//! (`Read`, `Write`, `Cas`, `TestAndSet`, `Reset`, `FetchAdd`, `Swap`,
//! `SnapshotScan`, `SnapshotUpdate`, `StickyWrite`, `Enqueue`,
//! `Dequeue`, `Rmw`).

use std::fmt;
use std::io::{self, Read, Write};

use bso_objects::{ObjectId, Op, OpKind, Sym, Value};

/// The schema name of this protocol revision.
pub const SCHEMA: &str = "bso-wire/v2";

/// The version byte this revision's encoders write.
pub const VERSION: u8 = 2;

/// The oldest version byte the codecs still *decode* (v1 and v2 share
/// their layout). The server refuses to *serve* anything below
/// [`VERSION`] — but it refuses in framing the old client can parse.
pub const MIN_DECODE_VERSION: u8 = 1;

/// Hard cap on a frame body's length. A length prefix above this is a
/// [`WireError::FrameTooLarge`] before any buffer is grown.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of the trailing [`checksum`] digest a v2 body carries.
pub const CHECKSUM_LEN: usize = 4;

/// First protocol version whose bodies carry the trailing digest.
const CHECKSUM_VERSION: u8 = 2;

/// The frame integrity digest: 32-bit FNV-1a over the body bytes
/// preceding the digest (version byte through payload). Appended by
/// the v2 encoders and verified by the decoders before any payload
/// interpretation; a mismatch is [`WireError::Corrupt`].
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    h
}

/// Hard cap on [`Value`] nesting (pairs within sequences within …).
pub const MAX_VALUE_DEPTH: usize = 32;

/// Hard cap on one [`Value::Seq`]'s element count.
pub const MAX_SEQ_LEN: usize = 1 << 16;

/// The trace context a tracing client stamps into a
/// [`Request::TracedApply`] frame, correlating the client's span with
/// the span the server records on the owning shard's track.
///
/// `trace_id` names one end-to-end request; both sides attach it to
/// their Chrome-trace span (`args.trace_id`), which is what
/// [`bso_telemetry::trace::merge_traces`] joins on. `span_id` is the
/// client-side span's identifier (clients use the request id), carried
/// so a server span can name its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// End-to-end request identifier, unique within the issuing client.
    pub trace_id: u64,
    /// The client span this request belongs to.
    pub span_id: u64,
}

/// A client-to-server request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Apply one shared-object operation on behalf of process `pid`.
    Apply {
        /// The invoking process id (snapshot slots are per-process).
        pid: u32,
        /// The operation, aimed at one of the server's objects.
        op: Op,
    },
    /// Open a leader-election session over a fresh
    /// `compare&swap-(k)`: the server instantiates the
    /// Burns–Cruz–Loui [`bso_protocols::CasOnlyElection`] for
    /// `k − 1` participants and returns a session id.
    OpenElection {
        /// Domain size of the session's register (`2 ..= 255`).
        k: u32,
    },
    /// Run participant `pid`'s side of an election session to its
    /// decision; the response is `Value::Pid(winner)`.
    Elect {
        /// The session, as returned by [`Request::OpenElection`].
        session: u32,
        /// The participant (`pid < k − 1`).
        pid: u32,
    },
    /// Liveness / flush probe; the response is `Ok(Value::Nil)`.
    Ping,
    /// Version negotiation (v2+): the highest wire version the client
    /// speaks. The server answers [`Response::Hello`] with the version
    /// the connection will use, or a typed [`ErrorCode::Version`]
    /// error if no common version exists.
    Hello {
        /// The highest version the client can speak.
        version: u8,
    },
    /// Observability scrape (v2+): ask the server for its live metrics
    /// snapshot. The answer is [`Response::Introspect`] carrying a
    /// deterministic `bso-introspect/v1` JSON document (build/config
    /// identity, exact serving counters, per-shard queue depths,
    /// connection counts, turn/apply timings and flight-recorder
    /// contents).
    Introspect,
    /// [`Request::Apply`] carrying a [`TraceContext`] (v2+): the server
    /// executes it identically but additionally records the apply as a
    /// span on the owning shard's trace track, stamped with the
    /// context's ids, so client and server traces can be merged into
    /// one per-request timeline.
    TracedApply {
        /// The client's trace context for this request.
        ctx: TraceContext,
        /// The invoking process id (snapshot slots are per-process).
        pid: u32,
        /// The operation, aimed at one of the server's objects.
        op: Op,
    },
    /// Bind this connection to a resumable session (v2+). `token` is a
    /// client-chosen session identifier; `last_acked` is the highest
    /// request id for which this client has seen every response up to
    /// and including it, letting the server prune its reply cache.
    /// Answered with [`Response::Resumed`], or a typed
    /// [`ErrorCode::Overloaded`] when the session table is full.
    Resume {
        /// Client-chosen session identifier, stable across reconnects.
        token: u64,
        /// Highest request id with everything at or below it answered.
        last_acked: u64,
    },
    /// [`Request::Apply`] carrying a freshness budget (v2+): if more
    /// than `budget_us` microseconds elapse between the server decoding
    /// the frame and the owning shard reaching it, the op is *shed* —
    /// refused with [`ErrorCode::Expired`] and never applied — instead
    /// of consuming shard time on an answer the client has already
    /// given up on.
    DeadlineApply {
        /// Freshness budget in microseconds, measured server-side from
        /// frame decode.
        budget_us: u32,
        /// The invoking process id (snapshot slots are per-process).
        pid: u32,
        /// The operation, aimed at one of the server's objects.
        op: Op,
    },
    /// Ask the server for its current `bso-routing/v1` table (v2+).
    /// Answered with [`Response::Routing`]; clients refresh through
    /// this after a [`ErrorCode::WrongShard`] redirect. A server that
    /// was never given a table answers epoch `0` with an empty table.
    FetchRouting,
    /// Install a new routing view on this server (v2+): the epoch, the
    /// inclusive object-id ranges *this server* now owns, and the full
    /// serialized table (opaque to the server; redistributed verbatim
    /// via [`Request::FetchRouting`]). Refused with
    /// [`ErrorCode::BadRequest`] if `epoch` is below the installed one
    /// — epochs only move forward.
    UpdateRouting {
        /// The table's epoch; must be ≥ the currently installed epoch.
        epoch: u64,
        /// Inclusive `(lo, hi)` object-id ranges this server owns.
        ranges: Vec<(u64, u64)>,
        /// The serialized `bso-routing/v1` table, stored verbatim.
        table: String,
    },
    /// Migration drain (v2+): atomically stop serving the given
    /// object-id ranges, bumping the local epoch to `epoch`. When this
    /// request is answered, every apply on a detached range has either
    /// completed (its effect is in the state a subsequent
    /// [`Request::ExportObject`] observes) or was refused with
    /// [`ErrorCode::WrongShard`] — there is no in-between.
    DetachRanges {
        /// The epoch the detach belongs to (≥ the installed epoch).
        epoch: u64,
        /// Inclusive `(lo, hi)` object-id ranges to stop serving.
        ranges: Vec<(u64, u64)>,
    },
    /// Serialize one object's state for migration (v2+). Answered with
    /// `Ok(value)` carrying the self-describing encoding of
    /// `bso_objects::spec::ObjectState::export`.
    ExportObject {
        /// The object to export.
        obj: u32,
    },
    /// Install a migrated object's state (v2+), overwriting whatever
    /// state this server held for that id. The value must be an
    /// `ObjectState::export` encoding.
    InstallObject {
        /// The object to (over)write.
        obj: u32,
        /// The exported state.
        state: Value,
    },
    /// Serialize one election session's state for replication (v2+).
    /// Answered with `Ok(Seq[Int(k), register])` — the session's domain
    /// size and its `compare&swap-(k)` register contents.
    ExportSession {
        /// The session to export.
        session: u32,
    },
    /// Install an election session under an explicit id (v2+): the
    /// replication path that lets a cluster place the *same* session on
    /// several servers. `state` is the register contents (as exported),
    /// or `Nil` for a fresh session.
    InstallSession {
        /// The session id to install under (client-chosen).
        session: u32,
        /// Domain size of the session's register (`2 ..= 255`).
        k: u32,
        /// Exported register contents, or `Nil` to start fresh.
        state: Value,
    },
}

/// A server-to-client response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The operation's response value.
    Ok(Value),
    /// A typed failure; the request had no effect (except that a
    /// [`ErrorCode::Object`] error reports the shared object's own
    /// refusal, which is itself effect-free per the object specs).
    Err {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A fresh election session id.
    Session(u32),
    /// The negotiated wire version (answering [`Request::Hello`]).
    Hello {
        /// The version the server will speak on this connection.
        version: u8,
    },
    /// The server's metrics snapshot (answering
    /// [`Request::Introspect`]): a `bso-introspect/v1` JSON document.
    Introspect(String),
    /// The session is bound (answering [`Request::Resume`]): echoes the
    /// token and reports how many cached replies the server still holds
    /// for it — replies to requests the client may be about to retry.
    Resumed {
        /// The session token this connection is now bound to.
        token: u64,
        /// Cached replies retained after pruning at `last_acked`.
        cached: u32,
    },
    /// The server's routing view (answering [`Request::FetchRouting`]):
    /// the installed epoch and the serialized `bso-routing/v1` table.
    Routing {
        /// The installed routing epoch (`0` if none was ever installed).
        epoch: u64,
        /// The serialized table (empty if none was ever installed).
        table: String,
    },
}

/// Typed error classes a server can answer with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The target shard's queue is full — backpressure, try again.
    /// The request was *not* enqueued.
    Busy = 1,
    /// The shared object rejected the operation
    /// ([`bso_objects::ObjectError`] rendered in the message).
    Object = 2,
    /// The request is well-framed but semantically invalid (unknown
    /// object, bad election parameters, pid out of range…).
    BadRequest = 3,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 4,
    /// No such election session.
    UnknownSession = 5,
    /// Wire-version mismatch: the server does not serve the version
    /// this connection (or its [`Request::Hello`]) speaks. The message
    /// names the version the server wants.
    Version = 6,
    /// The request outlived its validity window: a
    /// [`Request::DeadlineApply`] whose freshness budget ran out before
    /// the owning shard reached it. The op was shed, *not* applied, so
    /// retrying it (with a fresh budget) is safe.
    Expired = 7,
    /// The server refused new resumable state — the session table is at
    /// capacity. Existing sessions keep working; a client seeing this
    /// should back off, reconnect and try binding again.
    Overloaded = 8,
    /// The session token cannot answer this request: the retried
    /// request id predates what the bounded reply cache still covers,
    /// so the server can no longer tell whether it was applied.
    /// Retrying would risk a duplicate effect — the client must treat
    /// the op's outcome as unknown.
    BadToken = 9,
    /// This server does not (or no longer does) own the object the
    /// request targets — the cluster's routing table moved the range,
    /// or the client's cached table is stale. The request was *not*
    /// applied. The message carries the refusing server's routing
    /// epoch in `epoch=N` form ([`wrong_shard_epoch`] parses it); a
    /// client whose cached epoch is older must refresh its table
    /// ([`Request::FetchRouting`]) and re-route the op — the
    /// [`ErrorCode::retry_after_refresh`] class.
    WrongShard = 10,
}

impl ErrorCode {
    /// The wire byte for this code (the inverse of
    /// [`ErrorCode::from_u8`]).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte into a typed code.
    pub fn from_u8(c: u8) -> Option<ErrorCode> {
        match c {
            1 => Some(ErrorCode::Busy),
            2 => Some(ErrorCode::Object),
            3 => Some(ErrorCode::BadRequest),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::UnknownSession),
            6 => Some(ErrorCode::Version),
            7 => Some(ErrorCode::Expired),
            8 => Some(ErrorCode::Overloaded),
            9 => Some(ErrorCode::BadToken),
            10 => Some(ErrorCode::WrongShard),
            _ => None,
        }
    }

    /// Whether a request refused with this code had no effect and is
    /// worth retrying at all: the union of [`retry_in_place`],
    /// [`retry_after_reconnect`] and [`retry_after_refresh`].
    ///
    /// [`retry_in_place`]: ErrorCode::retry_in_place
    /// [`retry_after_reconnect`]: ErrorCode::retry_after_reconnect
    /// [`retry_after_refresh`]: ErrorCode::retry_after_refresh
    pub fn is_retryable(self) -> bool {
        self.retry_in_place() || self.retry_after_reconnect() || self.retry_after_refresh()
    }

    /// Retryable on the *same* connection: transient refusals
    /// ([`ErrorCode::Busy`] backpressure, an [`ErrorCode::Expired`]
    /// shed) where the connection itself is healthy — back off briefly
    /// and re-send.
    pub fn retry_in_place(self) -> bool {
        matches!(self, ErrorCode::Busy | ErrorCode::Expired)
    }

    /// Retryable only through a *new* connection: this server instance
    /// ([`ErrorCode::ShuttingDown`]) or its resumable-session capacity
    /// ([`ErrorCode::Overloaded`]) is refusing the connection's future
    /// work, not just this request — re-sending in place can only
    /// repeat the refusal.
    pub fn retry_after_reconnect(self) -> bool {
        matches!(self, ErrorCode::ShuttingDown | ErrorCode::Overloaded)
    }

    /// Retryable only after refreshing the cluster routing table
    /// ([`ErrorCode::WrongShard`]): the server is healthy and the
    /// connection is fine, but the *placement* the client assumed is
    /// stale — re-sending to the same server (in place or reconnected)
    /// can only repeat the refusal. Re-route through a fresher table.
    pub fn retry_after_refresh(self) -> bool {
        matches!(self, ErrorCode::WrongShard)
    }
}

/// Renders the message of a [`ErrorCode::WrongShard`] refusal: carries
/// the refusing server's routing epoch in the `epoch=N` form
/// [`wrong_shard_epoch`] parses back out.
pub fn wrong_shard_message(epoch: u64, obj: u64) -> String {
    format!("epoch={epoch}; object {obj} is not owned by this server")
}

/// Extracts the routing epoch a [`ErrorCode::WrongShard`] message
/// carries (the `epoch=N` prefix written by [`wrong_shard_message`]).
/// `None` if the message does not carry one — a client should then
/// refresh unconditionally.
pub fn wrong_shard_epoch(message: &str) -> Option<u64> {
    let rest = message.strip_prefix("epoch=")?;
    let digits = rest.split(|c: char| !c.is_ascii_digit()).next()?;
    digits.parse().ok()
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Object => "object",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::Version => "version",
            ErrorCode::Expired => "expired",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadToken => "bad-token",
            ErrorCode::WrongShard => "wrong-shard",
        };
        f.write_str(s)
    }
}

/// Why a frame failed to encode or decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The body ended before the payload was complete.
    Truncated,
    /// The payload decoded fully but bytes remain.
    Trailing(usize),
    /// The version byte is outside
    /// [`MIN_DECODE_VERSION`]`..=`[`VERSION`].
    BadVersion(u8),
    /// Unknown request/response opcode.
    BadOpcode(u8),
    /// Unknown [`Value`] tag.
    BadValueTag(u8),
    /// Unknown [`OpKind`] tag.
    BadOpTag(u8),
    /// Unknown [`ErrorCode`] byte.
    BadErrorCode(u8),
    /// Value nesting beyond [`MAX_VALUE_DEPTH`].
    TooDeep,
    /// A sequence claimed more than [`MAX_SEQ_LEN`] elements.
    SeqTooLong(usize),
    /// A frame length prefix beyond [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// An error message was not valid UTF-8.
    BadUtf8,
    /// The body's trailing [`checksum`] digest does not match its
    /// bytes — the frame was damaged in flight.
    Corrupt {
        /// The digest recomputed over the received body.
        expected: u32,
        /// The digest the body actually carried.
        found: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v} (want {VERSION})"),
            WireError::BadOpcode(c) => write!(f, "unknown opcode {c:#04x}"),
            WireError::BadValueTag(t) => write!(f, "unknown value tag {t}"),
            WireError::BadOpTag(t) => write!(f, "unknown operation tag {t}"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::TooDeep => write!(f, "value nesting deeper than {MAX_VALUE_DEPTH}"),
            WireError::SeqTooLong(n) => write!(f, "sequence of {n} elements (max {MAX_SEQ_LEN})"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes (max {MAX_FRAME})"),
            WireError::BadUtf8 => write!(f, "message is not valid UTF-8"),
            WireError::Corrupt { expected, found } => write!(
                f,
                "frame checksum mismatch (computed {expected:#010x}, carried {found:#010x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

pub(crate) const OP_APPLY: u8 = 0x01;
pub(crate) const OP_OPEN_ELECTION: u8 = 0x02;
pub(crate) const OP_ELECT: u8 = 0x03;
const OP_PING: u8 = 0x04;
const OP_HELLO: u8 = 0x05;
const OP_INTROSPECT: u8 = 0x06;
const OP_APPLY_TRACED: u8 = 0x07;
const OP_RESUME: u8 = 0x08;
const OP_APPLY_DEADLINE: u8 = 0x09;
const OP_FETCH_ROUTING: u8 = 0x0A;
const OP_UPDATE_ROUTING: u8 = 0x0B;
const OP_DETACH_RANGES: u8 = 0x0C;
const OP_EXPORT_OBJECT: u8 = 0x0D;
const OP_INSTALL_OBJECT: u8 = 0x0E;
const OP_EXPORT_SESSION: u8 = 0x0F;
const OP_INSTALL_SESSION: u8 = 0x10;
const RESP_OK: u8 = 0x81;
const RESP_ERR: u8 = 0x82;
const RESP_SESSION: u8 = 0x83;
const RESP_HELLO: u8 = 0x84;
const RESP_INTROSPECT: u8 = 0x85;
const RESP_RESUMED: u8 = 0x86;
const RESP_ROUTING: u8 = 0x87;

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value, depth: usize) -> Result<(), WireError> {
    if depth >= MAX_VALUE_DEPTH {
        return Err(WireError::TooDeep);
    }
    match v {
        Value::Nil => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(3);
            out.push(s.code());
        }
        Value::Pid(p) => {
            out.push(4);
            put_u64(out, *p as u64);
        }
        Value::Pair(a, b) => {
            out.push(5);
            put_value(out, a, depth + 1)?;
            put_value(out, b, depth + 1)?;
        }
        Value::Seq(items) => {
            if items.len() > MAX_SEQ_LEN {
                return Err(WireError::SeqTooLong(items.len()));
            }
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item, depth + 1)?;
            }
        }
    }
    Ok(())
}

fn put_ranges(out: &mut Vec<u8>, ranges: &[(u64, u64)]) {
    put_u32(out, ranges.len() as u32);
    for &(lo, hi) in ranges {
        put_u64(out, lo);
        put_u64(out, hi);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_op_kind(out: &mut Vec<u8>, kind: &OpKind) -> Result<(), WireError> {
    match kind {
        OpKind::Read => out.push(0),
        OpKind::Write(v) => {
            out.push(1);
            put_value(out, v, 0)?;
        }
        OpKind::Cas { expect, new } => {
            out.push(2);
            put_value(out, expect, 0)?;
            put_value(out, new, 0)?;
        }
        OpKind::TestAndSet => out.push(3),
        OpKind::Reset => out.push(4),
        OpKind::FetchAdd(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_le_bytes());
        }
        OpKind::Swap(v) => {
            out.push(6);
            put_value(out, v, 0)?;
        }
        OpKind::SnapshotScan => out.push(7),
        OpKind::SnapshotUpdate(v) => {
            out.push(8);
            put_value(out, v, 0)?;
        }
        OpKind::StickyWrite(v) => {
            out.push(9);
            put_value(out, v, 0)?;
        }
        OpKind::Enqueue(v) => {
            out.push(10);
            put_value(out, v, 0)?;
        }
        OpKind::Dequeue => out.push(11),
        OpKind::Rmw { func } => {
            out.push(12);
            put_u32(out, *func as u32);
        }
    }
    Ok(())
}

/// Appends one framed request (length prefix included) to `out`.
///
/// # Errors
///
/// [`WireError::TooDeep`]/[`WireError::SeqTooLong`] if an operand
/// value breaks the encoding limits, [`WireError::FrameTooLarge`] if
/// the body would exceed [`MAX_FRAME`].
pub fn encode_request(req_id: u64, req: &Request, out: &mut Vec<u8>) -> Result<(), WireError> {
    frame(out, VERSION, |body| {
        match req {
            Request::Apply { pid, op } => {
                body.push(OP_APPLY);
                put_u64(body, req_id);
                put_u32(body, *pid);
                put_u32(body, op.obj.0 as u32);
                put_op_kind(body, &op.kind)?;
            }
            Request::OpenElection { k } => {
                body.push(OP_OPEN_ELECTION);
                put_u64(body, req_id);
                put_u32(body, *k);
            }
            Request::Elect { session, pid } => {
                body.push(OP_ELECT);
                put_u64(body, req_id);
                put_u32(body, *session);
                put_u32(body, *pid);
            }
            Request::Ping => {
                body.push(OP_PING);
                put_u64(body, req_id);
            }
            Request::Hello { version } => {
                body.push(OP_HELLO);
                put_u64(body, req_id);
                body.push(*version);
            }
            Request::Introspect => {
                body.push(OP_INTROSPECT);
                put_u64(body, req_id);
            }
            Request::TracedApply { ctx, pid, op } => {
                body.push(OP_APPLY_TRACED);
                put_u64(body, req_id);
                put_u64(body, ctx.trace_id);
                put_u64(body, ctx.span_id);
                put_u32(body, *pid);
                put_u32(body, op.obj.0 as u32);
                put_op_kind(body, &op.kind)?;
            }
            Request::Resume { token, last_acked } => {
                body.push(OP_RESUME);
                put_u64(body, req_id);
                put_u64(body, *token);
                put_u64(body, *last_acked);
            }
            Request::DeadlineApply { budget_us, pid, op } => {
                body.push(OP_APPLY_DEADLINE);
                put_u64(body, req_id);
                put_u32(body, *budget_us);
                put_u32(body, *pid);
                put_u32(body, op.obj.0 as u32);
                put_op_kind(body, &op.kind)?;
            }
            Request::FetchRouting => {
                body.push(OP_FETCH_ROUTING);
                put_u64(body, req_id);
            }
            Request::UpdateRouting {
                epoch,
                ranges,
                table,
            } => {
                body.push(OP_UPDATE_ROUTING);
                put_u64(body, req_id);
                put_u64(body, *epoch);
                put_ranges(body, ranges);
                put_str(body, table);
            }
            Request::DetachRanges { epoch, ranges } => {
                body.push(OP_DETACH_RANGES);
                put_u64(body, req_id);
                put_u64(body, *epoch);
                put_ranges(body, ranges);
            }
            Request::ExportObject { obj } => {
                body.push(OP_EXPORT_OBJECT);
                put_u64(body, req_id);
                put_u32(body, *obj);
            }
            Request::InstallObject { obj, state } => {
                body.push(OP_INSTALL_OBJECT);
                put_u64(body, req_id);
                put_u32(body, *obj);
                put_value(body, state, 0)?;
            }
            Request::ExportSession { session } => {
                body.push(OP_EXPORT_SESSION);
                put_u64(body, req_id);
                put_u32(body, *session);
            }
            Request::InstallSession { session, k, state } => {
                body.push(OP_INSTALL_SESSION);
                put_u64(body, req_id);
                put_u32(body, *session);
                put_u32(body, *k);
                put_value(body, state, 0)?;
            }
        }
        Ok(())
    })
}

/// Appends one framed response (length prefix included) to `out`.
///
/// # Errors
///
/// Same limit violations as [`encode_request`].
pub fn encode_response(req_id: u64, resp: &Response, out: &mut Vec<u8>) -> Result<(), WireError> {
    encode_response_at(VERSION, req_id, resp, out)
}

/// [`encode_response`] with an explicit version byte — how the server
/// answers a connection at the version *it* speaks (in particular the
/// typed [`ErrorCode::Version`] rejection of a v1 client must arrive
/// in v1 framing to be parseable by that client).
///
/// # Errors
///
/// [`WireError::BadVersion`] for a version outside
/// [`MIN_DECODE_VERSION`]`..=`[`VERSION`], plus everything
/// [`encode_response`] can fail with.
pub fn encode_response_at(
    version: u8,
    req_id: u64,
    resp: &Response,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    if !(MIN_DECODE_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    frame(out, version, |body| {
        match resp {
            Response::Ok(v) => {
                body.push(RESP_OK);
                put_u64(body, req_id);
                put_value(body, v, 0)?;
            }
            Response::Err { code, message } => {
                body.push(RESP_ERR);
                put_u64(body, req_id);
                body.push(*code as u8);
                put_u32(body, message.len() as u32);
                body.extend_from_slice(message.as_bytes());
            }
            Response::Session(s) => {
                body.push(RESP_SESSION);
                put_u64(body, req_id);
                put_u32(body, *s);
            }
            Response::Hello { version } => {
                body.push(RESP_HELLO);
                put_u64(body, req_id);
                body.push(*version);
            }
            Response::Introspect(json) => {
                body.push(RESP_INTROSPECT);
                put_u64(body, req_id);
                put_u32(body, json.len() as u32);
                body.extend_from_slice(json.as_bytes());
            }
            Response::Resumed { token, cached } => {
                body.push(RESP_RESUMED);
                put_u64(body, req_id);
                put_u64(body, *token);
                put_u32(body, *cached);
            }
            Response::Routing { epoch, table } => {
                body.push(RESP_ROUTING);
                put_u64(body, req_id);
                put_u64(body, *epoch);
                put_str(body, table);
            }
        }
        Ok(())
    })
}

/// Reserves the length prefix, writes `version` + the body via `fill`,
/// appends the integrity digest (v2+), then patches the prefix in.
fn frame(
    out: &mut Vec<u8>,
    version: u8,
    fill: impl FnOnce(&mut Vec<u8>) -> Result<(), WireError>,
) -> Result<(), WireError> {
    let at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(version);
    if let Err(e) = fill(out) {
        out.truncate(at);
        return Err(e);
    }
    if version >= CHECKSUM_VERSION {
        let sum = checksum(&out[at + 4..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }
    let body_len = out.len() - at - 4;
    if body_len > MAX_FRAME {
        out.truncate(at);
        return Err(WireError::FrameTooLarge(body_len));
    }
    out[at..at + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    Ok(())
}

// ---------------------------------------------------------------- decode

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth >= MAX_VALUE_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Nil),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Sym(Sym::from_code(self.u8()?))),
            4 => Ok(Value::Pid(self.u64()? as usize)),
            5 => {
                let a = self.value(depth + 1)?;
                let b = self.value(depth + 1)?;
                Ok(Value::pair(a, b))
            }
            6 => {
                let n = self.u32()? as usize;
                if n > MAX_SEQ_LEN {
                    return Err(WireError::SeqTooLong(n));
                }
                // Each element takes at least one byte: a count beyond
                // the remaining bytes is a lie, reject it before
                // reserving capacity for it.
                if n > self.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            t => Err(WireError::BadValueTag(t)),
        }
    }

    fn ranges(&mut self) -> Result<Vec<(u64, u64)>, WireError> {
        let n = self.u32()? as usize;
        // Each range is 16 payload bytes: a count beyond the remaining
        // bytes is a lie, reject it before reserving capacity for it.
        if n.checked_mul(16).is_none_or(|b| b > self.remaining()) {
            return Err(WireError::Truncated);
        }
        let mut ranges = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = self.u64()?;
            let hi = self.u64()?;
            ranges.push((lo, hi));
        }
        Ok(ranges)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    fn op_kind(&mut self) -> Result<OpKind, WireError> {
        match self.u8()? {
            0 => Ok(OpKind::Read),
            1 => Ok(OpKind::Write(self.value(0)?)),
            2 => {
                let expect = self.value(0)?;
                let new = self.value(0)?;
                Ok(OpKind::Cas { expect, new })
            }
            3 => Ok(OpKind::TestAndSet),
            4 => Ok(OpKind::Reset),
            5 => Ok(OpKind::FetchAdd(self.i64()?)),
            6 => Ok(OpKind::Swap(self.value(0)?)),
            7 => Ok(OpKind::SnapshotScan),
            8 => Ok(OpKind::SnapshotUpdate(self.value(0)?)),
            9 => Ok(OpKind::StickyWrite(self.value(0)?)),
            10 => Ok(OpKind::Enqueue(self.value(0)?)),
            11 => Ok(OpKind::Dequeue),
            12 => Ok(OpKind::Rmw {
                func: self.u32()? as usize,
            }),
            t => Err(WireError::BadOpTag(t)),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

fn body_cursor(body: &[u8]) -> Result<(Cursor<'_>, u8, u64), WireError> {
    let mut c = Cursor { buf: body, at: 0 };
    let version = c.u8()?;
    if !(MIN_DECODE_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    if version >= CHECKSUM_VERSION {
        // Integrity gates interpretation: strip and verify the trailing
        // digest before a single payload byte is trusted.
        let Some(split) = body.len().checked_sub(CHECKSUM_LEN).filter(|&s| s >= 1) else {
            return Err(WireError::Truncated);
        };
        let (covered, sum) = body.split_at(split);
        let found = u32::from_le_bytes(sum.try_into().expect("CHECKSUM_LEN bytes"));
        let expected = checksum(covered);
        if found != expected {
            return Err(WireError::Corrupt { expected, found });
        }
        c.buf = covered;
    }
    let opcode = c.u8()?;
    let req_id = c.u64()?;
    Ok((c, opcode, req_id))
}

/// The version byte of a frame body, if present.
///
/// Never fails on garbage — this is the *pre*-decode peek the server
/// uses to decide whether a rejected frame deserves a typed
/// [`ErrorCode::Version`] reply (framed at the client's own version so
/// the client can parse it) or is simply malformed.
pub fn peek_version(body: &[u8]) -> Option<u8> {
    body.first().copied()
}

/// Best-effort request id of a frame body (`None` when truncated).
///
/// Used together with [`peek_version`] on frames that fail version
/// admission, so the rejection can still correlate to the request that
/// provoked it.
pub fn peek_req_id(body: &[u8]) -> Option<u64> {
    let bytes = body.get(2..10)?;
    Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Decodes one request body (without the length prefix).
///
/// # Errors
///
/// Any [`WireError`]: wrong version, unknown opcode or tags, truncated
/// or oversized payloads, excess trailing bytes.
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), WireError> {
    let (mut c, opcode, req_id) = body_cursor(body)?;
    let req = match opcode {
        OP_APPLY => {
            let pid = c.u32()?;
            let obj = ObjectId(c.u32()? as usize);
            let kind = c.op_kind()?;
            Request::Apply {
                pid,
                op: Op::new(obj, kind),
            }
        }
        OP_OPEN_ELECTION => Request::OpenElection { k: c.u32()? },
        OP_ELECT => {
            let session = c.u32()?;
            let pid = c.u32()?;
            Request::Elect { session, pid }
        }
        OP_PING => Request::Ping,
        OP_HELLO => Request::Hello { version: c.u8()? },
        OP_INTROSPECT => Request::Introspect,
        OP_APPLY_TRACED => {
            let trace_id = c.u64()?;
            let span_id = c.u64()?;
            let pid = c.u32()?;
            let obj = ObjectId(c.u32()? as usize);
            let kind = c.op_kind()?;
            Request::TracedApply {
                ctx: TraceContext { trace_id, span_id },
                pid,
                op: Op::new(obj, kind),
            }
        }
        OP_RESUME => {
            let token = c.u64()?;
            let last_acked = c.u64()?;
            Request::Resume { token, last_acked }
        }
        OP_APPLY_DEADLINE => {
            let budget_us = c.u32()?;
            let pid = c.u32()?;
            let obj = ObjectId(c.u32()? as usize);
            let kind = c.op_kind()?;
            Request::DeadlineApply {
                budget_us,
                pid,
                op: Op::new(obj, kind),
            }
        }
        OP_FETCH_ROUTING => Request::FetchRouting,
        OP_UPDATE_ROUTING => {
            let epoch = c.u64()?;
            let ranges = c.ranges()?;
            let table = c.string()?;
            Request::UpdateRouting {
                epoch,
                ranges,
                table,
            }
        }
        OP_DETACH_RANGES => {
            let epoch = c.u64()?;
            let ranges = c.ranges()?;
            Request::DetachRanges { epoch, ranges }
        }
        OP_EXPORT_OBJECT => Request::ExportObject { obj: c.u32()? },
        OP_INSTALL_OBJECT => {
            let obj = c.u32()?;
            let state = c.value(0)?;
            Request::InstallObject { obj, state }
        }
        OP_EXPORT_SESSION => Request::ExportSession { session: c.u32()? },
        OP_INSTALL_SESSION => {
            let session = c.u32()?;
            let k = c.u32()?;
            let state = c.value(0)?;
            Request::InstallSession { session, k, state }
        }
        other => return Err(WireError::BadOpcode(other)),
    };
    c.finish()?;
    Ok((req_id, req))
}

/// [`decode_response`] that additionally *requires* the body to be at
/// the current [`VERSION`] — what every in-repo client uses to read a
/// stream it negotiated at v2.
///
/// The distinction matters under byte corruption: v1 bodies carry no
/// integrity digest, so a client lenient enough to accept one would
/// accept any desynchronized garbage whose first byte happens to be
/// `1` — a silent-corruption hole. A v2 speaker never legitimately
/// receives a v1 response (the server answers at the version the
/// client spoke), so the strict decoder turns that garbage into a
/// typed [`WireError::BadVersion`] the client treats as a broken
/// connection.
///
/// # Errors
///
/// [`WireError::BadVersion`] for any version byte other than
/// [`VERSION`], plus everything [`decode_response`] can fail with.
pub fn decode_response_current(body: &[u8]) -> Result<(u64, Response), WireError> {
    match peek_version(body) {
        Some(VERSION) => decode_response(body),
        Some(v) => Err(WireError::BadVersion(v)),
        None => Err(WireError::Truncated),
    }
}

/// Decodes one response body (without the length prefix), accepting
/// any version in [`MIN_DECODE_VERSION`]`..=`[`VERSION`] — the
/// lenient codec a *v1* peer would hold. Clients reading a stream they
/// negotiated at v2 must use [`decode_response_current`] instead.
///
/// # Errors
///
/// Same classes as [`decode_request`].
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), WireError> {
    let (mut c, opcode, req_id) = body_cursor(body)?;
    let resp = match opcode {
        RESP_OK => Response::Ok(c.value(0)?),
        RESP_ERR => {
            let code = c.u8()?;
            let code = ErrorCode::from_u8(code).ok_or(WireError::BadErrorCode(code))?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Response::Err { code, message }
        }
        RESP_SESSION => Response::Session(c.u32()?),
        RESP_HELLO => Response::Hello { version: c.u8()? },
        RESP_INTROSPECT => {
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let json = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Response::Introspect(json)
        }
        RESP_RESUMED => {
            let token = c.u64()?;
            let cached = c.u32()?;
            Response::Resumed { token, cached }
        }
        RESP_ROUTING => {
            let epoch = c.u64()?;
            let table = c.string()?;
            Response::Routing { epoch, table }
        }
        other => return Err(WireError::BadOpcode(other)),
    };
    c.finish()?;
    Ok((req_id, resp))
}

// ---------------------------------------------------------------- framing I/O

/// Reads one frame body from `r` into `buf` (reused across calls).
///
/// Returns `Ok(false)` on a clean EOF *at a frame boundary* — the
/// peer closed the connection between frames. An EOF inside a frame is
/// an [`io::ErrorKind::UnexpectedEof`] error.
///
/// # Errors
///
/// I/O errors from `r`; a length prefix above [`MAX_FRAME`] surfaces
/// as [`io::ErrorKind::InvalidData`] wrapping
/// [`WireError::FrameTooLarge`] **without** the oversized allocation
/// being attempted.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so a boundary EOF is distinguishable from
    // a mid-prefix one.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(len),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Writes pre-encoded frame bytes (as produced by [`encode_request`] /
/// [`encode_response`]) and clears the buffer.
///
/// # Errors
///
/// I/O errors from `w`.
pub fn write_frames(w: &mut impl Write, buf: &mut Vec<u8>) -> io::Result<()> {
    w.write_all(buf)?;
    buf.clear();
    Ok(())
}

/// Locates the next complete frame body in `buf` starting at byte
/// `at`, without copying — the event loop's zero-copy counterpart of
/// [`read_frame`]. Bytes are read off the socket into a per-loop arena
/// buffer once; decoding happens directly on the returned slice range.
///
/// Returns `Ok(None)` while the frame is still incomplete (keep the
/// bytes, read more), or `Ok(Some(range))` with the body's range in
/// `buf`; the caller resumes scanning at `range.end`.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] as soon as the length prefix is
/// readable and over [`MAX_FRAME`] — before waiting for (or buffering)
/// the oversized payload.
pub fn split_frame(buf: &[u8], at: usize) -> Result<Option<std::ops::Range<usize>>, WireError> {
    let rest = &buf[at.min(buf.len())..];
    if rest.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(rest[..4].try_into().expect("4-byte slice")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    if rest.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some(at + 4..at + 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(7, &req, &mut buf).unwrap();
        let body = &buf[4..];
        assert_eq!(
            u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize,
            body.len()
        );
        let (id, back) = decode_request(body).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        for kind in [
            OpKind::Read,
            OpKind::Write(Value::Int(-3)),
            OpKind::Cas {
                expect: Sym::BOTTOM.into(),
                new: Sym::new(2).into(),
            },
            OpKind::TestAndSet,
            OpKind::Reset,
            OpKind::FetchAdd(-9),
            OpKind::Swap(Value::Pid(4)),
            OpKind::SnapshotScan,
            OpKind::SnapshotUpdate(Value::pair(Value::Bool(true), Value::Nil)),
            OpKind::StickyWrite(Value::Seq(vec![Value::Int(1), Value::Nil])),
            OpKind::Enqueue(Value::Pid(0)),
            OpKind::Dequeue,
            OpKind::Rmw { func: 3 },
        ] {
            round_trip_request(Request::Apply {
                pid: 2,
                op: Op::new(ObjectId(5), kind),
            });
        }
        round_trip_request(Request::OpenElection { k: 6 });
        round_trip_request(Request::Elect { session: 9, pid: 1 });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Hello { version: VERSION });
        round_trip_request(Request::Introspect);
        round_trip_request(Request::TracedApply {
            ctx: TraceContext {
                trace_id: 0xDEAD_BEEF,
                span_id: 7,
            },
            pid: 2,
            op: Op::new(ObjectId(5), OpKind::TestAndSet),
        });
        round_trip_request(Request::Resume {
            token: 0xFACE_0FFE,
            last_acked: 41,
        });
        round_trip_request(Request::DeadlineApply {
            budget_us: 1_500,
            pid: 3,
            op: Op::new(ObjectId(2), OpKind::FetchAdd(1)),
        });
        round_trip_request(Request::FetchRouting);
        round_trip_request(Request::UpdateRouting {
            epoch: 3,
            ranges: vec![(0, 21), (64, u64::MAX)],
            table: "{\"schema\":\"bso-routing/v1\"}".into(),
        });
        round_trip_request(Request::UpdateRouting {
            epoch: 0,
            ranges: vec![],
            table: String::new(),
        });
        round_trip_request(Request::DetachRanges {
            epoch: 4,
            ranges: vec![(22, 42)],
        });
        round_trip_request(Request::ExportObject { obj: 7 });
        round_trip_request(Request::InstallObject {
            obj: 7,
            state: Value::Seq(vec![Value::Int(4), Value::Int(1_000)]),
        });
        round_trip_request(Request::ExportSession { session: 5 });
        round_trip_request(Request::InstallSession {
            session: 5,
            k: 6,
            state: Value::Sym(Sym::new(2)),
        });
    }

    #[test]
    fn range_counts_beyond_the_body_are_refused() {
        // A ranges count larger than the remaining bytes must be
        // rejected before any capacity is reserved for it.
        let mut buf = Vec::new();
        encode_request(
            1,
            &Request::DetachRanges {
                epoch: 1,
                ranges: vec![(0, 9)],
            },
            &mut buf,
        )
        .unwrap();
        // Patch the count (after version+opcode+req_id+epoch) to a lie
        // and re-stamp the digest so only the count check can object.
        let count_at = 4 + 1 + 1 + 8 + 8;
        buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let sum_at = buf.len() - CHECKSUM_LEN;
        let sum = checksum(&buf[4..sum_at]);
        buf[sum_at..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_request(&buf[4..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok(Value::Sym(Sym::new(1))),
            Response::Ok(Value::Seq(vec![Value::Nil; 3])),
            Response::Err {
                code: ErrorCode::Busy,
                message: "shard 3 queue full".into(),
            },
            Response::Session(17),
            Response::Hello { version: VERSION },
            Response::Introspect("{\"schema\":\"bso-introspect/v1\"}".into()),
            Response::Resumed {
                token: u64::MAX - 1,
                cached: 12,
            },
            Response::Routing {
                epoch: 9,
                table: "{\"schema\":\"bso-routing/v1\",\"epoch\":9}".into(),
            },
            Response::Routing {
                epoch: 0,
                table: String::new(),
            },
            Response::Err {
                code: ErrorCode::WrongShard,
                message: wrong_shard_message(3, 77),
            },
        ] {
            let mut buf = Vec::new();
            encode_response(u64::MAX, &resp, &mut buf).unwrap();
            let (id, back) = decode_response(&buf[4..]).unwrap();
            assert_eq!(id, u64::MAX);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn strict_response_decode_refuses_digestless_versions() {
        // A v2-negotiated client must not accept a v1 (digest-less)
        // response: desynchronized garbage starting with a `1` byte
        // would otherwise bypass the integrity gate entirely.
        let resp = Response::Ok(Value::Int(7));
        let mut v1 = Vec::new();
        encode_response_at(1, 9, &resp, &mut v1).unwrap();
        assert!(
            decode_response(&v1[4..]).is_ok(),
            "lenient codec accepts v1"
        );
        assert_eq!(
            decode_response_current(&v1[4..]).unwrap_err(),
            WireError::BadVersion(1)
        );
        let mut v2 = Vec::new();
        encode_response(9, &resp, &mut v2).unwrap();
        assert_eq!(decode_response_current(&v2[4..]).unwrap(), (9, resp));
        assert_eq!(
            decode_response_current(&[]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        // The whole point of the trailing digest: no single damaged
        // body byte — version, opcode, req_id, payload, or the digest
        // itself — may decode, on either codec.
        let mut rbuf = Vec::new();
        encode_request(
            5,
            &Request::Apply {
                pid: 1,
                op: Op::new(ObjectId(2), OpKind::FetchAdd(1)),
            },
            &mut rbuf,
        )
        .unwrap();
        let mut sbuf = Vec::new();
        encode_response(5, &Response::Ok(Value::Int(41)), &mut sbuf).unwrap();
        assert!(decode_request(&rbuf[4..]).is_ok());
        assert!(decode_response(&sbuf[4..]).is_ok());
        for body in [&rbuf[4..], &sbuf[4..]] {
            for i in 0..body.len() {
                for mask in [0x01u8, 0x80, 0xFF] {
                    let mut evil = body.to_vec();
                    evil[i] ^= mask;
                    assert!(
                        decode_request(&evil).is_err() && decode_response(&evil).is_err(),
                        "corruption at byte {i} mask {mask:#04x} decoded"
                    );
                }
            }
        }
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v1 client's frame differs in the version byte and carries
        // no trailing digest — the payload layouts coincide.
        // MIN_DECODE_VERSION pins that promise.
        let mut buf = Vec::new();
        encode_request(3, &Request::OpenElection { k: 4 }, &mut buf).unwrap();
        buf[4] = 1; // rewrite the version byte to v1…
        buf.truncate(buf.len() - CHECKSUM_LEN); // …and drop the v2 digest
        let (id, req) = decode_request(&buf[4..]).unwrap();
        assert_eq!((id, req), (3, Request::OpenElection { k: 4 }));

        // Versions outside MIN_DECODE_VERSION..=VERSION are rejected.
        for bad in [0, VERSION + 1] {
            buf[4] = bad;
            assert_eq!(
                decode_request(&buf[4..]).unwrap_err(),
                WireError::BadVersion(bad)
            );
        }
    }

    #[test]
    fn v2_opcodes_decode_at_a_v1_version_byte() {
        // The server's serve-time version gate — not the codec — is
        // what refuses v2-only opcodes from a v1 peer, so the refusal
        // can be a typed Version error instead of a malformed-frame
        // kill. The codec therefore decodes them at either version.
        let mut buf = Vec::new();
        encode_request(11, &Request::Introspect, &mut buf).unwrap();
        buf[4] = 1;
        buf.truncate(buf.len() - CHECKSUM_LEN);
        let (id, req) = decode_request(&buf[4..]).unwrap();
        assert_eq!((id, req), (11, Request::Introspect));
    }

    #[test]
    fn responses_encode_at_the_clients_version() {
        // The typed Version rejection of a v1 client must itself be a
        // v1 frame, or the client could not parse its own rejection.
        let resp = Response::Err {
            code: ErrorCode::Version,
            message: format!("server speaks v{VERSION}"),
        };
        let mut buf = Vec::new();
        encode_response_at(1, 42, &resp, &mut buf).unwrap();
        assert_eq!(buf[4], 1, "framed at the requested version");
        let (id, back) = decode_response(&buf[4..]).unwrap();
        assert_eq!((id, back), (42, resp));

        let err = encode_response_at(VERSION + 1, 0, &Response::Session(1), &mut Vec::new());
        assert_eq!(err.unwrap_err(), WireError::BadVersion(VERSION + 1));
    }

    #[test]
    fn peeks_survive_truncation_and_garbage() {
        let mut buf = Vec::new();
        encode_request(0xABCD, &Request::Ping, &mut buf).unwrap();
        let body = &buf[4..];
        assert_eq!(peek_version(body), Some(VERSION));
        assert_eq!(peek_req_id(body), Some(0xABCD));
        assert_eq!(peek_version(&[]), None);
        assert_eq!(peek_req_id(&body[..9]), None);
    }

    #[test]
    fn split_frame_walks_a_pipelined_buffer() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            encode_request(i, &Request::Ping, &mut buf).unwrap();
        }
        // Append a partial frame: prefix promising more than present.
        let tail = buf.len();
        buf.extend_from_slice(&20u32.to_le_bytes());
        buf.extend_from_slice(&[0; 7]);

        let mut at = 0;
        for i in 0..5u64 {
            let range = split_frame(&buf, at).unwrap().expect("complete frame");
            let (id, req) = decode_request(&buf[range.clone()]).unwrap();
            assert_eq!((id, req), (i, Request::Ping));
            at = range.end;
        }
        assert_eq!(at, tail);
        assert_eq!(split_frame(&buf, at).unwrap(), None, "incomplete frame");
        assert_eq!(split_frame(&buf, buf.len()).unwrap(), None, "empty rest");

        // An oversized prefix errors immediately, before the payload.
        let mut evil = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        evil.push(0);
        assert_eq!(
            split_frame(&evil, 0).unwrap_err(),
            WireError::FrameTooLarge(MAX_FRAME + 1)
        );
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::Object,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::UnknownSession,
            ErrorCode::Version,
            ErrorCode::Expired,
            ErrorCode::Overloaded,
            ErrorCode::BadToken,
            ErrorCode::WrongShard,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
            // The three retry classes partition the retryable codes:
            // in-place retries are for transient per-request refusals on
            // a healthy connection; after-reconnect retries are for
            // refusals that condemn the connection's future work too;
            // after-refresh retries are for stale *placement* — the
            // op must be re-routed through a fresher cluster table.
            let in_place = matches!(code, ErrorCode::Busy | ErrorCode::Expired);
            let reconnect = matches!(code, ErrorCode::ShuttingDown | ErrorCode::Overloaded);
            let refresh = matches!(code, ErrorCode::WrongShard);
            assert_eq!(code.retry_in_place(), in_place);
            assert_eq!(code.retry_after_reconnect(), reconnect);
            assert_eq!(code.retry_after_refresh(), refresh);
            assert!(
                [in_place, reconnect, refresh]
                    .iter()
                    .filter(|&&c| c)
                    .count()
                    <= 1,
                "classes are disjoint"
            );
            assert_eq!(code.is_retryable(), in_place || reconnect || refresh);
        }
        // BadToken means "outcome unknowable" — the one failure where a
        // blind retry could duplicate an effect, so it must never be
        // classified retryable.
        assert!(!ErrorCode::BadToken.is_retryable());
        assert_eq!(ErrorCode::from_u8(200), None);
    }

    #[test]
    fn wrong_shard_messages_carry_a_parseable_epoch() {
        assert_eq!(wrong_shard_epoch(&wrong_shard_message(0, 3)), Some(0));
        assert_eq!(
            wrong_shard_epoch(&wrong_shard_message(u64::MAX, 9)),
            Some(u64::MAX)
        );
        // Foreign or hand-written messages degrade to None, which
        // clients treat as "refresh unconditionally".
        assert_eq!(wrong_shard_epoch("not owned here"), None);
        assert_eq!(wrong_shard_epoch("epoch=x"), None);
        assert_eq!(wrong_shard_epoch(""), None);
    }

    #[test]
    fn pipelined_frames_read_back_in_order() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            encode_request(i, &Request::Ping, &mut buf).unwrap();
        }
        let mut r = io::Cursor::new(buf);
        let mut body = Vec::new();
        for i in 0..10u64 {
            assert!(read_frame(&mut r, &mut body).unwrap());
            let (id, req) = decode_request(&body).unwrap();
            assert_eq!((id, req), (i, Request::Ping));
        }
        assert!(!read_frame(&mut r, &mut body).unwrap());
    }

    #[test]
    fn deep_values_are_rejected_on_encode() {
        let mut v = Value::Nil;
        for _ in 0..MAX_VALUE_DEPTH + 1 {
            v = Value::pair(v, Value::Nil);
        }
        let mut buf = Vec::new();
        let err = encode_request(
            0,
            &Request::Apply {
                pid: 0,
                op: Op::write(ObjectId(0), v),
            },
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(err, WireError::TooDeep);
        // The failed encode leaves no partial frame behind.
        assert!(buf.is_empty());
    }
}
