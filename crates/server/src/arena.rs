//! Per-loop buffer arenas and the connection slab.
//!
//! Every connection owned by an event loop needs two staging buffers
//! (inbound bytes to parse, outbound frames to flush). Allocating them
//! per connection — let alone per frame, as the old reader thread's
//! `read_frame` did — would put the allocator on the hot path of every
//! wakeup. The [`Arena`] recycles buffers loop-locally instead: a
//! closed connection's buffers go back to the free list and the next
//! accept reuses them, so a steady-state loop allocates nothing per
//! connection turnover and parses frames *in place* in a buffer it
//! already owns (the codec decodes straight from the read buffer
//! slice; bytes are copied once from the socket and never again).
//!
//! [`Slab`] is the matching index allocator: connections live in a
//! dense `Vec`, freed slots are recycled LIFO, and each slot carries a
//! generation counter so a cross-loop reply addressed to a connection
//! that died (and whose slot was reused) is recognized as stale
//! instead of being delivered to the wrong socket.

use bso_telemetry::Gauge;

/// A loop-local recycler for byte buffers.
pub(crate) struct Arena {
    free: Vec<Vec<u8>>,
    /// Capacity given to fresh buffers (recycled ones keep theirs).
    chunk: usize,
    /// Cap on retained buffers; beyond it, returned buffers are freed.
    max_retained: usize,
    /// Buffers handed out and not yet returned.
    outstanding: usize,
    in_use: Gauge,
}

impl Arena {
    /// An arena handing out `chunk`-byte buffers, retaining at most
    /// `max_retained` free ones, reporting through `in_use`.
    pub(crate) fn new(chunk: usize, max_retained: usize, in_use: Gauge) -> Arena {
        Arena {
            free: Vec::new(),
            chunk: chunk.max(64),
            max_retained,
            outstanding: 0,
            in_use,
        }
    }

    /// Takes a cleared buffer (recycled if available).
    pub(crate) fn get(&mut self) -> Vec<u8> {
        self.outstanding += 1;
        self.in_use.set(self.outstanding as u64);
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => Vec::with_capacity(self.chunk),
        }
    }

    /// Returns a buffer to the free list. Buffers that ballooned past
    /// 16× the chunk size (one giant frame) are dropped rather than
    /// pinned in the free list forever.
    pub(crate) fn put(&mut self, buf: Vec<u8>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.in_use.set(self.outstanding as u64);
        if self.free.len() < self.max_retained && buf.capacity() <= self.chunk * 16 {
            self.free.push(buf);
        }
    }

    /// Buffers currently handed out.
    #[cfg(test)]
    pub(crate) fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Buffers parked on the free list.
    #[cfg(test)]
    pub(crate) fn retained(&self) -> usize {
        self.free.len()
    }
}

/// A dense slot map with LIFO slot reuse and per-slot generations.
pub(crate) struct Slab<T> {
    slots: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

struct Entry<T> {
    gen: u32,
    value: Option<T>,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts a value, returning its `(slot, generation)` address.
    pub(crate) fn insert(&mut self, value: T) -> (u32, u32) {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let e = &mut self.slots[slot as usize];
            e.value = Some(value);
            (slot, e.gen)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab overflow");
            self.slots.push(Entry {
                gen: 0,
                value: Some(value),
            });
            (slot, 0)
        }
    }

    /// Removes a slot's value, bumping its generation so stale
    /// addresses miss.
    pub(crate) fn remove(&mut self, slot: u32) -> Option<T> {
        let e = self.slots.get_mut(slot as usize)?;
        let v = e.value.take();
        if v.is_some() {
            e.gen = e.gen.wrapping_add(1);
            self.free.push(slot);
            self.len -= 1;
        }
        v
    }

    /// The value at `slot`, regardless of generation.
    pub(crate) fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.value.as_mut()
    }

    /// The value at `slot` only if the generation still matches.
    pub(crate) fn get_mut_gen(&mut self, slot: u32, gen: u32) -> Option<&mut T> {
        let e = self.slots.get_mut(slot as usize)?;
        if e.gen != gen {
            return None;
        }
        e.value.as_mut()
    }

    /// Live slot count.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Iterates over live `(slot, value)` pairs.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, e)| e.value.as_mut().map(|v| (i as u32, v)))
    }

    /// The slots currently live (collected, so the caller can mutate
    /// the slab while walking them).
    pub(crate) fn live_slots(&self) -> Vec<u32> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.value.as_ref().map(|_| i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_telemetry::Registry;

    #[test]
    fn arena_recycles_and_caps_retention() {
        let mut a = Arena::new(1024, 2, Registry::enabled().gauge("test.arena"));
        let b1 = a.get();
        let b2 = a.get();
        let b3 = a.get();
        assert_eq!(a.outstanding(), 3);
        let p1 = b1.as_ptr();
        a.put(b1);
        a.put(b2);
        a.put(b3); // beyond max_retained: dropped
        assert_eq!(a.retained(), 2);
        assert_eq!(a.outstanding(), 0);
        // LIFO reuse: the most recently returned buffer comes back
        // first; the first returned (p1) is still parked below it.
        let r1 = a.get();
        let r2 = a.get();
        assert!(r1.capacity() >= 1024 && r2.capacity() >= 1024);
        assert_eq!(r2.as_ptr(), p1);
        // A buffer that ballooned is not retained.
        let mut big = a.get();
        big.reserve(1024 * 64);
        a.put(big);
        assert_eq!(a.retained(), 0);
    }

    #[test]
    fn slab_generations_catch_stale_addresses() {
        let mut s: Slab<&'static str> = Slab::new();
        let (slot, gen) = s.insert("alpha");
        assert_eq!(s.get_mut_gen(slot, gen), Some(&mut "alpha"));
        assert_eq!(s.remove(slot), Some("alpha"));
        assert_eq!(s.remove(slot), None, "double remove is inert");
        let (slot2, gen2) = s.insert("beta");
        assert_eq!(slot2, slot, "slots are recycled");
        assert_ne!(gen2, gen, "generation moved on");
        assert_eq!(s.get_mut_gen(slot, gen), None, "stale address misses");
        assert_eq!(s.get_mut_gen(slot, gen2), Some(&mut "beta"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.live_slots(), vec![slot]);
        for (i, v) in s.iter_mut() {
            assert_eq!((i, *v), (slot, "beta"));
        }
    }
}
