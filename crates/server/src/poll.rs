//! Readiness polling: a thin, std-only FFI shim over `epoll(7)` with a
//! portable `poll(2)` fallback, plus the self-pipe waker and the
//! best-effort core pinning the shard event loops use.
//!
//! This is the only module in the workspace that speaks to the OS
//! directly: four `epoll` calls, `poll`, `pipe2`, `fcntl`, `write`,
//! `read`, `close`, and `sched_setaffinity` — all symbols libc already
//! exports to every Rust program, declared here by hand so the
//! workspace keeps building with zero external crates. Everything
//! above this module ([`crate::event_loop`], `bso_client`'s swarm
//! driver) sees only the safe [`Poller`]/[`Waker`] surface.
//!
//! Both backends are **level-triggered**: a socket with unread bytes
//! (or writable space, when write interest is armed) reports ready on
//! every [`Poller::wait`] until drained, so a loop that caps its
//! per-iteration batch for fairness simply sees the remainder on the
//! next wait. `epoll` is O(ready) per wait and is the default on
//! Linux; `poll` is O(registered) but exists on every Unix, and the
//! event loops run identically on either — CI exercises both.

#![allow(unsafe_code)] // the FFI shim; the rest of the crate stays safe

use std::io;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Which readiness backend a [`Poller`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PollBackend {
    /// `epoll` where available (Linux), otherwise `poll`.
    #[default]
    Auto,
    /// Force `epoll(7)`; [`Poller::new`] fails off Linux.
    Epoll,
    /// Force the portable `poll(2)` backend.
    Poll,
}

impl PollBackend {
    /// Parses `auto` / `epoll` / `poll` (as the loadgen `--backend`
    /// flag and `BSO_POLL_BACKEND` spell them).
    pub fn parse(s: &str) -> Option<PollBackend> {
        match s {
            "auto" => Some(PollBackend::Auto),
            "epoll" => Some(PollBackend::Epoll),
            "poll" => Some(PollBackend::Poll),
            _ => None,
        }
    }
}

impl std::fmt::Display for PollBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PollBackend::Auto => "auto",
            PollBackend::Epoll => "epoll",
            PollBackend::Poll => "poll",
        })
    }
}

/// What a registered fd wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a pending accept/EOF).
    pub readable: bool,
    /// Wake when the fd can accept writes again.
    pub writable: bool,
}

impl Interest {
    /// Read interest only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read and write interest — a connection with a backed-up
    /// write buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes (or EOF) are waiting to be read.
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The fd is in an error or hangup state; read from it to learn
    /// which (the read will return the error or EOF).
    pub error: bool,
}

// ------------------------------------------------------------------ FFI

#[cfg(unix)]
mod sys {
    use std::os::fd::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn pipe2(fds: *mut RawFd, flags: i32) -> i32;
        pub fn close(fd: RawFd) -> i32;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    }

    pub const O_NONBLOCK: i32 = 0o4000;
    pub const O_CLOEXEC: i32 = 0o2000000;
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel's `epoll_event`. Packed on x86-64 (the kernel ABI
    /// there has no padding between `events` and `data`); naturally
    /// aligned everywhere else, matching glibc's declaration.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> RawFd;
        pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: RawFd,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout: i32,
        ) -> i32;
    }
}

#[cfg(target_os = "linux")]
mod sys_affinity {
    extern "C" {
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs request doesn't busy-spin as 0ms.
        Some(d) => i32::try_from(d.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX),
    }
}

// ------------------------------------------------------------------ Poller

/// A readiness queue over one of the [`PollBackend`]s.
///
/// Register fds with a caller-chosen `token`; [`Poller::wait`] reports
/// which tokens are ready. Level-triggered on both backends.
pub struct Poller {
    imp: Imp,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollTable),
}

impl Poller {
    /// Opens a readiness queue on the requested backend.
    ///
    /// # Errors
    ///
    /// OS errors creating the epoll instance; `Unsupported` when
    /// `epoll` is forced on a platform without it.
    pub fn new(backend: PollBackend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            PollBackend::Auto | PollBackend::Epoll => Ok(Poller {
                imp: Imp::Epoll(Epoll::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            PollBackend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
            _ => Ok(Poller {
                imp: Imp::Poll(PollTable::default()),
            }),
        }
    }

    /// The backend actually in use.
    pub fn backend(&self) -> &'static str {
        match self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => "epoll",
            Imp::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` with the given interest.
    ///
    /// # Errors
    ///
    /// OS errors from `epoll_ctl` (the `poll` backend cannot fail).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_ADD, fd, token, interest),
            Imp::Poll(t) => {
                t.entries.push(PollEntry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// As [`Poller::register`]; `NotFound` if the fd is unknown to the
    /// `poll` backend.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_MOD, fd, token, interest),
            Imp::Poll(t) => {
                let entry =
                    t.entries.iter_mut().find(|e| e.fd == fd).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, "fd not registered")
                    })?;
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must be called *before* the fd is closed
    /// (the `poll` backend would otherwise keep polling a dead slot).
    ///
    /// # Errors
    ///
    /// As [`Poller::register`].
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Imp::Poll(t) => {
                t.entries.retain(|e| e.fd != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready (or the
    /// timeout passes), appending the ready set to `events` (cleared
    /// first). A `None` timeout blocks indefinitely.
    ///
    /// # Errors
    ///
    /// OS errors from the wait call; `EINTR` is retried internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wait(events, timeout),
            Imp::Poll(t) => t.wait(events, timeout),
        }
    }
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    buf: Vec<sys_epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flags word and returns a new
        // fd or -1; no pointers are involved.
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: (if interest.readable {
                sys_epoll::EPOLLIN
            } else {
                0
            }) | (if interest.writable {
                sys_epoll::EPOLLOUT
            } else {
                0
            }),
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event
        // pointer on modern kernels but passing a valid one is always
        // allowed.
        if unsafe { sys_epoll::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        loop {
            // SAFETY: the buffer is valid for `len` events for the
            // duration of the call.
            let n = unsafe {
                sys_epoll::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (sys_epoll::EPOLLIN | sys_epoll::EPOLLHUP) != 0,
                    writable: bits & sys_epoll::EPOLLOUT != 0,
                    error: bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0,
                });
            }
            // A full buffer means more may be pending; the next wait
            // picks them up (level-triggered), so don't grow or loop.
            return Ok(());
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        unsafe { sys::close(self.epfd) };
    }
}

struct PollEntry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

#[derive(Default)]
struct PollTable {
    entries: Vec<PollEntry>,
    fds: Vec<sys::PollFd>,
}

impl PollTable {
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        self.fds.extend(self.entries.iter().map(|e| sys::PollFd {
            fd: e.fd,
            events: (if e.interest.readable { sys::POLLIN } else { 0 })
                | (if e.interest.writable { sys::POLLOUT } else { 0 }),
            revents: 0,
        }));
        loop {
            // SAFETY: `fds` is valid for `len` entries for the call.
            let n = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            break;
        }
        for (pfd, entry) in self.fds.iter().zip(&self.entries) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            events.push(Event {
                token: entry.token,
                readable: r & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: r & sys::POLLOUT != 0,
                error: r & (sys::POLLERR | sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ Waker

/// The write end of a self-pipe: waking a sleeping event loop from
/// another thread. Cloneable and cheap; a wake while one is already
/// pending is coalesced by the pipe itself (the write end is
/// nonblocking, and a full pipe already guarantees a pending wakeup).
pub struct Waker {
    write_fd: RawFd,
}

// SAFETY: `write(2)` on a pipe fd is thread-safe; the fd is owned by
// the paired WakeReader and outlives every Waker clone by construction
// (the event loop joins before the reader is dropped).
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            write_fd: self.write_fd,
        }
    }
}

impl Waker {
    /// Wakes the paired [`WakeReader`]'s poller. Never blocks.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writing one byte from a valid stack buffer. EAGAIN
        // (pipe full) means a wakeup is already pending — success.
        unsafe { sys::write(self.write_fd, &byte, 1) };
    }
}

/// The read end of a self-pipe, registered in the owning loop's
/// [`Poller`]. Owns both fds.
pub struct WakeReader {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakeReader {
    /// Creates a nonblocking self-pipe and hands out its write end.
    ///
    /// # Errors
    ///
    /// OS errors from `pipe2`.
    pub fn pair() -> io::Result<(WakeReader, Waker)> {
        let mut fds: [RawFd; 2] = [-1, -1];
        // SAFETY: pipe2 fills the 2-element array on success.
        if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((
            WakeReader {
                read_fd: fds[0],
                write_fd: fds[1],
            },
            Waker { write_fd: fds[1] },
        ))
    }

    /// The fd to register for read interest.
    pub fn raw_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Consumes all pending wake bytes (level-triggered pollers would
    /// otherwise report the pipe ready forever).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a valid stack buffer; the fd is
            // nonblocking so this cannot hang.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                return; // drained (or EAGAIN / EOF)
            }
        }
    }
}

impl Drop for WakeReader {
    fn drop(&mut self) {
        // SAFETY: closing fds we own exactly once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// ------------------------------------------------------------------ misc

/// Marks a stream nonblocking (the std API, re-exported here so event
/// loop code reads as one vocabulary).
///
/// # Errors
///
/// OS errors from `fcntl`.
pub fn set_nonblocking(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)
}

/// Best-effort: pins the calling thread to `core` (mod the machine's
/// CPU count is the caller's business). Returns whether the OS
/// accepted the mask; on non-Linux platforms this is always `false`
/// and harmless.
pub fn pin_to_core(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        if core >= 1024 {
            return false;
        }
        let mut mask = [0u64; 16]; // 1024 CPUs
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: pid 0 = calling thread; the mask buffer is valid for
        // the declared size.
        let rc = unsafe {
            sys_affinity::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr())
        };
        rc == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

/// The number of logical CPUs, used as the default shard count.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A stream's raw fd (narrowing the import surface of callers).
pub fn raw_fd(stream: &TcpStream) -> RawFd {
    stream.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<PollBackend> {
        let mut b = vec![PollBackend::Poll];
        if cfg!(target_os = "linux") {
            b.push(PollBackend::Epoll);
        }
        b
    }

    #[test]
    fn readiness_round_trip_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.register(raw_fd(&server), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing to read yet: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 7 || !e.readable));

            client.write_all(b"hi").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == 7).expect("readable");
            assert!(ev.readable, "{backend}: {ev:?}");

            let mut buf = [0u8; 8];
            let n = (&server).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"hi");

            poller.deregister(raw_fd(&server)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 7));
        }
    }

    #[test]
    fn write_interest_reports_writable() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(raw_fd(&client), 1, Interest::READ_WRITE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{backend}: fresh socket must be writable"
            );
        }
    }

    #[test]
    fn waker_wakes_and_drains() {
        for backend in backends() {
            let (reader, waker) = WakeReader::pair().unwrap();
            let mut poller = Poller::new(backend).unwrap();
            poller
                .register(reader.raw_fd(), 99, Interest::READ)
                .unwrap();
            let waker2 = waker.clone();
            let t = std::thread::spawn(move || waker2.wake());
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            t.join().unwrap();
            assert!(events.iter().any(|e| e.token == 99 && e.readable));
            reader.drain();
            // Coalescing: many wakes still drain to quiet.
            for _ in 0..1000 {
                waker.wake();
            }
            reader.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 99));
        }
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [PollBackend::Auto, PollBackend::Epoll, PollBackend::Poll] {
            assert_eq!(PollBackend::parse(&b.to_string()), Some(b));
        }
        assert_eq!(PollBackend::parse("kqueue"), None);
    }

    #[test]
    fn pin_to_core_is_best_effort() {
        // Core 0 exists everywhere; the call may still be refused
        // (containers), so only the "absurd core" case is asserted.
        let _ = pin_to_core(0);
        assert!(!pin_to_core(usize::MAX));
    }
}
